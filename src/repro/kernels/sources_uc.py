"""Unordered-concurrent (xloop.uc) application kernels (Table II):
rgb2cmyk-uc, sgemm-uc, ssearch-uc, symm-uc, viterbi-uc, war-uc."""

from __future__ import annotations

from .base import KernelSpec, Workload, region, rng_for, scale_select

# ---------------------------------------------------------------------------
# rgb2cmyk-uc: color-space conversion on a test image (custom kernel)
# ---------------------------------------------------------------------------

RGB2CMYK_SRC = """
void rgb2cmyk(char* r, char* g, char* b, char* out, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int rv = r[i];
        int gv = g[i];
        int bv = b[i];
        int w = rv;
        if (gv > w) { w = gv; }
        if (bv > w) { w = bv; }
        int k = 255 - w;
        int c = 0;
        int m = 0;
        int y = 0;
        if (w > 0) {
            c = 255 - rv - k;
            m = 255 - gv - k;
            y = 255 - bv - k;
        }
        out[4*i]   = (char)c;
        out[4*i+1] = (char)m;
        out[4*i+2] = (char)y;
        out[4*i+3] = (char)k;
    }
}
"""


def _rgb2cmyk_make(scale, seed):
    n = scale_select(scale, 48, 512, 2048)
    rng = rng_for(seed, "rgb2cmyk")
    r = [rng.randrange(256) for _ in range(n)]
    g = [rng.randrange(256) for _ in range(n)]
    b = [rng.randrange(256) for _ in range(n)]
    ra, ga, ba, oa = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_bytes(ra, r)
        mem.write_bytes(ga, g)
        mem.write_bytes(ba, b)

    def verify(mem):
        out = mem.read_bytes(oa, 4 * n)
        for i in range(n):
            w = max(r[i], g[i], b[i])
            k = 255 - w
            c = m = y = 0
            if w > 0:
                c = (255 - r[i] - k) & 0xFF
                m = (255 - g[i] - k) & 0xFF
                y = (255 - b[i] - k) & 0xFF
            assert out[4 * i:4 * i + 4] == [c, m, y, k], i

    return Workload(args=[ra, ga, ba, oa, n], init=init, verify=verify)


RGB2CMYK = KernelSpec(
    name="rgb2cmyk-uc", suite="C", loop_types=("uc",),
    source=RGB2CMYK_SRC, entry="rgb2cmyk", make=_rgb2cmyk_make,
    description="RGB to CMYK color-space conversion over pixels")

# ---------------------------------------------------------------------------
# sgemm-uc: single-precision matrix multiply (custom kernel)
# ---------------------------------------------------------------------------

SGEMM_SRC = """
void sgemm(float* a, float* b, float* c, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float acc = 0.0;
            for (int k = 0; k < n; k++) {
                acc = acc + a[i*n+k] * b[k*n+j];
            }
            c[i*n+j] = acc;
        }
    }
}
"""


def _sgemm_make(scale, seed):
    n = scale_select(scale, 6, 12, 20)
    rng = rng_for(seed, "sgemm")
    a = [rng.randrange(-4, 5) * 0.5 for _ in range(n * n)]
    b = [rng.randrange(-4, 5) * 0.25 for _ in range(n * n)]
    aa, ba, ca = region(0), region(1), region(2)

    def init(mem):
        mem.write_floats(aa, a)
        mem.write_floats(ba, b)

    def verify(mem):
        # operands are small multiples of 0.25: every product and sum
        # is exactly representable in binary32, so compare exactly
        got = mem.read_floats(ca, n * n)
        for i in range(n):
            for j in range(n):
                acc = 0.0
                for k in range(n):
                    acc += a[i * n + k] * b[k * n + j]
                assert got[i * n + j] == acc, (i, j)

    return Workload(args=[aa, ba, ca, n], init=init, verify=verify)


SGEMM = KernelSpec(
    name="sgemm-uc", suite="C", loop_types=("uc",),
    source=SGEMM_SRC, entry="sgemm", make=_sgemm_make,
    description="dense single-precision matrix multiply")

# ---------------------------------------------------------------------------
# ssearch-uc: Knuth-Morris-Pratt over a collection of byte streams
# ---------------------------------------------------------------------------

SSEARCH_SRC = """
void ssearch(char* text, int* offs, char* pat, int* fail, int plen,
             int* hits, int nstreams) {
    #pragma xloops unordered
    for (int i = 0; i < nstreams; i++) {
        int lo = offs[i];
        int hi = offs[i+1];
        int q = 0;
        int count = 0;
        int p = lo;
        while (p < hi) {
            int ch = text[p];
            while (q > 0 && pat[q] != ch) { q = fail[q-1]; }
            if (pat[q] == ch) { q = q + 1; }
            if (q == plen) {
                count = count + 1;
                q = fail[q-1];
            }
            p = p + 1;
        }
        hits[i] = count;
    }
}
"""


def _kmp_fail(pattern):
    fail = [0] * len(pattern)
    k = 0
    for q in range(1, len(pattern)):
        while k > 0 and pattern[k] != pattern[q]:
            k = fail[k - 1]
        if pattern[k] == pattern[q]:
            k += 1
        fail[q] = k
    return fail


def _ssearch_make(scale, seed):
    nstreams = scale_select(scale, 4, 12, 32)
    stream_len = scale_select(scale, 24, 96, 192)
    rng = rng_for(seed, "ssearch")
    pattern = b"abab"
    text = bytes(rng.choice(b"ab") for _ in range(nstreams * stream_len))
    offs = [i * stream_len for i in range(nstreams + 1)]
    fail = _kmp_fail(pattern)
    ta, oa, pa, fa, ha = (region(i) for i in range(5))

    def init(mem):
        mem.write_bytes(ta, list(text))
        mem.write_words(oa, offs)
        mem.write_bytes(pa, list(pattern))
        mem.write_words(fa, fail)

    def golden(stream):
        count, q = 0, 0
        for ch in stream:
            while q > 0 and pattern[q] != ch:
                q = fail[q - 1]
            if pattern[q] == ch:
                q += 1
            if q == len(pattern):
                count += 1
                q = fail[q - 1]
        return count

    def verify(mem):
        got = mem.read_words(ha, nstreams)
        for i in range(nstreams):
            expect = golden(text[offs[i]:offs[i + 1]])
            assert got[i] == expect, (i, got[i], expect)

    return Workload(args=[ta, oa, pa, fa, len(pattern), ha, nstreams],
                    init=init, verify=verify)


SSEARCH = KernelSpec(
    name="ssearch-uc", suite="C", loop_types=("uc",),
    source=SSEARCH_SRC, entry="ssearch", make=_ssearch_make,
    description="KMP substring search over independent byte streams")

# ---------------------------------------------------------------------------
# symm-uc / symm-or: symmetric matrix multiply (PolyBench)
# C = A*B with A symmetric (only the lower triangle of A stored)
# ---------------------------------------------------------------------------

SYMM_UC_SRC = """
void symm(int* a, int* b, int* c, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            int acc = 0;
            for (int k = 0; k < n; k++) {
                int aik = 0;
                if (k <= i) { aik = a[i*n+k]; } else { aik = a[k*n+i]; }
                acc = acc + aik * b[k*n+j];
            }
            c[i*n+j] = acc;
        }
    }
}
"""

SYMM_OR_SRC = """
void symm(int* a, int* b, int* c, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            int acc = 0;
            #pragma xloops ordered
            for (int k = 0; k < n; k++) {
                int aik = 0;
                if (k <= i) { aik = a[i*n+k]; } else { aik = a[k*n+i]; }
                acc = acc + aik * b[k*n+j];
            }
            c[i*n+j] = acc;
        }
    }
}
"""


def _symm_make(scale, seed):
    n = scale_select(scale, 6, 10, 16)
    rng = rng_for(seed, "symm")
    a = [rng.randrange(-5, 6) for _ in range(n * n)]
    b = [rng.randrange(-5, 6) for _ in range(n * n)]
    aa, ba, ca = region(0), region(1), region(2)

    def init(mem):
        mem.write_words(aa, [v & 0xFFFFFFFF for v in a])
        mem.write_words(ba, [v & 0xFFFFFFFF for v in b])

    def verify(mem):
        got = mem.read_words_signed(ca, n * n)
        for i in range(n):
            for j in range(n):
                acc = 0
                for k in range(n):
                    aik = a[i * n + k] if k <= i else a[k * n + i]
                    acc += aik * b[k * n + j]
                assert got[i * n + j] == acc, (i, j)

    return Workload(args=[aa, ba, ca, n], init=init, verify=verify)


SYMM_UC = KernelSpec(
    name="symm-uc", suite="Po", loop_types=("uc",),
    source=SYMM_UC_SRC, entry="symm", make=_symm_make,
    description="symmetric matrix multiply, parallel over rows")

SYMM_OR = KernelSpec(
    name="symm-or", suite="Po", loop_types=("or",),
    source=SYMM_OR_SRC, entry="symm", make=_symm_make,
    description="symmetric matrix multiply, ordered accumulation")

# ---------------------------------------------------------------------------
# viterbi-uc: convolutional decoding of independent frames
# ---------------------------------------------------------------------------

# each frame gets a private slice of the scratch buffer (2*ns words):
# stack-allocated scratch would be shared across LPSU lanes
VITERBI_SRC = """
void viterbi(int* obs, int* trans, int* emit, int* scratch, int* out,
             int nframes, int steps, int ns) {
    #pragma xloops unordered
    for (int f = 0; f < nframes; f++) {
        int base = f * 2 * ns;
        for (int s = 0; s < ns; s++) { scratch[base + s] = 0; }
        for (int t = 0; t < steps; t++) {
            int o = obs[f*steps + t];
            for (int s = 0; s < ns; s++) {
                int best = 1000000;
                for (int p = 0; p < ns; p++) {
                    int c = scratch[base + p] + trans[p*ns + s];
                    if (c < best) { best = c; }
                }
                scratch[base + ns + s] = best + emit[s*ns + o];
            }
            for (int s = 0; s < ns; s++) {
                scratch[base + s] = scratch[base + ns + s];
            }
        }
        int best = scratch[base];
        int arg = 0;
        for (int s = 1; s < ns; s++) {
            if (scratch[base + s] < best) {
                best = scratch[base + s];
                arg = s;
            }
        }
        out[f] = arg * 1000000 + best;
    }
}
"""


def _viterbi_make(scale, seed):
    ns = 4
    nframes = scale_select(scale, 3, 8, 24)
    steps = scale_select(scale, 6, 16, 32)
    rng = rng_for(seed, "viterbi")
    obs = [rng.randrange(ns) for _ in range(nframes * steps)]
    trans = [rng.randrange(1, 10) for _ in range(ns * ns)]
    emit = [rng.randrange(1, 10) for _ in range(ns * ns)]
    oa, ta, ea, sa, ra = (region(i) for i in range(5))

    def init(mem):
        mem.write_words(oa, obs)
        mem.write_words(ta, trans)
        mem.write_words(ea, emit)

    def verify(mem):
        got = mem.read_words(ra, nframes)
        for f in range(nframes):
            cost = [0] * ns
            for t in range(steps):
                o = obs[f * steps + t]
                nxt = []
                for s in range(ns):
                    best = min(cost[p] + trans[p * ns + s]
                               for p in range(ns))
                    nxt.append(best + emit[s * ns + o])
                cost = nxt
            best = min(cost)
            arg = cost.index(best)
            assert got[f] == arg * 1000000 + best, f

    return Workload(args=[oa, ta, ea, sa, ra, nframes, steps, ns],
                    init=init, verify=verify)


VITERBI = KernelSpec(
    name="viterbi-uc", suite="C", loop_types=("uc",),
    source=VITERBI_SRC, entry="viterbi", make=_viterbi_make,
    description="Viterbi decoding of independent frames")

# ---------------------------------------------------------------------------
# war-uc / war-om: Floyd-Warshall (PolyBench, paper Fig 2)
# ---------------------------------------------------------------------------

WAR_OM_SRC = """
void war(int* path, int n) {
    for (int k = 0; k < n; k++) {
        #pragma xloops ordered
        for (int i = 0; i < n; i++) {
            #pragma xloops unordered
            for (int j = 0; j < n; j++) {
                int through = path[i*n+k] + path[k*n+j];
                if (through < path[i*n+j]) { path[i*n+j] = through; }
            }
        }
    }
}
"""

WAR_UC_SRC = """
void war(int* path, int n) {
    for (int k = 0; k < n; k++) {
        for (int i = 0; i < n; i++) {
            #pragma xloops unordered
            for (int j = 0; j < n; j++) {
                int through = path[i*n+k] + path[k*n+j];
                if (through < path[i*n+j]) { path[i*n+j] = through; }
            }
        }
    }
}
"""


def _war_make(scale, seed):
    n = scale_select(scale, 6, 10, 16)
    rng = rng_for(seed, "war")
    INF = 1 << 20
    dist = [[0 if i == j else (rng.randrange(1, 30)
                               if rng.random() < 0.45 else INF)
             for j in range(n)] for i in range(n)]
    flat = [dist[i][j] for i in range(n) for j in range(n)]
    pa = region(0)

    def init(mem):
        mem.write_words(pa, flat)

    def verify(mem):
        expect = [row[:] for row in dist]
        for k in range(n):
            for i in range(n):
                for j in range(n):
                    through = expect[i][k] + expect[k][j]
                    if through < expect[i][j]:
                        expect[i][j] = through
        got = mem.read_words(pa, n * n)
        flat_e = [expect[i][j] for i in range(n) for j in range(n)]
        assert got == flat_e

    return Workload(args=[pa, n], init=init, verify=verify)


WAR_OM = KernelSpec(
    name="war-om", suite="Po", loop_types=("om", "uc"),
    source=WAR_OM_SRC, entry="war", make=_war_make,
    description="Floyd-Warshall, middle loop ordered-through-memory")

WAR_UC = KernelSpec(
    name="war-uc", suite="Po", loop_types=("uc",),
    source=WAR_UC_SRC, entry="war", make=_war_make,
    description="Floyd-Warshall, inner loop unordered")

UC_KERNELS = (RGB2CMYK, SGEMM, SSEARCH, SYMM_UC, VITERBI, WAR_UC)
