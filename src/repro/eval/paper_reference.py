"""The paper's published numbers, for automated shape comparison.

Transcribed from Table II and Table IV of the MICRO 2014 paper.  The
reproduction does not chase absolute cycle counts (different substrate,
scaled datasets); what must hold is the *shape*: which kernels win
under specialized execution, which lose to the out-of-order baselines,
and the ranking across kernels.  :func:`compare_table2` quantifies
that with directional agreement and Spearman rank correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Table II, io:S column — speedup of specialized execution on io+x
#: over the serial binary on io.
PAPER_IO_S = {
    "rgb2cmyk-uc": 2.24, "sgemm-uc": 2.29, "ssearch-uc": 2.65,
    "symm-uc": 2.01, "viterbi-uc": 2.30, "war-uc": 1.90,
    "adpcm-or": 1.16, "covar-or": 2.58, "dither-or": 1.49,
    "kmeans-or": 3.20, "sha-or": 1.17, "symm-or": 2.40,
    "dynprog-om": 1.26, "knn-om": 1.44, "ksack-sm-om": 2.57,
    "ksack-lg-om": 3.46, "war-om": 2.40, "mm-orm": 3.13,
    "stencil-orm": 1.02, "btree-ua": 1.52, "hsort-ua": 1.34,
    "huffman-ua": 1.57, "rsort-ua": 2.46, "bfs-uc-db": 2.96,
    "qsort-uc-db": 2.69,
}

#: Table II, ooo/4:S — where the paper's specialized execution loses
#: to the aggressive four-way out-of-order baseline (S < 1).
PAPER_OOO4_S_LOSERS = (
    "adpcm-or", "covar-or", "dither-or", "sha-or", "symm-or",
    "dynprog-om", "war-om", "stencil-orm", "hsort-ua", "huffman-ua",
    "rsort-ua",
)

#: Table II, ooo/4:S — clear winners (S meaningfully > 1).
PAPER_OOO4_S_WINNERS = (
    "rgb2cmyk-uc", "ssearch-uc", "war-uc", "kmeans-or", "mm-orm",
    "bfs-uc-db", "qsort-uc-db",
)

#: abstract-level claims
PAPER_AREA_OVERHEAD = 0.43          # primary LPSU vs GPP (Table V)
PAPER_VLSI_EFFICIENCY = (1.6, 2.1)  # Fig 10 range
PAPER_VLSI_SPEEDUP = (2.4, 4.0)     # Fig 10 range


@dataclass
class ShapeComparison:
    """Agreement between measured and published Table II columns."""

    kernels: List[str]
    paper: List[float]
    measured: List[float]
    direction_agreement: float      # fraction agreeing on >1 vs <1
    spearman_rho: float             # rank correlation

    def summary(self):
        return ("%d kernels: direction agreement %.0f%%, "
                "Spearman rho %.2f"
                % (len(self.kernels), 100 * self.direction_agreement,
                   self.spearman_rho))


def _spearman(a, b):
    """Spearman rank correlation (scipy when available)."""
    try:
        from scipy.stats import spearmanr
        rho = spearmanr(a, b).statistic
        return float(rho)
    except Exception:  # pragma: no cover - scipy is a hard dep here
        # rank-transform + Pearson fallback
        def ranks(xs):
            order = sorted(range(len(xs)), key=lambda i: xs[i])
            out = [0.0] * len(xs)
            for rank, i in enumerate(order):
                out[i] = float(rank)
            return out

        ra, rb = ranks(a), ranks(b)
        n = len(ra)
        ma, mb = sum(ra) / n, sum(rb) / n
        cov = sum((x - ma) * (y - mb) for x, y in zip(ra, rb))
        va = sum((x - ma) ** 2 for x in ra) ** 0.5
        vb = sum((y - mb) ** 2 for y in rb) ** 0.5
        return cov / (va * vb) if va and vb else 0.0


def compare_table2(measured_io_s, paper=None, threshold=1.05):
    """Compare measured io:S speedups against the paper's.

    *measured_io_s* maps kernel name -> speedup.  Direction agreement
    treats speedups within ``1/threshold..threshold`` as neutral (they
    agree with anything).
    """
    paper = paper or PAPER_IO_S
    kernels = sorted(set(paper) & set(measured_io_s))
    ps = [paper[k] for k in kernels]
    ms = [measured_io_s[k] for k in kernels]
    agree = 0
    for p, m in zip(ps, ms):
        near = (1 / threshold) <= m <= threshold \
            or (1 / threshold) <= p <= threshold
        if near or (p > 1) == (m > 1):
            agree += 1
    return ShapeComparison(
        kernels=kernels, paper=ps, measured=ms,
        direction_agreement=agree / len(kernels) if kernels else 0.0,
        spearman_rho=_spearman(ps, ms) if len(kernels) > 2 else 0.0)


def measured_io_s(scale="small", seed=0, kernels=None):
    """Collect the measured io:S column via the runner."""
    from .runner import speedup
    names = kernels or sorted(PAPER_IO_S)
    return {name: speedup(name, "io+x", "specialized", scale=scale,
                          seed=seed)
            for name in names}


def render_comparison(comparison):
    from .report import render_table
    rows = []
    for k, p, m in zip(comparison.kernels, comparison.paper,
                       comparison.measured):
        mark = "=" if (p > 1) == (m > 1) else "!"
        rows.append([k, "%.2f" % p, "%.2f" % m, mark])
    table = render_table(
        ["Kernel", "paper io:S", "measured io:S", ""], rows,
        title="Paper vs measured (Table II, io:S)")
    return table + "\n" + comparison.summary()
