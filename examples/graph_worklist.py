"""Domain scenario: irregular graph traversal with a dynamically
growing worklist (the paper's motivating ``xloop.uc.db`` use case).

Runs worklist BFS from the kernel suite on every platform the paper
evaluates and prints the picture the paper's Section IV-C paints:
worklist kernels beat even the aggressive out-of-order cores because
the LPSU exploits inter-iteration memory-level parallelism, while the
conservative AMO implementation penalizes the OOO GPPs' traditional
execution.

Run:  python examples/graph_worklist.py
"""

from repro.eval import render_table
from repro.eval.runner import baseline_run, run
from repro.kernels import get_kernel


def main():
    name = "bfs-uc-db"
    spec = get_kernel(name)
    print("kernel: %s — %s" % (name, spec.description))
    compiledish = run(name, "io", scale="small")
    print("static xloops: %s" % (compiledish.static_xloops,))

    rows = []
    for gpp in ("io", "ooo/2", "ooo/4"):
        base = baseline_run(name, gpp, scale="small")
        trad = run(name, gpp, mode="traditional", scale="small")
        spec_run = run(name, gpp + "+x", mode="specialized",
                       scale="small")
        adapt = run(name, gpp + "+x", mode="adaptive", scale="small")
        rows.append([
            gpp, base.cycles,
            "%.2f" % (base.cycles / trad.cycles),
            "%.2f" % (base.cycles / spec_run.cycles),
            "%.2f" % (base.cycles / adapt.cycles),
            spec_run.lpsu_stats.iterations,
        ])
    print()
    print(render_table(
        ["GPP", "serial cyc", "T", "S", "A", "LPSU iters"], rows,
        title="worklist BFS: speedups vs the serial binary "
              "(paper Table II bfs-uc-db row)"))

    spec_run = run(name, "io+x", mode="specialized", scale="small")
    b = spec_run.lpsu_stats.breakdown()
    print("\nLPSU lane-cycle breakdown on io+x: "
          + ", ".join("%s=%d" % kv for kv in sorted(b.items())))
    print("\nNote the T column: the XLOOPS binary needs AMOs for the "
          "worklist that the serial binary avoids, so traditional "
          "execution runs below 1x — exactly the paper's observation.")


if __name__ == "__main__":
    main()
