"""Constraint core for the symbolic dependence prover.

Pure python, no AST or compiler imports (``depend`` consults this
module, ``prover`` builds on it; keeping it leaf-level avoids import
cycles).  Three pieces:

* :class:`Poly` — multivariate integer polynomials over named atoms
  (the induction variable, auxiliary inner-loop counters, and opaque
  loop-invariant symbols such as ``n``).  Array subscripts decompose
  into these exactly; anything that does not is "unknown" and handled
  conservatively upstream.
* symbolic reasoning helpers — shifted-coefficient nonnegativity
  (:func:`poly_nonneg`), box bounds of a linear form with symbolic
  coefficients (:func:`linear_bounds`), single-term polynomial
  division for the quotient/remainder disjointness rule
  (:func:`divmod_term`), and the exact two-variable linear
  diophantine test (:func:`pair_dependent_over_z`) that the ZIV/SIV
  pass calls into.
* :func:`solve_eqs` — a small interval-propagation solver with
  binary variable splitting (a DPLL-style branch-and-prune over
  finite integer boxes) used by the bounded model check to find
  concrete counterexample iteration pairs.

``z3`` is an optional extra: when installed *and* enabled (the
``REPRO_PROVER_Z3`` environment variable), :func:`z3_refute` answers
unbounded queries the pure-python core leaves unknown.  Nothing in
tier-1 requires it.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# optional z3 extra (feature-gated; tier-1 never requires it)
# ---------------------------------------------------------------------------

try:  # pragma: no cover - exercised only where z3 is installed
    import z3  # type: ignore
    HAS_Z3 = True
except ImportError:
    z3 = None
    HAS_Z3 = False


def z3_enabled():
    """True when the z3 extra is installed and opted into."""
    return HAS_Z3 and os.environ.get("REPRO_PROVER_Z3", "0") not in ("", "0")


# ---------------------------------------------------------------------------
# multivariate integer polynomials
# ---------------------------------------------------------------------------

class Poly:
    """Polynomial with integer coefficients over named atoms.

    ``terms`` maps a monomial — a sorted tuple of atom names, with
    repetition for powers — to its coefficient; the empty tuple is the
    constant term.  Instances are immutable by convention.
    """

    __slots__ = ("terms",)

    def __init__(self, terms=None):
        self.terms = {m: c for m, c in (terms or {}).items() if c}

    @classmethod
    def const(cls, value):
        return cls({(): int(value)})

    @classmethod
    def var(cls, name):
        return cls({(name,): 1})

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other):
        other = _coerce(other)
        terms = dict(self.terms)
        for m, c in other.terms.items():
            terms[m] = terms.get(m, 0) + c
        return Poly(terms)

    def __sub__(self, other):
        return self + (-_coerce(other))

    def __neg__(self):
        return Poly({m: -c for m, c in self.terms.items()})

    def __mul__(self, other):
        other = _coerce(other)
        terms: Dict[Tuple[str, ...], int] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = tuple(sorted(m1 + m2))
                terms[m] = terms.get(m, 0) + c1 * c2
        return Poly(terms)

    __radd__ = __add__
    __rmul__ = __mul__

    # -- inspection --------------------------------------------------------

    def key(self):
        return tuple(sorted(self.terms.items()))

    def __eq__(self, other):
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self):
        return hash(self.key())

    @property
    def is_const(self):
        return not self.terms or set(self.terms) == {()}

    @property
    def const_value(self):
        return self.terms.get((), 0)

    def atoms(self):
        return {name for m in self.terms for name in m}

    def single_term(self):
        """``(coef, monomial)`` when the poly is one non-constant term."""
        if len(self.terms) != 1:
            return None
        (mono, coef), = self.terms.items()
        if not mono:
            return None
        return coef, mono

    def linear_split(self, names):
        """Split into ``({name: coef_poly}, rest_poly)`` treating the
        poly as linear over *names*; None when any of *names* appears
        nonlinearly (squared, or multiplying another listed name)."""
        names = set(names)
        coefs: Dict[str, Poly] = {}
        rest = Poly()
        for mono, c in self.terms.items():
            hit = [a for a in mono if a in names]
            if not hit:
                rest = rest + Poly({mono: c})
            elif len(hit) == 1:
                v = hit[0]
                other = list(mono)
                other.remove(v)
                coefs[v] = coefs.get(v, Poly()) + Poly({tuple(other): c})
            else:
                return None
        return coefs, rest

    def subst(self, mapping):
        """Substitute atoms by polynomials (``{name: Poly}``)."""
        out = Poly()
        for mono, c in self.terms.items():
            term = Poly.const(c)
            for atom in mono:
                term = term * mapping.get(atom, Poly.var(atom))
            out = out + term
        return out

    def evaluate(self, env):
        """Integer value under a complete ``{name: int}`` environment."""
        total = 0
        for mono, c in self.terms.items():
            v = c
            for atom in mono:
                v *= env[atom]
            total += v
        return total

    def interval(self, box):
        """Interval ``(lo, hi)`` of the poly over ``{name: (lo, hi)}``
        (inclusive) concrete boxes, by interval arithmetic."""
        lo = hi = 0
        for mono, c in self.terms.items():
            tlo, thi = c, c
            for atom in mono:
                alo, ahi = box[atom]
                cands = (tlo * alo, tlo * ahi, thi * alo, thi * ahi)
                tlo, thi = min(cands), max(cands)
            lo += tlo
            hi += thi
        return lo, hi

    def __repr__(self):
        if not self.terms:
            return "0"
        parts = []
        for mono, c in sorted(self.terms.items()):
            body = "*".join(mono)
            if not mono:
                parts.append("%d" % c)
            elif c == 1:
                parts.append(body)
            elif c == -1:
                parts.append("-%s" % body)
            else:
                parts.append("%d*%s" % (c, body))
        return " + ".join(parts).replace("+ -", "- ")


def _coerce(value):
    return value if isinstance(value, Poly) else Poly.const(value)


# ---------------------------------------------------------------------------
# symbolic reasoning over atom lower bounds
# ---------------------------------------------------------------------------

def poly_nonneg(p, lbs):
    """Prove ``p >= 0`` given each atom ``a >= lbs[a]``.

    Shift every atom by its lower bound (``a -> lb + a'`` with
    ``a' >= 0``); the poly is nonnegative when every coefficient of
    the shifted form is.  Atoms without a known lower bound defeat the
    proof (returns False — this is a prover, not a heuristic)."""
    missing = [a for a in p.atoms() if a not in lbs]
    if missing:
        return False
    shifted = p.subst({a: Poly.var(a) + Poly.const(lbs[a])
                       for a in p.atoms()})
    return all(c >= 0 for c in shifted.terms.values())


def poly_pos(p, lbs):
    """Prove ``p >= 1``."""
    return poly_nonneg(p - Poly.const(1), lbs)


def linear_bounds(p, ranges, lbs):
    """Symbolic ``(min, max)`` polys of *p* over the box *ranges*
    (``{var: (lo_poly, hi_poly)}``, half-open) — or None.

    *p* must be linear in the range variables, the bound polys must
    not reference range variables, and every variable coefficient must
    have a provable sign under *lbs*."""
    split = p.linear_split(set(ranges))
    if split is None:
        return None
    coefs, rest = split
    mn = mx = rest
    rangevars = set(ranges)
    for v, c in coefs.items():
        lo, hi = ranges[v]
        if lo is None or hi is None:
            return None
        if (lo.atoms() | hi.atoms()) & rangevars:
            return None
        top = hi - Poly.const(1)
        if poly_nonneg(c, lbs):
            mn, mx = mn + c * lo, mx + c * top
        elif poly_nonneg(-c, lbs):
            mn, mx = mn + c * top, mx + c * lo
        else:
            return None
    return mn, mx


def eq_unsat(p, ranges, lbs):
    """Prove ``p = 0`` has no solution in the box: its symbolic
    minimum is >= 1 or its maximum is <= -1."""
    bounds = linear_bounds(p, ranges, lbs)
    if bounds is None:
        return False
    mn, mx = bounds
    return poly_pos(mn, lbs) or poly_pos(-mx, lbs)


def divmod_term(p, coef, mono):
    """Divide *p* by the single term ``coef * mono``: returns
    ``(q, r)`` with ``p == q * term + r``, splitting monomial-wise
    (a term is divisible when its coefficient is a multiple of *coef*
    and its monomial contains *mono* as a sub-multiset)."""
    q = Poly()
    r = Poly()
    need = list(mono)
    for m, c in p.terms.items():
        left = list(m)
        ok = c % coef == 0
        if ok:
            for atom in need:
                if atom in left:
                    left.remove(atom)
                else:
                    ok = False
                    break
        if ok:
            q = q + Poly({tuple(left): c // coef})
        else:
            r = r + Poly({m: c})
    return q, r


# ---------------------------------------------------------------------------
# exact two-variable linear diophantine test (consulted by depend.py)
# ---------------------------------------------------------------------------

def pair_dependent_over_z(coef_a, coef_b, delta):
    """May ``ca*i + Ca`` and ``cb*j + Cb`` collide for integers
    ``i != j``?  (*delta* is ``Ca - Cb``.)

    Exact over all of Z — a superset of any loop's iteration range, so
    False is a sound "no cross-iteration dependence" verdict for the
    conservative weak-SIV/MIV fallthrough.  Solutions of
    ``ca*i - cb*j = -delta`` exist iff ``gcd(ca, cb)`` divides
    *delta*; when ``ca != cb`` the solution lattice varies ``i - j``,
    so some solution has ``i != j``."""
    g = math.gcd(coef_a, coef_b)
    if g == 0:
        return delta == 0
    return delta % g == 0


# ---------------------------------------------------------------------------
# interval-propagation solver (branch-and-prune over finite boxes)
# ---------------------------------------------------------------------------

#: safety valve for adversarial inputs; generous for real subscripts
MAX_SPLITS = 20000


def solve_eqs(eqs, domains, neq=None, order=None):
    """Find an integer point of the box *domains* (``{name: (lo, hi)}``
    inclusive) satisfying every ``poly == 0`` in *eqs* and, when *neq*
    is a ``(a, b)`` pair, ``a != b``.  Returns ``{name: int}`` or
    None.

    Branch-and-prune: interval-evaluate every equation over the
    current box, discard boxes that cannot contain a root, split the
    first unfixed variable at its midpoint, recurse left-first — which
    makes the returned solution lexicographically minimal in *order*
    (default: sorted names)."""
    names = list(order) if order else sorted(domains)
    budget = [MAX_SPLITS]

    def feasible(box):
        for p in eqs:
            lo, hi = p.interval(box)
            if lo > 0 or hi < 0:
                return False
        if neq is not None:
            a, b = neq
            if box[a][0] == box[a][1] == box[b][0] == box[b][1]:
                return False
        return True

    def descend(box):
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        if not feasible(box):
            return None
        for name in names:
            lo, hi = box[name]
            if lo != hi:
                mid = (lo + hi) // 2
                for half in ((lo, mid), (mid + 1, hi)):
                    sub = dict(box)
                    sub[name] = half
                    hit = descend(sub)
                    if hit is not None:
                        return hit
                return None
        return {k: v[0] for k, v in box.items()}

    for name, (lo, hi) in domains.items():
        if lo > hi:
            return None
    return descend(dict(domains))


# ---------------------------------------------------------------------------
# z3 bridge (optional extra)
# ---------------------------------------------------------------------------

def _to_z3(p, ivars):  # pragma: no cover - requires the z3 extra
    expr = 0
    for mono, c in p.terms.items():
        term = c
        for atom in mono:
            term = term * ivars[atom]
        expr = expr + term
    return expr


def z3_refute(diff, ranges, lbs, neq, timeout_ms=2000):
    """Prove ``diff = 0`` unsatisfiable over the integers under the
    symbolic box *ranges* and atom lower bounds *lbs* with
    ``neq[0] != neq[1]`` — via z3, when installed.  Returns True
    (refuted: provably independent), False (a model exists), or None
    (z3 missing, disabled, or inconclusive)."""
    if not z3_enabled():
        return None
    atoms = set(diff.atoms()) | set(lbs)
    for lo, hi in ranges.values():
        for b in (lo, hi):
            if b is not None:
                atoms |= b.atoms()
    ivars = {a: z3.Int(a) for a in atoms}  # pragma: no cover
    solver = z3.Solver()  # pragma: no cover
    solver.set("timeout", timeout_ms)  # pragma: no cover
    for a, lb in lbs.items():  # pragma: no cover
        solver.add(ivars[a] >= lb)
    for v, (lo, hi) in ranges.items():  # pragma: no cover
        if v not in ivars:
            continue
        if lo is not None:
            solver.add(ivars[v] >= _to_z3(lo, ivars))
        if hi is not None:
            solver.add(ivars[v] < _to_z3(hi, ivars))
    if neq is not None:  # pragma: no cover
        solver.add(ivars[neq[0]] != ivars[neq[1]])
    solver.add(_to_z3(diff, ivars) == 0)  # pragma: no cover
    verdict = solver.check()  # pragma: no cover
    if verdict == z3.unsat:  # pragma: no cover
        return True
    if verdict == z3.sat:  # pragma: no cover
        return False
    return None  # pragma: no cover
