"""JSON export tests."""

import json

import pytest

from repro.eval import (build_row, build_table5, fig8_data, load_json,
                        run, run_to_dict, save_json, series_to_dict,
                        table2_to_dict, table5_to_dict)


class TestSerializers:
    def test_run_to_dict(self):
        r = run("sha-or", "io+x", mode="specialized", scale="tiny")
        d = run_to_dict(r)
        assert d["kernel"] == "sha-or"
        assert d["cycles"] == r.cycles
        assert d["lpsu"]["iterations"] == r.lpsu_stats.iterations
        json.dumps(d)   # must be JSON-safe

    def test_table2_to_dict_with_geomeans(self):
        rows = [build_row("sha-or", scale="tiny"),
                build_row("rgb2cmyk-uc", scale="tiny")]
        d = table2_to_dict(rows)
        assert len(d["rows"]) == 2
        assert "io:S" in d["geomeans"]
        assert d["geomeans"]["io:S"] > 0
        json.dumps(d)

    def test_table2_empty(self):
        assert table2_to_dict([]) == {"rows": [], "geomeans": {}}

    def test_table5_to_dict(self):
        d = table5_to_dict(build_table5())
        assert d[0]["name"] == "scalar"
        assert all("total_mm2" in row for row in d)
        json.dumps(d)

    def test_series_to_dict(self):
        d = series_to_dict({"S": {"a": 1.0}, "A": {"a": 2.0}})
        assert d == {"S": {"a": 1.0}, "A": {"a": 2.0}}

    def test_fig8_points(self):
        from repro.eval import fig8_to_dict
        pts = fig8_data(kernels=("sha-or",), configs=("io+x",),
                        modes=("specialized",), scale="tiny")
        d = fig8_to_dict(pts)
        assert d[0]["kernel"] == "sha-or"
        json.dumps(d)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "out.json")
        payload = {"rows": [1, 2, 3], "x": {"y": 4.5}}
        save_json(path, payload)
        assert load_json(path) == payload


class TestCLIIntegration:
    def test_table_json_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "t5.json")
        assert main(["table", "table5", "--json", path]) == 0
        data = load_json(path)
        assert any(row["name"] == "lpsu+i128+ln4" for row in data)
