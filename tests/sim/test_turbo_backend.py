"""Turbo-backend edge cases.

The turbo tier batches steady-state iterations through compiled
segment replay, so its riskiest inputs are the ones where the steady
state is short, broken, or never reached: trip counts below the
detection window, a data-dependent ``xloop.break`` firing after the
schedule settled, adaptive-mode migrations, and branchy kernels whose
schedule never repeats.  In every one of those turbo must degrade
gracefully and stay bit-identical to the reference interpreter.

The cache-key tests pin the other half of the contract: ``verify=True``
always runs on the interp tier and is never served from (or stored
to) the result caches, and an ``--approx`` run can never satisfy an
exact request.
"""

import pytest

from repro.eval import runner
from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.sim.backends import resolve_backend
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate
from repro.uarch.system import SystemSimulator

_STREAM_SRC = """
void vvadd(int* x, int* y, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        z[i] = x[i] + y[i];
    }
}
"""

_FIND_SRC = """
int find(int* x, int n) {
    int hit = 0 - 1;
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        if (x[i] == 12345) {
            hit = i;
            break;
        }
    }
    return hit;
}
"""


def _config():
    return SystemConfig("t", IO, LPSUConfig())


def _identical(a, b):
    (ra, ma), (rb, mb) = a, b
    assert ra.cycles == rb.cycles
    assert ra.return_value == rb.return_value
    assert repr(ra.lpsu_stats) == repr(rb.lpsu_stats)
    assert dict(vars(ra.events)) == dict(vars(rb.events))
    assert ma.pages_equal(mb)


def _stream_run(backend, n):
    program = compile_source(_STREAM_SRC).program
    mem = Memory()
    xa, ya, za = 0x100000, 0x140000, 0x180000
    mem.write_words(xa, [(3 * i + 1) & 0xFFFFFFFF for i in range(n)])
    mem.write_words(ya, [(7 * i) & 0xFFFFFFFF for i in range(n)])
    r = simulate(program, _config(), entry="vvadd",
                 args=(xa, ya, za, n), mem=mem, mode="specialized",
                 backend=backend)
    return r, mem


def _kernel_run(name, backend, mode="specialized", **kw):
    spec = get_kernel(name)
    program = compile_source(spec.source).program
    mem = Memory()
    args = spec.workload("tiny", 0).apply(mem)
    r = simulate(program, _config(), entry=spec.entry, args=args,
                 mem=mem, mode=mode, backend=backend, **kw)
    return r, mem


class TestShortAndBrokenSteadyState:
    @pytest.mark.parametrize("n", (1, 2, 5, 8, 16, 48))
    def test_trip_count_below_detection_window(self, n):
        # too few iterations for the memo to anchor (or to anchor more
        # than once): turbo must not replay garbage, just match interp
        _identical(_stream_run("turbo", n), _stream_run("interp", n))

    def test_xbreak_after_steady_state(self):
        # the needle sits at 3/4 of a long stream: the schedule
        # reaches steady state, gets batch-replayed, and then the
        # data-dependent exit fires mid-window
        program = compile_source(_FIND_SRC).program
        n, needle_at = 2048, 1536
        results = []
        for backend in ("turbo", "interp"):
            mem = Memory()
            xa = 0x100000
            data = [(5 * i + 2) & 0x3FFFFFFF for i in range(n)]
            data[needle_at] = 12345
            mem.write_words(xa, data)
            r = simulate(program, _config(), entry="find",
                         args=(xa, n), mem=mem, mode="specialized",
                         backend=backend)
            results.append((r, mem))
        _identical(results[0], results[1])
        assert results[0][0].return_value == needle_at

    def test_adaptive_mode_identical_across_backends(self):
        # adaptive dispatch migrates a loop between the GPP and the
        # LPSU mid-run (changing the active lane count under the
        # memo's feet); decisions and timing must not depend on the
        # backend tier
        turbo = _kernel_run("war-om", "turbo", mode="adaptive")
        interp = _kernel_run("war-om", "interp", mode="adaptive")
        assert dict(turbo[0].adaptive_decisions)
        assert dict(turbo[0].adaptive_decisions) \
            == dict(interp[0].adaptive_decisions)
        _identical(turbo, interp)

    def test_branchy_kernel_degrades_to_fused(self):
        # rgb2cmyk's per-pixel max() branches make the iteration
        # schedule aperiodic: the turbo memo goes dead and the run
        # must still be bit-identical (effectively the fused tier)
        _identical(_kernel_run("rgb2cmyk-uc", "turbo"),
                   _kernel_run("rgb2cmyk-uc", "interp"))


class TestBackendSelection:
    def test_verify_forces_interp(self):
        spec = get_kernel("sgemm-uc")
        program = compile_source(spec.source).program
        sim = SystemSimulator(program, _config(), verify=True,
                              backend="turbo")
        assert sim.backend == "interp"
        assert not sim.fast

    def test_no_turbo_hatch_demotes_auto_to_fused(self, monkeypatch):
        from repro.sim.vector import HAS_NUMPY
        monkeypatch.delenv("REPRO_NO_TURBO", raising=False)
        monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
        top = "vector" if HAS_NUMPY else "turbo"
        assert resolve_backend("auto").name == top
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        assert resolve_backend("auto").name == "turbo"
        monkeypatch.setenv("REPRO_NO_TURBO", "1")
        assert resolve_backend("auto").name == "fused"
        # an explicit request is not demoted: the hatches only govern
        # what "auto" means
        assert resolve_backend("turbo").name == "turbo"

    def test_approx_requires_turbo(self):
        spec = get_kernel("sgemm-uc")
        program = compile_source(spec.source).program
        with pytest.raises(ValueError):
            SystemSimulator(program, _config(), backend="fused",
                            approx=0.1)


class TestCacheKeys:
    def test_memo_key_distinguishes_backend_and_approx(self):
        def key(**kw):
            return runner.memo_key("vvadd-uc", "io+x",
                                   mode="specialized", scale="tiny",
                                   **kw)
        keys = {key(backend="interp"), key(backend="fused"),
                key(backend="turbo"), key(backend="turbo", approx=0.5),
                key(backend="turbo", approx=0.25)}
        assert len(keys) == 5

    def test_fingerprint_distinguishes_backend_and_approx(self):
        spec = get_kernel("vvadd-uc")
        from repro.eval.configs import config
        sysconfig = config("io+x")

        def fp(backend_name, approx):
            return runner._fingerprint(
                spec, sysconfig, "specialized", "xloops", True,
                "tiny", 0, False, backend_name, approx)
        prints = {fp("interp", 0.0), fp("fused", 0.0),
                  fp("turbo", 0.0), fp("turbo", 0.5)}
        assert len(prints) == 4

    def test_verified_run_never_served_from_cache(self):
        runner.clear_cache(keep_disk=True)
        before = runner.simulations
        common = dict(mode="specialized", scale="tiny",
                      use_disk_cache=False)
        runner.run("vvadd-uc", "io+x", **common)
        assert runner.simulations == before + 1
        # a verified run must re-simulate (on interp) even though an
        # unverified result for the same point is already memoized...
        r = runner.run("vvadd-uc", "io+x", verify=True, **common)
        assert runner.simulations == before + 2
        assert r.cycles > 0
        # ...and must not have poisoned the cache for later requests
        runner.run("vvadd-uc", "io+x", verify=True, **common)
        assert runner.simulations == before + 3
        runner.clear_cache(keep_disk=True)
