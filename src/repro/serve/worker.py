"""The distributed sweep worker: pull leased batches, simulate, ship.

``repro worker --connect ADDR`` runs one :class:`SweepWorker` against
a ``repro serve --distributed`` server.  The loop is deliberately
simple -- everything hard lives server-side in the queue's lease
bookkeeping:

1. connect and ``register`` (the server assigns a worker id and the
   lease TTL),
2. ``lease`` a batch of points; while the batch executes, a
   background thread heartbeats the lease every TTL/3,
3. run each point through the PR 5 hardened engine
   (:func:`repro.eval.hardening.execute_one` -- fork-per-point
   isolation, watchdog, retry ladder, quarantine), and stream each
   outcome back as a ``complete`` or ``fail`` op,
4. on ``drain`` exit clean; on an empty queue poll again shortly.

Robustness: the socket is shared by the main loop and the heartbeat
thread, so every RPC is send+receive *atomically under one lock* --
frames never interleave.  Any socket or protocol error drops the
connection and re-registers through a bounded exponential
:class:`~repro.resilience.backoff.Backoff`; in-flight work the server
requeues when it notices the disconnect, and any completion this
worker still manages to deliver later is deduplicated server-side
(first writer wins), never double-credited.

Chaos: the worker consults the shared ``$REPRO_CHAOS`` plan
(:func:`repro.eval.hardening.chaos_modes`) for three modes keyed by
the *server-assigned requeue attempt* carried in each leased point --
``kill_worker`` (die before touching the point), ``hang_worker``
(wedge: heartbeats go silent so the lease expires) and ``sever``
(cut the socket mid-frame).  All three strike *before* the point
simulates, so the requeued attempt performs the first and only
simulation -- the exact-accounting invariant the acceptance test
asserts.  In-process :class:`WorkerThread` harnesses emulate
``kill_worker`` by vanishing (socket dropped, loop dead) instead of
``os._exit``; a real ``repro worker`` process actually dies with
:data:`WORKER_CHAOS_EXIT`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor, wait

from ..eval.hardening import HardeningPolicy, chaos_modes, execute_one
from ..resilience.backoff import Backoff, BackoffExhausted
from . import protocol
from .client import connect
from .queue import DEFAULT_LEASE_TTL, label_of

#: exit code a chaos-killed *worker process* dies with (distinct from
#: the hardened engine's point-child CHAOS_EXIT=13)
WORKER_CHAOS_EXIT = 23


class _ChaosKilled(Exception):
    """In-thread stand-in for a chaos-killed worker process."""


class _Severed(Exception):
    """The chaos plan cut our socket mid-frame; reconnect and go on."""


class SweepWorker:
    """One worker loop (see the module docstring).

    *jobs* bounds concurrent hardened executions inside this worker;
    *batch* is the lease size requested per pull (default
    ``2 * jobs`` so the next points are already local when one
    finishes); *poll* the idle re-poll interval; *allow_exit* lets
    chaos ``kill_worker`` call ``os._exit`` (real worker processes
    only -- never inside a test harness thread).
    """

    def __init__(self, address, jobs=1, name="", timeout=0.0,
                 retries=3, backoff=0.25, poll=0.25, batch=None,
                 allow_exit=False, connect_timeout=None,
                 announce=None):
        self.address = address
        self.jobs = max(1, int(jobs or 1))
        self.name = str(name) or "worker-%d" % os.getpid()
        self.policy = HardeningPolicy(
            timeout=float(timeout or 0.0),
            retries=max(1, int(retries)),
            backoff=max(0.0, float(backoff)))
        self.poll = max(0.01, float(poll))
        self.batch = max(1, int(batch) if batch else 2 * self.jobs)
        self.allow_exit = bool(allow_exit)
        self.connect_timeout = connect_timeout
        self.announce = announce
        self.lease_ttl = DEFAULT_LEASE_TTL
        self.counters = {"leases": 0, "points": 0, "completed": 0,
                         "failed": 0, "duplicates": 0, "killed": 0,
                         "hung": 0, "severed": 0, "reconnects": 0}
        self.drained = False
        self._stop = threading.Event()
        self._wedged = threading.Event()   # hang chaos silences heartbeats
        self._lock = threading.RLock()     # serializes whole RPCs
        self._sock = None
        self._worker_id = None
        self._connects = 0

    # -- wire ------------------------------------------------------------

    def _drop_socket(self):
        with self._lock:
            sock, self._sock, self._worker_id = self._sock, None, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _rpc(self, msg):
        """One send+receive, atomic under the socket lock (the
        heartbeat thread shares this socket)."""
        with self._lock:
            if self._sock is None:
                raise protocol.ProtocolError("worker not connected")
            protocol.send_frame(self._sock, msg)
            reply = protocol.recv_frame(self._sock)
        if reply is None:
            raise protocol.ProtocolError(
                "server closed the worker connection")
        if isinstance(reply, dict) and reply.get("error") \
                and "type" not in reply:
            # for a worker even a deliberate verdict ("unknown
            # worker": the server restarted) is cured by
            # reconnect + re-register, so it joins the retry path
            raise protocol.RemoteError(reply["error"])
        return reply

    def _ensure_registered(self):
        with self._lock:
            if self._sock is not None and self._worker_id is not None:
                return
            self._drop_socket()
            self._sock = connect(self.address, self.connect_timeout)
            self._connects += 1
            if self._connects > 1:
                self.counters["reconnects"] += 1
            reply = self._rpc({
                "op": "register", "role": "worker", "name": self.name,
                "pid": os.getpid(), "jobs": self.jobs,
                "protocol": protocol.PROTOCOL_VERSION})
            self._worker_id = int(reply["worker_id"])
            self.lease_ttl = float(
                reply.get("lease_ttl", DEFAULT_LEASE_TTL))
        if self.announce:
            self.announce("registered as worker %d on %s (jobs=%d)"
                          % (self._worker_id, self.address, self.jobs))

    # -- chaos -----------------------------------------------------------

    def _chaos(self, label, attempt):
        modes = chaos_modes(label)
        if attempt in modes.get("kill_worker", ()):
            self.counters["killed"] += 1
            if self.allow_exit:
                os._exit(WORKER_CHAOS_EXIT)
            raise _ChaosKilled(label)
        if attempt in modes.get("hang_worker", ()):
            self.counters["hung"] += 1
            # a wedged worker stops heartbeating too -- that is the
            # whole point: the lease must expire server-side
            self._wedged.set()
            self._stop.wait(3600)
            raise _ChaosKilled(label)
        if attempt in modes.get("sever", ()):
            self.counters["severed"] += 1
            self._sever()
            raise _Severed(label)

    def _sever(self):
        """Cut the connection mid-frame: ship a header that promises a
        body we never send, then slam the socket shut.  The server's
        frame reader sees a truncated frame, hangs up, and requeues
        everything this worker held."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.sendall(protocol._HEADER.pack(64))
                except OSError:
                    pass
            self._drop_socket()

    # -- the loop --------------------------------------------------------

    def request_stop(self):
        """Ask the loop to exit at its next check (threadsafe); also
        un-wedges a chaos-hung worker so harness threads can be
        joined."""
        self._stop.set()

    def run(self):
        """Pull and execute leases until drain or stop; the counters
        dict (also the return value) summarizes the session."""
        reconnect = Backoff(base=0.05, cap=2.0, attempts=10,
                            sleep=lambda s: self._stop.wait(s))
        while not self._stop.is_set():
            try:
                self._ensure_registered()
                reply = self._rpc({"op": "lease",
                                   "worker_id": self._worker_id,
                                   "max_points": self.batch})
                reconnect.reset()
                kind = reply.get("type")
                if kind == "drain":
                    self.drained = True
                    break
                if kind == "lease":
                    self._run_lease(reply)
                else:                      # "empty": nothing pending
                    self._stop.wait(self.poll)
            except _ChaosKilled:
                # a killed worker vanishes: no farewell, no cleanup --
                # the server learns from the dead socket
                self._drop_socket()
                return self.counters
            except _Severed:
                continue                   # reconnect next iteration
            except (protocol.ProtocolError, OSError):
                self._drop_socket()
                try:
                    reconnect.sleep()
                except BackoffExhausted:
                    break                  # server is genuinely gone
        self._drop_socket()
        return self.counters

    def _run_lease(self, lease):
        lease_id = int(lease.get("lease_id", 0))
        items = lease.get("points") or []
        self.counters["leases"] += 1
        hb_stop = threading.Event()
        hb = threading.Thread(
            target=self._heartbeat_loop, args=(lease_id, hb_stop),
            name="repro-worker-hb", daemon=True)
        hb.start()
        try:
            if self.jobs <= 1 or len(items) <= 1:
                for item in items:
                    if self._stop.is_set():
                        break
                    self._run_point(item)
            else:
                with ThreadPoolExecutor(
                        max_workers=self.jobs,
                        thread_name_prefix="repro-worker") as pool:
                    futs = [pool.submit(self._run_point, item)
                            for item in items]
                    wait(futs)
                    for fut in futs:
                        exc = fut.exception()
                        if exc is not None:
                            raise exc
        finally:
            hb_stop.set()

    def _run_point(self, item):
        wire = item.get("wire") or {}
        attempt = int(item.get("attempt", 0))
        qkey = item.get("qkey")
        label = label_of(wire)
        self.counters["points"] += 1
        self._chaos(label, attempt)
        try:
            pt = protocol.point_from_wire(wire)
        except protocol.ProtocolError as exc:
            self._report_fail(qkey, "protocol", str(exc), 1)
            return
        outcome = execute_one(pt, self.policy)
        if outcome.failure is not None:
            self._report_fail(qkey, outcome.failure.kind,
                              outcome.failure.error,
                              outcome.failure.attempts)
            return
        reply = self._rpc({
            "op": "complete", "worker_id": self._worker_id,
            "qkey": qkey, "wall": round(outcome.wall, 6),
            "simulated": bool(outcome.simulated),
            "retries": int(outcome.retries),
            "record": protocol.pack_record(outcome.result)})
        self.counters["completed"] += 1
        if not reply.get("credited", True):
            self.counters["duplicates"] += 1

    def _report_fail(self, qkey, kind, error, attempts):
        self.counters["failed"] += 1
        self._rpc({"op": "fail", "worker_id": self._worker_id,
                   "qkey": qkey, "kind": kind, "error": error,
                   "attempts": int(attempts)})

    def _heartbeat_loop(self, lease_id, hb_stop):
        interval = max(0.02, self.lease_ttl / 3.0)
        while not hb_stop.wait(interval):
            if self._wedged.is_set():
                continue        # hang chaos: wedged workers go silent
            try:
                self._rpc({"op": "heartbeat",
                           "worker_id": self._worker_id,
                           "lease_id": lease_id})
            except (protocol.ProtocolError, OSError):
                return          # socket gone; the main loop handles it


class WorkerThread:
    """A :class:`SweepWorker` on a background thread -- tests and the
    speed bench run real workers against a :class:`ServerThread`
    without extra processes.  Chaos ``kill_worker`` is emulated (the
    loop vanishes; ``os._exit`` is never allowed here)."""

    def __init__(self, address, jobs=1, **kwargs):
        kwargs.pop("allow_exit", None)
        self.worker = SweepWorker(address, jobs=jobs,
                                  allow_exit=False, **kwargs)
        self._thread = None

    def start(self):
        self._thread = threading.Thread(
            target=self.worker.run, name="repro-worker", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout=10):
        self.worker.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def alive(self):
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self):
        return self.start()

    def __exit__(self, *_exc):
        self.stop()
        return False


def run_worker(address, jobs=1, name="", timeout=0.0, retries=3,
               backoff=0.25, poll=0.25, announce=None):
    """Run one worker process until drain/interrupt; its counters.
    This is ``repro worker``'s engine -- chaos kills are real
    ``os._exit`` here."""
    worker = SweepWorker(address, jobs=jobs, name=name,
                         timeout=timeout, retries=retries,
                         backoff=backoff, poll=poll, allow_exit=True,
                         announce=announce)
    try:
        return worker.run()
    except KeyboardInterrupt:
        worker.request_stop()
        return worker.counters
