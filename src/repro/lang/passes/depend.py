"""XLOOPS dependence analysis (paper Section II-B).

For every ``#pragma xloops``-annotated ``for`` loop this pass:

* validates the canonical counted-loop shape and the body's legality
  for specialized execution (no ``break``/``return`` out of the loop,
  no user-function calls inside the body);
* identifies inter-iteration **register** dependences (CIRs) through
  use-def scanning — scalars read before they are written in the body;
* tests inter-iteration **memory** dependences with the classic zero-,
  single-, and multiple-index-variable tests on array subscripts,
  falling back conservatively when subscripts are not affine in the
  induction variable;
* detects **dynamic bounds** (the loop-bound variable is updated in
  the body) and appends the ``.db`` control-dependence suffix;
* selects the xloop encoding: ``unordered``->``uc``, ``atomic``->``ua``,
  ``ordered``->``or``/``om``/``orm`` depending on which dependences are
  present (programmers "need not specify whether this data-dependence
  is through registers or memory or both").

Annotates each ``For`` node in place (``xloop``, ``induction``,
``cir_names``, ``bound_is_dynamic``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ...isa.xloops import ControlPattern, DataPattern, XLoopKind
from ..ast_nodes import (AddrOf, Assign, Binary, Break, Call, Cast, Decl,
                         Expr, ExprStmt, For, Function, If, Index, IntLit,
                         Return, Unary, Var, While, walk_exprs)
from ..lexer import CompileError
from ..sema import AMO_BUILTINS, FLOAT_BUILTINS
from .prover_core import pair_dependent_over_z


# ---------------------------------------------------------------------------
# canonical expression keys (for symbolic comparison)
# ---------------------------------------------------------------------------

def expr_key(expr):
    """Canonical string for structural comparison of expressions."""
    if isinstance(expr, IntLit):
        return "#%d" % expr.value
    if isinstance(expr, Var):
        return "v%d" % expr.symbol.sid
    if isinstance(expr, Index):
        return "ix(%s,%s)" % (expr_key(expr.base), expr_key(expr.subscript))
    if isinstance(expr, Unary):
        return "u%s(%s)" % (expr.op, expr_key(expr.operand))
    if isinstance(expr, Cast):
        return "c%s(%s)" % (expr.target, expr_key(expr.operand))
    if isinstance(expr, Binary):
        return "b%s(%s,%s)" % (expr.op, expr_key(expr.left),
                               expr_key(expr.right))
    if isinstance(expr, Call):
        return "f%s(%s)" % (expr.name,
                            ",".join(expr_key(a) for a in expr.args))
    return "?%r" % (expr,)


# ---------------------------------------------------------------------------
# linear (affine) forms:  coef * i + const + sum(sym terms)
# ---------------------------------------------------------------------------

@dataclass
class LinForm:
    """``coef*i + const + syms`` where *coef* is an int or a canonical
    key of a loop-invariant expression; ``syms`` is a sorted tuple of
    (key, count) pairs.  ``affine`` is False when decomposition failed.
    ``coef_expr`` keeps the AST of a symbolic coefficient so strength
    reduction can materialize the stride (``addu.xi``)."""

    affine: bool = True
    coef: object = 0            # int | str
    const: int = 0
    syms: Tuple = ()
    variant: bool = False       # offset references body-written symbols
    coef_expr: Optional[Expr] = None

    @classmethod
    def non_affine(cls):
        return cls(affine=False)


def _merge_syms(a, b, sign=1):
    counts = dict(a)
    for key, cnt in b:
        counts[key] = counts.get(key, 0) + sign * cnt
    return tuple(sorted((k, c) for k, c in counts.items() if c))


def _mentions(expr, ivar):
    for node in walk_exprs(expr):
        if isinstance(node, Var) and node.symbol == ivar:
            return True
    return False


def _invariant_atom(expr, written):
    """Treat an induction-free expression as an opaque offset term."""
    if isinstance(expr, IntLit):
        return LinForm(const=expr.value)
    for node in walk_exprs(expr):
        if isinstance(node, (Index, Call, AddrOf)):
            return LinForm.non_affine()   # may read mutable memory
    variant = any(isinstance(node, Var) and node.symbol in written
                  for node in walk_exprs(expr))
    return LinForm(syms=((expr_key(expr), 1),), variant=variant)


def decompose(expr, ivar, written):
    """Decompose *expr* into a :class:`LinForm` in terms of induction
    symbol *ivar*.  *written* is the set of symbols assigned anywhere
    in the loop body (anything mentioning them is iteration-variant)."""
    if not _mentions(expr, ivar):
        return _invariant_atom(expr, written)
    if isinstance(expr, Var):          # must be the induction variable
        return LinForm(coef=1)
    if isinstance(expr, Unary) and expr.op == "-":
        inner = decompose(expr.operand, ivar, written)
        if not inner.affine or not isinstance(inner.coef, int):
            return LinForm.non_affine()
        return LinForm(coef=-inner.coef, const=-inner.const,
                       syms=_merge_syms((), inner.syms, -1),
                       variant=inner.variant)
    if isinstance(expr, Binary) and expr.op in ("+", "-"):
        left = decompose(expr.left, ivar, written)
        right = decompose(expr.right, ivar, written)
        if not (left.affine and right.affine):
            return LinForm.non_affine()
        sign = 1 if expr.op == "+" else -1
        if isinstance(left.coef, int) and isinstance(right.coef, int):
            coef = left.coef + sign * right.coef
            coef_expr = None
        elif right.coef == 0:
            coef, coef_expr = left.coef, left.coef_expr
        elif left.coef == 0 and sign == 1:
            coef, coef_expr = right.coef, right.coef_expr
        else:
            return LinForm.non_affine()
        return LinForm(coef=coef, const=left.const + sign * right.const,
                       syms=_merge_syms(left.syms, right.syms, sign),
                       variant=left.variant or right.variant,
                       coef_expr=coef_expr)
    if isinstance(expr, Binary) and expr.op in ("*", "<<"):
        left = decompose(expr.left, ivar, written)
        right = decompose(expr.right, ivar, written)
        if not (left.affine and right.affine):
            return LinForm.non_affine()
        if expr.op == "<<":
            if right.coef != 0 or right.syms or right.variant:
                return LinForm.non_affine()
            right = LinForm(const=1 << right.const)
        # pure-integer-constant side scales the other
        for a, b in ((left, right), (right, left)):
            if a.coef == 0 and not a.syms:
                c = a.const
                if isinstance(b.coef, int):
                    coef, coef_expr = b.coef * c, None
                elif c == 1:
                    coef, coef_expr = b.coef, b.coef_expr
                else:
                    return LinForm.non_affine()
                return LinForm(coef=coef, const=b.const * c,
                               syms=tuple((k, n * c) for k, n in b.syms),
                               variant=b.variant, coef_expr=coef_expr)
        # invariant * i  (e.g. i*n): symbolic coefficient
        if not _mentions(expr.left, ivar):
            inv_expr, ivar_form = expr.left, right
        else:
            inv_expr, ivar_form = expr.right, left
        if (ivar_form.coef == 1 and not ivar_form.syms
                and ivar_form.const == 0):
            atom = _invariant_atom(inv_expr, written)
            if atom.affine and not atom.variant:
                return LinForm(coef=expr_key(inv_expr),
                               coef_expr=inv_expr)
        return LinForm.non_affine()
    return LinForm.non_affine()


# ---------------------------------------------------------------------------
# body scanning
# ---------------------------------------------------------------------------

@dataclass
class MemAccess:
    base_sid: int
    base_name: str
    form: LinForm
    is_write: bool
    is_amo: bool
    line: int


class _BodyScan:
    """Collect scalar and memory access information from a loop body."""

    def __init__(self, ivar):
        self.ivar = ivar
        self.read_first: Set = set()
        self.written: Set = set()
        self.declared_inside: Set = set()
        self.mem: List[MemAccess] = []
        self.has_break = False
        self.has_return = False
        self.calls: List[str] = []
        self.nested_annotated: List[For] = []
        self._loop_depth = 0

    # -- statement walk (tracks definitely-written scalars per path) -------

    def scan(self, stmts):
        self._stmts(stmts, set())

    def _stmts(self, stmts, definite):
        for stmt in stmts:
            self._stmt(stmt, definite)

    def _stmt(self, stmt, definite):
        if isinstance(stmt, Decl):
            self.declared_inside.add(stmt.symbol)
            if stmt.init is not None:
                self._expr(stmt.init, definite)
            self._write(stmt.symbol, definite)
        elif isinstance(stmt, Assign):
            self._expr(stmt.value, definite)
            target = stmt.target
            if isinstance(target, Var):
                self._write(target.symbol, definite)
            else:
                self._expr(target.subscript, definite)
                self._expr(target.base, definite)
                self._mem(target, is_write=True)
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr, definite)
        elif isinstance(stmt, If):
            self._expr(stmt.cond, definite)
            then_set = set(definite)
            else_set = set(definite)
            self._stmts(stmt.then, then_set)
            self._stmts(stmt.orelse, else_set)
            definite |= (then_set & else_set)
        elif isinstance(stmt, While):
            self._expr(stmt.cond, definite)
            inner = set(definite)
            self._loop_depth += 1
            self._stmts(stmt.body, inner)   # may run zero times
            self._loop_depth -= 1
            self._expr(stmt.cond, definite)
        elif isinstance(stmt, For):
            if stmt.annotation:
                self.nested_annotated.append(stmt)
            if stmt.init is not None:
                self._stmt(stmt.init, definite)
            if stmt.cond is not None:
                self._expr(stmt.cond, definite)
            inner = set(definite)
            self._loop_depth += 1
            self._stmts(stmt.body, inner)
            self._loop_depth -= 1
            if stmt.step is not None:
                self._stmt(stmt.step, inner)
        elif isinstance(stmt, Break):
            if self._loop_depth == 0:
                self.has_break = True
        elif isinstance(stmt, Return):
            self.has_return = True
            if stmt.value is not None:
                self._expr(stmt.value, definite)

    def _write(self, sym, definite):
        self.written.add(sym)
        definite.add(sym)

    def _read(self, sym, definite):
        if sym not in definite and sym not in self.read_first:
            self.read_first.add(sym)

    def _expr(self, expr, definite):
        if expr is None:
            return
        if isinstance(expr, Var):
            if expr.symbol.in_register:
                self._read(expr.symbol, definite)
            return
        if isinstance(expr, Index):
            self._expr(expr.base, definite)
            self._expr(expr.subscript, definite)
            self._mem(expr, is_write=False)
            return
        if isinstance(expr, Call):
            if expr.name in AMO_BUILTINS:
                target = expr.args[0]
                if isinstance(target, AddrOf):
                    inner = target.operand
                    self._expr(inner.base, definite)
                    self._expr(inner.subscript, definite)
                    self._mem(inner, is_write=True, is_amo=True)
                else:
                    self._expr(target, definite)
                    # pointer-typed AMO target: unknown location
                    self.mem.append(MemAccess(
                        base_sid=-1, base_name="<ptr>",
                        form=LinForm.non_affine(), is_write=True,
                        is_amo=True, line=expr.line))
                self._expr(expr.args[1], definite)
                return
            if expr.name not in FLOAT_BUILTINS:
                self.calls.append(expr.name)
            for a in expr.args:
                self._expr(a, definite)
            return
        for name in ("operand", "left", "right"):
            child = getattr(expr, name, None)
            if isinstance(child, Expr):
                self._expr(child, definite)

    def _mem(self, index_node, is_write, is_amo=False):
        base = index_node.base
        sid = base.symbol.sid if isinstance(base, Var) else -1
        name = base.symbol.name if isinstance(base, Var) else "<expr>"
        form = decompose(index_node.subscript, self.ivar, self.written)
        self.mem.append(MemAccess(sid, name, form, is_write, is_amo,
                                  index_node.line))


# ---------------------------------------------------------------------------
# dependence tests (ZIV / strong SIV / conservative MIV)
# ---------------------------------------------------------------------------

def has_cross_iteration_dep(a, b):
    """True when accesses *a*, *b* (same array, at least one a write)
    may touch the same location in different iterations."""
    fa, fb = a.form, b.form
    if not fa.affine or not fb.affine or fa.variant or fb.variant:
        return True
    if fa.syms != fb.syms:
        return True                      # differing symbolic offsets
    delta = fa.const - fb.const
    if fa.coef == fb.coef:
        if fa.coef == 0:
            # ZIV: loop-invariant location
            return delta == 0            # same location every iteration
        if delta == 0:
            return False                 # strong SIV, distance 0
        if isinstance(fa.coef, int):
            return delta % fa.coef == 0  # integer dependence distance
        return True                      # symbolic stride: conservative
    if isinstance(fa.coef, int) and isinstance(fb.coef, int):
        # weak SIV / MIV with integer strides: exact two-variable
        # linear diophantine test over all of Z (a superset of the
        # iteration range), via the prover's constraint core
        return pair_dependent_over_z(fa.coef, fb.coef, delta)
    return True                          # weak SIV/MIV: conservative


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------

def _canonical_loop(loop):
    """Extract (induction symbol, bound expr) or raise."""
    init = loop.init
    if isinstance(init, Decl):
        ivar = init.symbol
    elif isinstance(init, Assign) and isinstance(init.target, Var):
        ivar = init.target.symbol
    else:
        raise CompileError(
            "xloops loop needs 'i = start' or 'int i = start' init",
            loop.line)
    cond = loop.cond
    if not (isinstance(cond, Binary) and cond.op == "<"
            and isinstance(cond.left, Var)
            and cond.left.symbol == ivar):
        raise CompileError("xloops loop condition must be 'i < bound'",
                           loop.line)
    step = loop.step
    ok = (isinstance(step, Assign) and isinstance(step.target, Var)
          and step.target.symbol == ivar
          and isinstance(step.value, Binary) and step.value.op == "+"
          and isinstance(step.value.left, Var)
          and step.value.left.symbol == ivar
          and isinstance(step.value.right, IntLit)
          and step.value.right.value == 1)
    if not ok:
        raise CompileError("xloops loop step must be 'i++' (unit stride; "
                           "normalize the loop)", loop.line)
    return ivar, cond.right


def analyze_loop(loop, function):
    """Classify one annotated loop; annotates the For node in place."""
    ivar, bound = _canonical_loop(loop)
    scan = _BodyScan(ivar)
    scan.scan(loop.body)

    # break selects the data-dependent-exit control pattern (the
    # .de extension; the paper's ISA left this to future work)
    has_exit = scan.has_break
    if scan.has_return:
        raise CompileError("return inside an xloops loop", loop.line)
    if scan.calls:
        raise CompileError(
            "call to %r inside an xloops loop body (bodies must be "
            "self-contained for the LPSU instruction buffer)"
            % scan.calls[0], loop.line)
    for sym in scan.declared_inside:
        if sym.is_array:
            raise CompileError(
                "local array %r inside an xloops loop body would be "
                "shared across LPSU lanes; use a per-iteration slice "
                "of a buffer parameter instead" % sym.name, loop.line)

    # dynamic bound: the bound variable is updated inside the body
    dynamic = (isinstance(bound, Var) and bound.symbol in scan.written)
    bound_sym = bound.symbol if isinstance(bound, Var) else None
    if dynamic and has_exit:
        raise CompileError(
            "a loop cannot combine a dynamic bound with a "
            "data-dependent exit", loop.line)

    cirs = (scan.read_first & scan.written) - {ivar}
    if bound_sym is not None:
        cirs.discard(bound_sym)

    # register live-out discipline: outside-declared scalars written in
    # the body must be CIRs (everything else is undefined after an
    # xloop finishes -- Section II-A)
    outside_written = {
        s for s in scan.written
        if s not in scan.declared_inside and s != ivar
        and s != bound_sym and s.in_register}
    bad = outside_written - cirs

    annotation = loop.annotation
    # In a .de loop the exiting iteration's register state is
    # architecturally live-out (the LMU copies the exiting lane's
    # body-written registers back, generalizing the paper's CIR
    # copy-back), so outside-declared written scalars are permitted.
    # Contract: such scalars must be written either unconditionally
    # every iteration or only by the iteration that breaks; otherwise
    # their post-loop value is undefined.
    if annotation in ("unordered", "atomic"):
        if cirs:
            raise CompileError(
                "scalar(s) %s carry values across iterations of an "
                "'%s' loop; use 'ordered', an AMO, or privatize"
                % (sorted(c.name for c in cirs), annotation), loop.line)
        if bad and not has_exit:
            raise CompileError(
                "scalar(s) %s written in an '%s' loop body are undefined "
                "after the loop; declare them inside the loop"
                % (sorted(b.name for b in bad), annotation), loop.line)
        data = DataPattern.UC if annotation == "unordered" else \
            DataPattern.UA
    else:  # ordered
        if bad and not has_exit:
            raise CompileError(
                "scalar(s) %s written in the loop body are neither CIRs "
                "nor loop-local; declare them inside the loop"
                % sorted(b.name for b in bad), loop.line)
        has_reg = bool(cirs)
        has_mem = _memory_dependence(scan)
        if has_reg and has_mem:
            data = DataPattern.ORM
        elif has_reg:
            data = DataPattern.OR
        elif has_mem:
            data = DataPattern.OM
        else:
            # least-restrictive legal encoding (Section II-A)
            data = DataPattern.UC

    if has_exit:
        control = ControlPattern.DATA_DEPENDENT_EXIT
    elif dynamic:
        control = ControlPattern.DYNAMIC_BOUND
    else:
        control = ControlPattern.FIXED
    loop.xloop = XLoopKind(data, control)
    loop.induction = ivar
    loop.bound_is_dynamic = dynamic
    loop.cir_names = tuple(sorted(c.name for c in cirs))
    loop.cir_symbols = tuple(sorted(cirs, key=lambda s: s.sid))
    return loop


def _memory_dependence(scan):
    writes = [m for m in scan.mem if m.is_write and not m.is_amo]
    reads_writes = [m for m in scan.mem if not m.is_amo]
    for w in writes:
        for other in reads_writes:
            if other is w:
                continue
            if w.base_sid != other.base_sid:
                continue   # distinct arrays never alias (restrict)
            if has_cross_iteration_dep(w, other):
                return True
        # a write can also conflict with itself across iterations
        if w.form.affine and not w.form.variant and w.form.coef == 0:
            return True    # same invariant location stored every iter
        if not w.form.affine or w.form.variant:
            return True
    return False


def analyze_unit_loops(unit):
    """Run the loop analysis over every annotated loop in the unit."""
    for func in unit.functions:
        _walk(func.body, func)
    return unit


def _walk(stmts, func):
    for stmt in stmts:
        if isinstance(stmt, For):
            if stmt.annotation:
                analyze_loop(stmt, func)
            if stmt.init is not None:
                pass
            _walk(stmt.body, func)
        elif isinstance(stmt, If):
            _walk(stmt.then, func)
            _walk(stmt.orelse, func)
        elif isinstance(stmt, While):
            _walk(stmt.body, func)
