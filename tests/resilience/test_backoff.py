"""The bounded exponential backoff the distributed tier retries with."""

import pytest

from repro.resilience.backoff import Backoff, BackoffExhausted


def test_exponential_then_capped():
    bo = Backoff(base=0.05, factor=2.0, cap=0.3, attempts=6,
                 sleep=lambda s: None)
    assert [round(bo.next_delay(), 3) for _ in range(6)] \
        == [0.05, 0.1, 0.2, 0.3, 0.3, 0.3]


def test_budget_exhaustion_raises():
    bo = Backoff(attempts=2, sleep=lambda s: None)
    bo.next_delay()
    bo.next_delay()
    assert bo.exhausted
    with pytest.raises(BackoffExhausted):
        bo.next_delay()


def test_reset_restores_the_full_budget():
    bo = Backoff(base=0.01, attempts=2, sleep=lambda s: None)
    bo.next_delay()
    bo.next_delay()
    bo.reset()
    assert not bo.exhausted
    assert bo.next_delay() == 0.01      # schedule restarts from base


def test_sleep_uses_the_injected_sleeper():
    slept = []
    bo = Backoff(base=0.25, attempts=3, sleep=slept.append)
    assert bo.sleep() == 0.25
    assert slept == [0.25]
