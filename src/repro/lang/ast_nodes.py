"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """MiniC type: a base (``int``/``float``/``char``/``void``) plus an
    optional pointer level (0 or 1)."""

    base: str
    ptr: int = 0

    @property
    def is_pointer(self):
        return self.ptr > 0

    @property
    def elem_size(self):
        """Size of the pointee (for indexing)."""
        return 1 if self.base == "char" else 4

    def deref(self):
        if not self.is_pointer:
            raise ValueError("dereferencing non-pointer %s" % (self,))
        return Type(self.base, self.ptr - 1)

    def __str__(self):
        return self.base + "*" * self.ptr


INT = Type("int")
FLOAT = Type("float")
CHAR = Type("char")
VOID = Type("void")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    type: Optional[Type] = None   # filled by sema


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """``base[subscript]`` — base is a pointer or local array."""

    base: Optional[Expr] = None
    subscript: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""                 # '-', '!', '~'
    operand: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target: Optional[Type] = None
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class AddrOf(Expr):
    """``&lvalue`` — only valid as an AMO builtin argument."""

    operand: Optional[Expr] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Decl(Stmt):
    """``int x = e;`` or ``int buf[16];``"""

    type: Optional[Type] = None
    name: str = ""
    init: Optional[Expr] = None
    array_size: Optional[int] = None


@dataclass
class Assign(Stmt):
    """``lvalue = expr`` (compound ops are desugared by the parser)."""

    target: Optional[Expr] = None     # Var or Index
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: List[Stmt] = field(default_factory=list)
    orelse: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """Canonical counted loop: ``for (init; cond; step) body``.

    ``annotation`` carries the ``#pragma xloops`` keyword (or None for
    an ordinary loop).  ``xloop`` is filled in by the dependence
    analysis with the selected :class:`~repro.isa.xloops.XLoopKind`.
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)
    annotation: Optional[str] = None
    xloop = None                 # XLoopKind, set by analysis
    induction: Optional[str] = None
    bound_is_dynamic: bool = False
    cir_names: Tuple[str, ...] = ()


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    type: Type
    name: str


@dataclass
class Function:
    name: str
    return_type: Type
    params: List[Param]
    body: List[Stmt]
    line: int = 0


@dataclass
class Unit:
    """One translation unit (a kernel source file)."""

    functions: List[Function] = field(default_factory=list)

    def function(self, name):
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)


def walk_exprs(node):
    """Yield every sub-expression of an expression tree."""
    yield node
    for child_name in ("base", "subscript", "operand", "left", "right",
                       "value", "cond"):
        child = getattr(node, child_name, None)
        if isinstance(child, Expr):
            yield from walk_exprs(child)
    for arg in getattr(node, "args", ()):
        yield from walk_exprs(arg)


def stmt_exprs(stmt):
    """Yield the top-level expressions of one statement."""
    for name in ("init", "cond", "step", "value", "expr", "target"):
        child = getattr(stmt, name, None)
        if isinstance(child, Expr):
            yield child
        elif isinstance(child, Stmt):
            yield from stmt_exprs(child)


def walk_stmts(stmts):
    """Yield every statement in a statement list, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.orelse)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                yield stmt.init
            if stmt.step is not None:
                yield stmt.step
            yield from walk_stmts(stmt.body)
