"""Bounded exponential backoff for reconnect/retry loops.

The distributed serve tier retries in several places -- a client
resubmitting after a server restart, a worker re-registering after a
severed socket -- and every one of those loops wants the same shape:
exponential delays from a small base, capped, with a bounded attempt
budget so a dead peer becomes an error instead of an infinite stall,
and a *reset on progress* so one long-lived connection does not
slowly exhaust its budget across unrelated hiccups.
"""

from __future__ import annotations

import time


class BackoffExhausted(Exception):
    """The retry budget ran out without the operation succeeding."""


class Backoff:
    """One retry loop's delay schedule.

    >>> bo = Backoff(base=0.05, cap=2.0, attempts=8)
    >>> bo.next_delay()   # 0.05, then 0.1, 0.2, ... capped at 2.0
    0.05

    ``sleep()`` is ``next_delay()`` + ``time.sleep`` (the common
    case); ``reset()`` restores the full budget after any progress.
    Raises :class:`BackoffExhausted` once *attempts* delays have been
    handed out without a reset.
    """

    def __init__(self, base=0.05, factor=2.0, cap=2.0, attempts=8,
                 sleep=time.sleep):
        self.base = max(0.0, float(base))
        self.factor = max(1.0, float(factor))
        self.cap = max(self.base, float(cap))
        self.attempts = max(1, int(attempts))
        self._sleep = sleep
        self.used = 0

    def next_delay(self):
        """The next delay in seconds, consuming one attempt."""
        if self.used >= self.attempts:
            raise BackoffExhausted(
                "retry budget exhausted after %d attempts"
                % self.attempts)
        delay = min(self.cap, self.base * (self.factor ** self.used))
        self.used += 1
        return delay

    def sleep(self):
        """Consume one attempt and sleep out its delay; the delay."""
        delay = self.next_delay()
        if delay > 0:
            self._sleep(delay)
        return delay

    @property
    def exhausted(self):
        return self.used >= self.attempts

    def reset(self):
        """Progress happened: restore the full attempt budget."""
        self.used = 0
