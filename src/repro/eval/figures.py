"""Figure reproductions (Figs 5-10).

Each ``figN_data`` function returns the series the paper plots; each
``render_figN`` prints them as aligned text (the textual stand-in for
the chart).  The bench harness in ``benchmarks/`` regenerates each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..kernels import TABLE2_KERNELS, get_kernel
from ..vlsi import cycle_time_ns
from .configs import DESIGN_SPACE_NAMES, GPP_NAMES
from .report import render_series, render_table
from .runner import baseline_run, energy_efficiency, run, speedup

_TABLE2_NAMES = tuple(k.name for k in TABLE2_KERNELS)

# ---------------------------------------------------------------------------
# Fig 5: speedups of the GPP baselines vs ooo/2+x specialized execution,
# normalized to ooo/2 and to ooo/4
# ---------------------------------------------------------------------------


def fig5_data(kernels=_TABLE2_NAMES, normalize_to="ooo/2",
              scale="small", seed=0, jobs=None):
    """Per-kernel speedups of {io, ooo/2, ooo/4, ooo/2+x(S)} relative
    to the GP binary on *normalize_to*."""
    from .parallel import baseline_point, fig5_points, sweep
    points = fig5_points(kernels, scale, seed)
    points += [baseline_point(k, normalize_to, scale, seed)
               for k in kernels]
    sweep(points, jobs=jobs)
    series = {name: {} for name in ("io", "ooo/2", "ooo/4",
                                    "ooo/2+x:S")}
    for k in kernels:
        norm = baseline_run(k, normalize_to, scale, seed).cycles
        for gpp in GPP_NAMES:
            series[gpp][k] = norm / baseline_run(k, gpp, scale,
                                                 seed).cycles
        spec_run = run(k, "ooo/2+x", mode="specialized", scale=scale,
                       seed=seed)
        series["ooo/2+x:S"][k] = norm / spec_run.cycles
    return series


def render_fig5(series=None, **kw):
    series = series or fig5_data(**kw)
    return render_series(
        "Fig 5: speedups normalized to the GP binary on ooo/2", series)


# ---------------------------------------------------------------------------
# Fig 6: specialized-execution lane-cycle breakdown on io+x
# ---------------------------------------------------------------------------


def fig6_data(kernels=_TABLE2_NAMES, scale="small", seed=0, jobs=None):
    """Per-kernel fractional breakdown of LPSU lane cycles."""
    from .parallel import fig6_points, sweep
    sweep(fig6_points(kernels, scale, seed), jobs=jobs)
    out = {}
    for k in kernels:
        r = run(k, "io+x", mode="specialized", scale=scale, seed=seed)
        breakdown = r.lpsu_stats.breakdown()
        lanes_cycles = sum(v for key, v in breakdown.items()
                           if key != "squash")
        if lanes_cycles == 0:
            out[k] = {key: 0.0 for key in breakdown}
            continue
        out[k] = {key: value / lanes_cycles
                  for key, value in breakdown.items()}
        out[k]["squashes"] = r.lpsu_stats.squashes
    return out


def render_fig6(data=None, **kw):
    data = data or fig6_data(**kw)
    cats = ("busy", "raw", "memport", "llfu", "cib", "lsq", "commit",
            "branch", "idle")
    headers = ["Kernel"] + list(cats) + ["squashes"]
    rows = []
    for k, b in data.items():
        rows.append([k] + ["%.2f" % b.get(c, 0.0) for c in cats]
                    + [int(b.get("squashes", 0))])
    return render_table(headers, rows,
                        title="Fig 6: LPSU lane-cycle breakdown "
                              "(fractions) on io+x")


# ---------------------------------------------------------------------------
# Fig 7: specialized vs adaptive execution on ooo/4+x
# ---------------------------------------------------------------------------


def fig7_data(kernels=_TABLE2_NAMES, scale="small", seed=0, jobs=None):
    from .parallel import fig7_points, sweep
    sweep(fig7_points(kernels, scale, seed), jobs=jobs)
    series = {"S": {}, "A": {}}
    for k in kernels:
        series["S"][k] = speedup(k, "ooo/4+x", "specialized",
                                 scale=scale, seed=seed)
        series["A"][k] = speedup(k, "ooo/4+x", "adaptive",
                                 scale=scale, seed=seed)
    return series


def render_fig7(series=None, **kw):
    series = series or fig7_data(**kw)
    return render_series(
        "Fig 7: specialized vs adaptive execution on ooo/4+x "
        "(speedup over ooo/4)", series)


# ---------------------------------------------------------------------------
# Fig 8: energy efficiency vs performance
# ---------------------------------------------------------------------------


@dataclass
class Fig8Point:
    kernel: str
    config: str
    mode: str
    performance: float      # speedup over the baseline GPP
    efficiency: float       # baseline energy / this energy

    @property
    def iso_power(self):
        """Ratio to the iso-power contour (eff == 1/perf line)."""
        return self.efficiency * self.performance


def fig8_data(kernels=_TABLE2_NAMES, configs=("io+x", "ooo/2+x",
                                              "ooo/4+x"),
              modes=("specialized", "adaptive"), scale="small", seed=0,
              jobs=None):
    from .parallel import fig8_points, sweep
    sweep(fig8_points(kernels, configs, modes, scale, seed), jobs=jobs)
    points = []
    for cfg in configs:
        for mode in modes:
            for k in kernels:
                points.append(Fig8Point(
                    kernel=k, config=cfg, mode=mode,
                    performance=speedup(k, cfg, mode, scale=scale,
                                        seed=seed),
                    efficiency=energy_efficiency(k, cfg, mode,
                                                 scale=scale,
                                                 seed=seed)))
    return points


def render_fig8(points=None, **kw):
    points = points or fig8_data(**kw)
    headers = ["Config", "Mode", "Kernel", "Perf", "EnergyEff"]
    rows = [[p.config, p.mode, p.kernel, "%.2f" % p.performance,
             "%.2f" % p.efficiency] for p in points]
    return render_table(headers, rows,
                        title="Fig 8: energy efficiency vs performance")


# ---------------------------------------------------------------------------
# Fig 9: microarchitectural design-space exploration
# ---------------------------------------------------------------------------

FIG9_KERNELS = ("sgemm-uc", "viterbi-uc", "kmeans-or", "covar-or",
                "btree-ua")


def fig9_data(kernels=FIG9_KERNELS, configs=DESIGN_SPACE_NAMES,
              scale="small", seed=0, jobs=None):
    from .parallel import fig9_points, sweep
    sweep(fig9_points(kernels, configs, scale, seed), jobs=jobs)
    series = {cfg: {} for cfg in configs}
    for cfg in configs:
        for k in kernels:
            series[cfg][k] = speedup(k, cfg, "specialized", scale=scale,
                                     seed=seed)
    return series


def render_fig9(series=None, **kw):
    series = series or fig9_data(**kw)
    return render_series(
        "Fig 9: LPSU design space (speedup over ooo/4)", series)


# ---------------------------------------------------------------------------
# Fig 10: VLSI energy efficiency vs performance (uc kernels, no xi)
# ---------------------------------------------------------------------------

FIG10_KERNELS = ("rgb2cmyk-uc", "sgemm-uc", "ssearch-uc", "symm-uc",
                 "viterbi-uc")


def fig10_data(kernels=FIG10_KERNELS, scale="small", seed=0, jobs=None):
    """RTL-calibrated evaluation: xi disabled (the RTL does not
    implement it), VLSI energy table, wall-clock performance includes
    the post-PnR cycle times."""
    from .parallel import fig10_points, sweep
    sweep(fig10_points(kernels, scale, seed), jobs=jobs)
    ct_gpp = cycle_time_ns()
    ct_lpsu = cycle_time_ns(lanes=4, ib_entries=128)
    points = []
    for k in kernels:
        base = run(k, "io", mode="traditional", binary="gp", scale=scale,
                   seed=seed)
        spec = run(k, "io+x", mode="specialized", xi_enabled=False,
                   scale=scale, seed=seed)
        perf = (base.cycles * ct_gpp) / (spec.cycles * ct_lpsu)
        eff = base.vlsi_energy_nj / spec.vlsi_energy_nj
        points.append(Fig8Point(kernel=k, config="io+x(rtl)",
                                mode="specialized", performance=perf,
                                efficiency=eff))
    return points


def render_fig10(points=None, **kw):
    points = points or fig10_data(**kw)
    headers = ["Kernel", "Perf (wall-clock)", "EnergyEff"]
    rows = [[p.kernel, "%.2f" % p.performance, "%.2f" % p.efficiency]
            for p in points]
    return render_table(headers, rows,
                        title="Fig 10: VLSI energy efficiency vs "
                              "performance (uc kernels, no xi)")
