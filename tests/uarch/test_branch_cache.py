import pytest

from repro.uarch import BimodalPredictor, L1Cache
from repro.uarch.params import CacheConfig


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.predict_and_update(0x1000, True)
        assert not p.predict_and_update(0x1000, True)

    def test_learns_never_taken(self):
        p = BimodalPredictor(64)
        assert p.predict_and_update(0x1000, True)  # init weakly-NT
        for _ in range(4):
            p.predict_and_update(0x1000, False)
        assert not p.predict_and_update(0x1000, False)

    def test_loop_branch_mispredicts_once_per_trip(self):
        p = BimodalPredictor(64)
        wrong = 0
        for _trip in range(10):
            for _i in range(20):
                wrong += p.predict_and_update(0x2000, True)
            wrong += p.predict_and_update(0x2000, False)
        # after warmup: one mispredict per loop exit
        assert wrong <= 2 + 10 + 2

    def test_aliasing_uses_table_size(self):
        p = BimodalPredictor(4)
        p.predict_and_update(0x0, True)
        p.predict_and_update(0x10, True)   # same slot (4 entries, >>2)
        assert p.lookups == 2

    def test_accuracy_property(self):
        p = BimodalPredictor(64)
        assert p.accuracy == 1.0
        for _ in range(8):
            p.predict_and_update(0, True)
        assert 0.0 <= p.accuracy <= 1.0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)


class TestL1Cache:
    def test_miss_then_hit(self):
        c = L1Cache()
        lat1 = c.access(0x1000)
        lat2 = c.access(0x1004)   # same 32B line
        assert lat1 == c.config.hit_latency + c.config.miss_latency
        assert lat2 == c.config.hit_latency
        assert c.misses == 1 and c.hits == 1

    def test_distinct_lines_miss(self):
        c = L1Cache()
        c.access(0x0)
        c.access(0x20)
        assert c.misses == 2

    def test_lru_within_set(self):
        cfg = CacheConfig(size_bytes=256, line_bytes=32, ways=2)
        c = L1Cache(cfg)  # 4 sets
        set_stride = 32 * 4
        a, b, d = 0, set_stride, 2 * set_stride  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)          # a is MRU
        c.access(d)          # evicts b
        c.reset_stats()
        assert c.access(a) == cfg.hit_latency
        assert c.access(b) > cfg.hit_latency   # was evicted

    def test_working_set_fits_16kb(self):
        c = L1Cache()
        for sweep in range(3):
            for addr in range(0, 8 * 1024, 4):
                c.access(addr)
        # only cold misses: 8KB / 32B lines = 256
        assert c.misses == 256

    def test_miss_rate(self):
        c = L1Cache()
        assert c.miss_rate == 0.0
        c.access(0)
        assert c.miss_rate == 1.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            L1Cache(CacheConfig(size_bytes=3000, line_bytes=32, ways=3))


class TestGShare:
    def test_learns_alternating_pattern(self):
        from repro.uarch import GSharePredictor, BimodalPredictor
        g = GSharePredictor(256)
        b = BimodalPredictor(256)
        pattern = [True, False] * 200
        for taken in pattern:
            g.predict_and_update(0x40, taken)
            b.predict_and_update(0x40, taken)
        # bimodal thrashes on strict alternation; gshare locks on
        assert g.accuracy > 0.9
        assert g.accuracy > b.accuracy

    def test_factory(self):
        from repro.uarch import (BimodalPredictor, GSharePredictor,
                                 make_predictor)
        assert isinstance(make_predictor("bimodal"), BimodalPredictor)
        assert isinstance(make_predictor("gshare"), GSharePredictor)
        with pytest.raises(ValueError):
            make_predictor("oracle")

    def test_gshare_config_plumbs_through(self):
        from dataclasses import replace
        from repro.asm import assemble
        from repro.sim import FunctionalCore
        from repro.uarch import IO, GSharePredictor, InOrderTiming
        cfg = replace(IO, bpred_kind="gshare")
        timing = InOrderTiming(cfg)
        assert isinstance(timing.predictor, GSharePredictor)

    def test_power_of_two_required(self):
        from repro.uarch import GSharePredictor
        with pytest.raises(ValueError):
            GSharePredictor(100)
