"""Sweep-as-a-service: the async result server, workers, and client.

See :mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.server` for the asyncio server (global in-flight
dedup over a bounded hardened worker pool, or -- with
``--distributed`` -- over the durable :mod:`repro.serve.queue` work
queue), :mod:`repro.serve.worker` for the ``repro worker`` pull loop,
and :mod:`repro.serve.client` for the synchronous reconnecting client
the CLI and the speed bench use.  ``docs/SERVICE.md`` is the operator
guide (the "Distributed operation" section covers leases, heartbeats
and the failure matrix).
"""

from .client import ServeClient, connect
from .protocol import DEFAULT_PORT, PROTOCOL_VERSION, ProtocolError, \
    RemoteError, parse_address
from .queue import WorkQueue
from .server import ServerThread, SweepServer
from .worker import SweepWorker, WorkerThread, run_worker

__all__ = [
    "DEFAULT_PORT", "PROTOCOL_VERSION", "ProtocolError", "RemoteError",
    "ServeClient", "ServerThread", "SweepServer", "SweepWorker",
    "WorkQueue", "WorkerThread", "connect", "parse_address",
    "run_worker",
]
