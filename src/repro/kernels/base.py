"""Kernel registry infrastructure.

Each application kernel from Table II is a :class:`KernelSpec`: an
annotated MiniC source, an entry function, and a workload factory that
builds deterministic synthetic datasets at several scales and verifies
the architectural results against a pure-Python golden model.

Scales: ``tiny`` keeps unit tests fast; ``small`` is the default for
the Table II / figure reproductions (datasets sized to fit the 16 KB
L1, as the paper did).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: disjoint address regions for workload arrays (heap)
HEAP_BASE = 0x0010_0000
REGION = 0x0004_0000


def region(index):
    """Base address of heap region *index* (256 KB apart)."""
    return HEAP_BASE + index * REGION


@dataclass
class Workload:
    """One concrete dataset: how to set memory up, what arguments to
    pass, and how to verify the result."""

    args: List[int]
    init: Callable
    verify: Callable
    name: str = ""

    def apply(self, mem):
        self.init(mem)
        return self.args

    def check(self, mem):
        """Raises AssertionError when the kernel output is wrong."""
        self.verify(mem)


@dataclass
class KernelSpec:
    """A Table II application kernel."""

    name: str                     # e.g. "sgemm-uc"
    suite: str                    # Po / M / P / C (paper's key)
    loop_types: Tuple[str, ...]   # dependence patterns, dominant first
    source: str                   # annotated MiniC
    entry: str
    make: Callable                # (scale, seed) -> Workload
    serial_source: Optional[str] = None   # GP-baseline variant, if the
    #                               paper's serial code differs (AMOs)
    description: str = ""

    def workload(self, scale="small", seed=0):
        return self.make(scale, seed)

    @property
    def dominant(self):
        return self.loop_types[0]


def rng_for(seed, name):
    return random.Random("%s:%s" % (seed, name))


def scale_select(scale, tiny, small, large=None):
    if scale == "tiny":
        return tiny
    if scale == "small":
        return small
    if scale == "large":
        return large if large is not None else small
    raise ValueError("unknown scale %r" % scale)
