"""Full-system simulation: a GPP (in-order or out-of-order) optionally
augmented with an LPSU, running an assembled program end to end in one
of the paper's three execution modes:

``traditional``
    xloops execute as conditional branches on the GPP (Section II-C).
``specialized``
    every supported xloop the GPP reaches is scanned into the LPSU and
    executed there while the GPP stalls (Section II-D).
``adaptive``
    per-xloop profiling via the APT decides between the two
    (Section II-E).

The GPP timing models consume the functional instruction stream
online; when an xloop is handed to the LPSU, the LPSU advances the
shared architectural memory itself and the GPP timing is advanced by
the specialized-phase cycle count (the GPP stalls during specialized
execution, so sequential composition is timing-exact).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..energy.events import EnergyEvents
from ..sim.functional import (HALT_PC, FunctionalCore, LivelockError,
                              SimError, decode_program)
from ..sim.backends import resolve_backend
from ..sim.fusion import fused_blocks, lpsu_engine
from ..sim.memory import Memory, to_s32
from .adaptive import (AdaptiveProfilingTable, DECIDED_SPECIALIZED,
                       DECIDED_TRADITIONAL, GPP_PROFILING, LPSU_PROFILING)
from .cache import L1Cache
from .descriptor import ScanError, scan_loop
from .inorder import InOrderTiming
from .lpsu import LPSU, LPSUStats
from .ooo import OOOTiming
from .params import SystemConfig
from .schedmemo import ScheduleMemo

MODES = ("traditional", "specialized", "adaptive")


@dataclass
class RunResult:
    """Everything the eval harness needs from one simulation."""

    config_name: str
    mode: str
    cycles: int
    gpp_instrs: int
    lpsu_instrs: int
    events: EnergyEvents
    lpsu_stats: LPSUStats
    xloop_invocations: int = 0
    specialized_invocations: int = 0
    adaptive_decisions: Dict[int, str] = field(default_factory=dict)
    return_value: int = 0
    cache_misses: int = 0
    cache_accesses: int = 0
    #: backend-machinery counters (turbo memo hits/deaths, vector
    #: engine engagement); diagnostic only -- never affects results
    backend_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def total_instrs(self):
        return self.gpp_instrs + self.lpsu_instrs


class SystemSimulator:
    """Simulate *program* on *config* in a given execution mode."""

    def __init__(self, program, config, mem=None, verify=False, fast=True,
                 max_cycles=None, injector=None, backend=None, approx=0.0):
        self.program = program
        self.config = config
        # when set, every specialized invocation runs under a
        # repro.verify InvariantMonitor (pure observer: cycles, energy
        # and stats stay bit-identical; raises InvariantViolation)
        self.verify = verify
        # cycle-budget watchdog: a specialized phase that would push the
        # system cycle count past this raises LivelockError instead of
        # spinning (None = unbounded, the default)
        self.max_cycles = max_cycles
        # optional repro.resilience fault injector: wraps the invariant
        # monitor's observer hooks and corrupts LPSU state at a chosen
        # point.  Injection needs per-step observation, so it forces
        # the slow path like verify does.
        self.injector = injector
        # backend ladder (repro.sim.backends): interp / fused / turbo.
        # verify and injection need exact per-step observation, so they
        # force the interp tier regardless of the requested backend;
        # the legacy `fast` boolean maps False -> interp, True -> auto.
        if verify or injector is not None:
            resolved = resolve_backend("interp")
        else:
            resolved = resolve_backend(backend, fast=fast)
        self.backend = resolved.name
        self.approx = float(approx)
        if self.approx and not resolved.turbo:
            raise ValueError(
                "approx mode requires the turbo backend (got %r)"
                % resolved.name)
        # bit-identical fast path: fused GPP superblocks + LPSU
        # iteration-schedule memoization
        self.fast = resolved.fast
        self._turbo = resolved.turbo
        self._vector = resolved.vector
        self.mem = mem if mem is not None else Memory()
        self.events = EnergyEvents()
        self.cache = L1Cache(config.gpp.cache)
        if config.gpp.is_ooo:
            self.timing = OOOTiming(config.gpp, self.cache, self.events)
        else:
            self.timing = InOrderTiming(config.gpp, self.cache, self.events)
        self.core = FunctionalCore(program, self.mem)
        self.apt = AdaptiveProfilingTable(config.adaptive)
        self.lpsu_stats = LPSUStats()
        self.lpsu_instrs = 0
        self.xloop_invocations = 0
        self.specialized_invocations = 0
        self._ineligible = set()
        # per-xloop-pc cycle stamp of the previous taken encounter
        # (measures traditional per-iteration cost for profiling)
        self._last_seen_cycle = {}
        # per-xloop-pc iteration-schedule memo tables, shared across
        # specialized invocations of the same static loop
        self._memos = {}
        self._memo_keys = {}   # turbo: content key guarding each memo
        self._vec_engines = {}  # vector: engines this run dispatched to
        # compiled fused-lane LPSU engine (repro.sim.fusion, `lpsu`
        # flavour); REPRO_NO_LPSU_ENGINE=1 disables just this layer
        # while keeping the rest of the fast path
        self._use_engine = (self.fast
                            and not os.environ.get("REPRO_NO_LPSU_ENGINE"))

    # ------------------------------------------------------------------

    def run(self, entry="main", args=(), mode="traditional",
            max_steps=200_000_000):
        if mode not in MODES:
            raise ValueError("unknown mode %r" % mode)
        if mode != "traditional" and self.config.lpsu is None:
            raise ValueError("config %r has no LPSU" % self.config.name)
        core = self.core
        core.setup_call(entry, args)
        steps = 0
        core_step = core.step
        consume = self.timing.consume
        if self.fast:
            self._run_fused(mode, max_steps)
        elif mode == "traditional":
            # no xloop can be intercepted: run the fetch/step/consume
            # loop without the dispatch check
            while not core.halted:
                consume(core_step())
                steps += 1
                if steps > max_steps:
                    raise SimError("GPP exceeded %d steps" % max_steps)
        else:
            instrs = self.program.instrs
            base = self.program.text_base
            xloop_idx = frozenset(
                i for i, ins in enumerate(instrs) if ins.op.is_xloop)
            while not core.halted:
                pc = core.pc
                idx = (pc - base) >> 2
                if idx in xloop_idx and not pc & 3:
                    if self._maybe_specialize(instrs[idx], mode):
                        continue
                consume(core_step())
                steps += 1
                if steps > max_steps:
                    raise SimError("GPP exceeded %d steps" % max_steps)
        return RunResult(
            config_name=self.config.name, mode=mode,
            cycles=self.timing.cycles, gpp_instrs=core.icount,
            lpsu_instrs=self.lpsu_instrs, events=self.events,
            lpsu_stats=self.lpsu_stats,
            xloop_invocations=self.xloop_invocations,
            specialized_invocations=self.specialized_invocations,
            adaptive_decisions=dict(self.apt.decisions),
            return_value=core.return_value,
            cache_misses=self.cache.misses,
            cache_accesses=self.cache.accesses,
            backend_stats=self._backend_stats())

    def _backend_stats(self):
        """Counters from the backend machinery this run dispatched to.

        Memos and vector engines are content-keyed and shared
        process-wide, so on a warm process the counts include earlier
        runs that touched the same static loops -- they describe the
        machinery, not just this invocation.
        """
        bs = {}
        if self._memos:
            memos = list(self._memos.values())
            bs["memo_hits"] = sum(m.hits for m in memos)
            bs["memo_misses"] = sum(m.misses for m in memos)
            bs["divergences"] = sum(m.aborts for m in memos)
            bs["memo_dead"] = sum(1 for m in memos if m.dead)
        if self._vec_engines:
            engines = list(self._vec_engines.values())
            bs["vector_invocations"] = sum(v.invocations for v in engines)
            bs["vector_iterations"] = sum(
                v.batched_iterations for v in engines)
            bs["vector_refusals"] = sum(v.refusals for v in engines)
            bs["vector_dead"] = sum(1 for v in engines if v.dead)
        return bs

    def _run_fused(self, mode, max_steps):
        """Fast GPP driver: dispatch fused superblocks, falling back to
        single-stepping for pcs outside any block.  Blocks break at
        every xloop pc, so the specialize/adaptive dispatch check (and
        the APT's ``timing.cycles`` reads) happen at exactly the same
        points, with exactly the same timing state, as the slow loop.
        """
        core = self.core
        timing = self.timing
        program = self.program
        consume = timing.consume
        core_step = core.step
        if mode == "traditional":
            xloop_pcs = None
            break_pcs = ()
        else:
            xloop_pcs = frozenset(ins.pc for ins in program.instrs
                                  if ins.op.is_xloop)
            break_pcs = xloop_pcs
        io = not self.config.gpp.is_ooo
        if io:
            blocks = fused_blocks(program, "io", break_pcs,
                                  self.config.gpp)
        else:
            blocks = fused_blocks(program, "ooo", break_pcs)
        get = blocks.get
        ev = self.events
        instrs = program.instrs
        base = program.text_base
        steps0 = core.icount
        while not core.halted:
            pc = core.pc
            if xloop_pcs is not None and pc in xloop_pcs:
                if self._maybe_specialize(instrs[(pc - base) >> 2], mode):
                    continue
            blk = get(pc)
            if blk is None:
                consume(core_step())
            else:
                npc = blk(core, timing, ev) if io else blk(core, timing)
                if npc == HALT_PC:
                    core.halted = True
            if core.icount - steps0 > max_steps:
                raise SimError("GPP exceeded %d steps" % max_steps)

    # ------------------------------------------------------------------
    # xloop dispatch
    # ------------------------------------------------------------------

    def _taken(self, instr):
        regs = self.core.regs
        return to_s32(regs[instr.rs1]) < to_s32(regs[instr.rs2])

    def _eligible(self, instr):
        """Can this xloop run specialized on the configured LPSU?

        Ineligibility (unsupported pattern, oversized body, malformed
        scan) is static per xloop PC, so it is cached; the descriptor
        itself is rebuilt per invocation because ``addu.xi`` increments
        resolve against live-in register values.
        """
        if instr.pc in self._ineligible:
            return None
        lpsu_cfg = self.config.lpsu
        if not lpsu_cfg.supports(instr.op.xloop_kind.data):
            self._ineligible.add(instr.pc)
            return None
        try:
            desc = scan_loop(self.program, instr, self.core.regs)
        except (ScanError, IndexError):
            self._ineligible.add(instr.pc)
            return None
        if desc.body_len > lpsu_cfg.ib_entries:
            self._ineligible.add(instr.pc)
            return None  # too large: fall back to traditional (II-A)
        return desc

    def _maybe_specialize(self, instr, mode):
        """Possibly execute the xloop at core.pc on the LPSU.  Returns
        True when the xloop (or part of it) was handled here."""
        if not self._taken(instr):
            return False
        self.xloop_invocations += 1

        if mode == "specialized":
            desc = self._eligible(instr)
            if desc is None:
                return False
            self._run_specialized(desc)
            return True

        # -- adaptive ------------------------------------------------------
        pc = instr.pc
        entry = self.apt.lookup(pc)
        if entry.state == DECIDED_TRADITIONAL:
            return False
        if entry.state == DECIDED_SPECIALIZED:
            desc = self._eligible(instr)
            if desc is None:
                return False
            self._run_specialized(desc)
            return True
        if entry.state == GPP_PROFILING:
            now = self.timing.cycles
            last = self._last_seen_cycle.get(pc, now)
            self._last_seen_cycle[pc] = now
            finished = self.apt.record_gpp_iteration(pc, now - last)
            if not finished:
                return False          # keep executing traditionally
            # fall through into LPSU profiling
            entry.state = LPSU_PROFILING
        if entry.state == LPSU_PROFILING:
            desc = self._eligible(instr)
            if desc is None:
                self.apt.record_lpsu_profile(pc, 1, 10 ** 9)
                return False
            # profile at least a couple of iterations per lane --
            # fewer could never exhibit cross-iteration parallelism
            floor = 2 * self.config.lpsu.lanes
            result = self._run_specialized(
                desc, max_iters=max(entry.gpp_iters, floor))
            decision = self.apt.record_lpsu_profile(
                pc, result.iterations, result.cycles)
            if decision == DECIDED_TRADITIONAL:
                # migrate back: the remaining iterations run on the GPP
                self.timing.advance(self.config.adaptive.migrate_overhead)
            return True
        return False

    # ------------------------------------------------------------------

    def _run_specialized(self, desc, max_iters=None):
        """Scan + specialized execution phase; updates arch state."""
        core = self.core
        # reuse the program's pre-decoded handler table for the body
        # (the body is a contiguous slice of the text section)
        decoded = decode_program(self.program)
        lo = (desc.body_start_pc - self.program.text_base) >> 2
        monitor = None
        if self.verify:
            # imported lazily: repro.verify depends on uarch.params
            from ..verify import InvariantMonitor
            monitor = InvariantMonitor(desc, core.regs, self.mem)
        hook = monitor
        if self.injector is not None:
            # the injector wraps the monitor's observer interface so
            # corruption happens at a deterministic hook event, and the
            # (optional) monitor still sees every event afterwards
            hook = self.injector.bind(desc, core.regs, self.mem, monitor)
        engine = None
        if self._use_engine:
            engine = lpsu_engine(self.program, desc, self.config.lpsu,
                                 self.config.gpp)
        memo = None
        if self._turbo:
            # turbo: compiled segment replay beats even the engine on
            # steady-state loops, so the memo rides alongside it.  The
            # memo is content-keyed and shared process-wide: MIV
            # increments resolve per invocation, so the key is checked
            # each time rather than trusting the xloop pc alone.
            from ..sim import turbo as _turbo_mod
            key = _turbo_mod.memo_content_key(
                desc, self.config.lpsu, self.config.gpp, self.approx)
            memo = self._memos.get(desc.xloop_pc)
            if memo is None or self._memo_keys.get(desc.xloop_pc) != key:
                memo = _turbo_mod.turbo_memo(
                    desc, self.config.lpsu, self.config.gpp, self.approx)
                self._memos[desc.xloop_pc] = memo
                self._memo_keys[desc.xloop_pc] = key
        elif self.fast and engine is None:
            # fused tier: schedule memoization pays only on the
            # interpreted stepper; with a compiled engine available,
            # plain engine-stepped execution is faster than
            # record + replay
            memo = self._memos.get(desc.xloop_pc)
            if memo is None:
                memo = self._memos[desc.xloop_pc] = ScheduleMemo()
        vec = None
        if self._vector:
            # vector: whole-block numpy batching for branchy uc loops
            # (content-cached; None when the body is ineligible, in
            # which case this invocation runs exactly as on turbo)
            from ..sim import vector as _vector_mod
            vec = _vector_mod.vector_engine(desc, self.config.lpsu,
                                            self.config.gpp)
            if vec is not None:
                self._vec_engines[desc.xloop_pc] = vec
        lpsu = LPSU(desc, core.regs, self.mem, self.cache,
                    self.config.lpsu, self.events,
                    decoded_body=decoded[lo:lo + desc.body_len],
                    monitor=hook, fast=self.fast, memo=memo,
                    engine=engine, vector=vec)
        if self.injector is not None:
            self.injector.attach(lpsu)
        budget = None
        if self.max_cycles is not None:
            budget = self.max_cycles - self.timing.cycles
            if budget <= 0:
                raise LivelockError(
                    "system exceeded %d cycles before specialization"
                    % self.max_cycles)
        result = lpsu.run(self.config.gpp.latencies, max_iters=max_iters,
                          max_cycles=budget)
        if hook is not None:
            hook.finalize(result)

        self.specialized_invocations += 1
        self.lpsu_stats.__dict__.update({
            k: getattr(self.lpsu_stats, k) + getattr(result.stats, k)
            for k in vars(result.stats)})
        self.lpsu_instrs += result.stats.instrs

        # architectural hand-back: index, dynamic bound, CIR live-outs,
        # and MIV registers (a traditionally-resumed loop continues to
        # advance them with plain adds)
        regs = core.regs
        regs[desc.idx_reg] = result.final_idx & 0xFFFFFFFF
        regs[desc.bound_reg] = result.final_bound & 0xFFFFFFFF
        for cir, value in result.cir_values.items():
            regs[cir] = value
        for miv, value in result.miv_values.items():
            regs[miv] = value
        for reg, value in (result.exit_regs or {}).items():
            regs[reg] = value   # .de: exiting lane's register state
        # the GPP stalls for the whole specialized phase
        self.timing.advance(result.cycles)
        if result.exited:
            # a data-dependent exit: resume at the xloop fall-through
            # (the xloop's test would otherwise re-enter the loop)
            core.pc = desc.xloop_pc + 4
            return result
        # core.pc stays at the xloop: the next functional step executes
        # it as a (now not-taken, unless stopped early) branch, which
        # also resumes traditional execution seamlessly after profiling
        return result


def simulate(program, config, entry="main", args=(), mode="traditional",
             mem=None, verify=False, fast=True, max_cycles=None,
             injector=None, backend=None, approx=0.0):
    """One-shot convenience wrapper returning a :class:`RunResult`.

    With ``verify=True`` every specialized xloop invocation is checked
    against the :mod:`repro.verify` runtime invariants (raising
    :class:`~repro.verify.InvariantViolation` on the first breach)
    without perturbing cycles, energy, or statistics.

    ``backend`` selects a rung of the simulation ladder
    (:mod:`repro.sim.backends`): ``interp``/``fused``/``turbo``/
    ``auto`` (results are bit-identical across tiers; ``repro verify
    --ladder`` enforces it).  The legacy ``fast`` boolean is honoured
    when ``backend`` is None: ``fast=False`` means interp.  ``approx``
    (> 0, turbo only) permits documented timing drift on cache-phase
    divergence in exchange for skipping miss validation — DSE only.

    ``max_cycles`` bounds the specialized-phase cycle budget (raising
    :class:`~repro.sim.LivelockError` when exhausted); ``injector``
    threads a :mod:`repro.resilience` fault injector into every
    specialized invocation (forcing the interp tier, like verify).
    """
    sim = SystemSimulator(program, config, mem=mem, verify=verify,
                          fast=fast, max_cycles=max_cycles,
                          injector=injector, backend=backend,
                          approx=approx)
    return sim.run(entry=entry, args=args, mode=mode)
