"""Simulator speed bench: wall-time per dependence pattern, and
cached-vs-cold artifact regeneration.

Times one representative point per inter-iteration dependence pattern
(uc / or / om / ua / db), each cold (fresh memo, compile included, no
disk cache), then a full Table II regeneration cold vs warm.  The
warm pass must be served entirely from the persistent result cache --
it is asserted to complete without invoking ``SystemSimulator``.

Emits a machine-readable JSON report on stdout (one line prefixed
``BENCH_SPEED_JSON``), also available standalone via
``PYTHONPATH=src python benchmarks/bench_speed.py``.
"""

import json
import tempfile
import time

from repro.eval import build_table2, diskcache
from repro.eval.runner import clear_cache, run
from repro.eval import runner

#: one kernel per inter-iteration dependence pattern (paper Table I)
PATTERN_POINTS = {
    "uc": ("sgemm-uc", "io+x", "specialized"),
    "or": ("adpcm-or", "io+x", "specialized"),
    "om": ("dynprog-om", "io+x", "specialized"),
    "ua": ("btree-ua", "io+x", "specialized"),
    "db": ("qsort-uc-db", "io+x", "specialized"),
}


def _cold_point(kernel, config, mode, scale):
    """Wall time of one fully cold point (compile + simulate)."""
    clear_cache(keep_disk=True)
    t0 = time.perf_counter()
    run(kernel, config, mode=mode, scale=scale, use_disk_cache=False)
    return time.perf_counter() - t0


def speed_report(scale="small"):
    report = {"scale": scale, "patterns": {}, "table2": {}}

    for pattern, (kernel, config, mode) in PATTERN_POINTS.items():
        wall = _cold_point(kernel, config, mode, scale)
        report["patterns"][pattern] = {
            "kernel": kernel, "config": config, "mode": mode,
            "cold_seconds": round(wall, 4)}

    # Table II: cold (fresh cache dir) vs warm (served from disk)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        saved = diskcache._dir_override
        diskcache.configure(cache_dir=tmp)
        try:
            clear_cache(keep_disk=True)
            t0 = time.perf_counter()
            build_table2(scale=scale)
            cold = time.perf_counter() - t0

            clear_cache(keep_disk=True)
            sims_before = runner.simulations
            t0 = time.perf_counter()
            build_table2(scale=scale)
            warm = time.perf_counter() - t0
            warm_simulations = runner.simulations - sims_before
            # the warm pass must never touch the simulator
            assert warm_simulations == 0, warm_simulations
        finally:
            diskcache._dir_override = saved
            clear_cache(keep_disk=True)

    report["table2"] = {
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 3),
        "warm_over_cold": round(warm / cold, 4) if cold else None,
        "warm_simulator_invocations": warm_simulations,
    }
    return report


def test_speed(benchmark):
    from conftest import run_once
    report = run_once(benchmark, speed_report)
    print()
    print("BENCH_SPEED_JSON " + json.dumps(report))


if __name__ == "__main__":
    print(json.dumps(speed_report(), indent=2))
