"""System-level integration tests: multiple xloops, nesting,
migration corner cases, and the traditional/specialized seams."""

import pytest

from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import (IO, OOO2, LPSUConfig, SystemConfig,
                         SystemSimulator, simulate)

A, B, C = 0x100000, 0x180000, 0x200000
IOX = SystemConfig("io+x", IO, lpsu=LPSUConfig())


def run(src, entry, args, mem, mode="specialized", cfg=IOX, **ckw):
    cp = compile_source(src, **ckw)
    return simulate(cp.program, cfg, entry=entry, args=list(args),
                    mem=mem, mode=mode), cp


class TestMultipleXLoops:
    SRC = """
void k(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = a[i] + 1; }
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { acc = acc + b[i]; b[i] = acc; }
}
"""

    def test_both_loops_specialize(self):
        n = 32
        mem = Memory()
        mem.write_words(A, range(n))
        r, cp = run(self.SRC, "k", [A, B, n], mem)
        assert cp.loop_kinds() == ("xloop.uc", "xloop.or")
        assert r.specialized_invocations == 2
        import itertools
        assert mem.read_words(B, n) == list(
            itertools.accumulate(i + 1 for i in range(n)))

    def test_partial_support_mixes_modes(self):
        # an LPSU supporting only uc runs the or loop traditionally
        n = 32
        mem = Memory()
        mem.write_words(A, range(n))
        cfg = SystemConfig("io+x", IO,
                           lpsu=LPSUConfig(specialize_patterns=("uc",)))
        r, _ = run(self.SRC, "k", [A, B, n], mem, cfg=cfg)
        assert r.specialized_invocations == 1
        import itertools
        assert mem.read_words(B, n) == list(
            itertools.accumulate(i + 1 for i in range(n)))


class TestNestedSpecialization:
    SRC = """
void k(int* m, int rows, int cols) {
    #pragma xloops ordered
    for (int r = 1; r < rows; r++) {
        #pragma xloops unordered
        for (int j = 0; j < cols; j++) {
            m[r*cols + j] = m[(r-1)*cols + j] + m[r*cols + j];
        }
    }
}
"""

    def test_outer_loop_wins_the_lpsu(self):
        # the first outer iteration executes traditionally (the scan
        # starts when the xloop is *reached*), so its inner xloop
        # specializes once; afterwards the outer xloop owns the LPSU
        # and the inner xloops run as plain branches inside the lanes
        rows, cols = 6, 8
        mem = Memory()
        data = list(range(rows * cols))
        mem.write_words(A, data)
        r, cp = run(self.SRC, "k", [A, rows, cols], mem)
        assert cp.loop_kinds() == ("xloop.om", "xloop.uc")
        assert r.specialized_invocations == 2
        expect = list(data)
        for rr in range(1, rows):
            for j in range(cols):
                expect[rr * cols + j] += expect[(rr - 1) * cols + j]
        assert mem.read_words(A, rows * cols) == expect

    def test_inner_specializes_when_outer_unsupported(self):
        rows, cols = 6, 8
        mem = Memory()
        data = list(range(rows * cols))
        mem.write_words(A, data)
        cfg = SystemConfig("io+x", IO,
                           lpsu=LPSUConfig(specialize_patterns=("uc",)))
        r, _ = run(self.SRC, "k", [A, rows, cols], mem, cfg=cfg)
        assert r.specialized_invocations == rows - 1  # inner, per row
        expect = list(data)
        for rr in range(1, rows):
            for j in range(cols):
                expect[rr * cols + j] += expect[(rr - 1) * cols + j]
        assert mem.read_words(A, rows * cols) == expect


class TestSeams:
    def test_first_iteration_runs_on_the_gpp(self):
        # the GPP executes the body once before reaching the xloop;
        # the LPSU runs n-1 iterations (paper II-D scan-phase timing)
        src = """
void k(int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = i * 7; }
}
"""
        mem = Memory()
        r, _ = run(src, "k", [B, 16], mem)
        assert r.lpsu_stats.iterations == 15
        assert mem.read_words(B, 16) == [7 * i for i in range(16)]

    def test_zero_and_one_trip_loops(self):
        src = """
int k(int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = 1; }
    return 9;
}
"""
        for n in (0, 1):
            mem = Memory()
            r, _ = run(src, "k", [B, n], mem)
            assert r.specialized_invocations == 0
            assert r.return_value == 9
            assert mem.read_words(B, 2) == ([0, 0] if n == 0
                                            else [1, 0])

    def test_loop_in_function_called_repeatedly(self):
        src = """
void inner(int* b, int n, int base) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[base + i] = base + i; }
}
void k(int* b, int n, int reps) {
    for (int r = 0; r < reps; r++) { inner(b, n, r * n); }
}
"""
        mem = Memory()
        r, _ = run(src, "k", [B, 8, 5], mem)
        assert r.specialized_invocations == 5
        assert mem.read_words(B, 40) == list(range(40))

    def test_cache_shared_between_gpp_and_lpsu(self):
        # data touched by the GPP before the loop stays warm for the
        # lanes (and vice versa): total misses ~= cold footprint
        src = """
int k(int* a, int n) {
    int head = a[0] + a[8] + a[16];
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { a[i] = a[i] + 1; }
    return head;
}
"""
        n = 64
        mem = Memory()
        mem.write_words(A, range(n))
        r, _ = run(src, "k", [A, n], mem)
        lines = (4 * n) // 32
        assert r.cache_misses <= lines + 3


class TestOOOHost:
    def test_ooo_host_specializes_too(self):
        src = """
void k(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = a[i] * 5; }
}
"""
        n = 48
        mem = Memory()
        mem.write_words(A, range(n))
        cfg = SystemConfig("ooo/2+x", OOO2, lpsu=LPSUConfig())
        r, _ = run(src, "k", [A, B, n], mem, cfg=cfg)
        assert r.specialized_invocations == 1
        assert mem.read_words(B, n) == [5 * i for i in range(n)]

    def test_mode_validation(self):
        src = "void k() { }"
        cp = compile_source(src)
        sim = SystemSimulator(cp.program, SystemConfig("io", IO))
        with pytest.raises(ValueError):
            sim.run(entry="k", mode="specialized")
        with pytest.raises(ValueError):
            sim.run(entry="k", mode="warp-speed")
