"""Regenerate paper Fig 5: speedups of io / ooo/2 / ooo/4 and ooo/2+x
specialized execution, normalized to the GP binary on ooo/2.

Expected shape: ooo/4 modestly above ooo/2; specialized execution on
ooo/2+x beats both OOO baselines on uc and worklist kernels and loses
on long-CIR or-kernels.
"""

from conftest import run_once

from repro.eval import geomean, render_fig5
from repro.eval.figures import fig5_data


def test_fig5(benchmark):
    series = run_once(benchmark, fig5_data, scale="small")
    print()
    print(render_fig5(series))
    assert geomean(series["ooo/4"].values()) >= 1.0
    uc = [k for k in series["io"] if k.endswith("-uc")]
    spec = [series["ooo/2+x:S"][k] for k in uc]
    assert geomean(spec) > 1.0
