"""Quickstart: annotate a loop, compile it, and run it three ways.

This walks the XLOOPS story end to end on a 5-minute scale:

1. write a C kernel with a ``#pragma xloops`` annotation;
2. compile it once -- the same binary serves every microarchitecture;
3. execute it traditionally (xloop == plain branch), specialized (on
   the LPSU), and adaptively (hardware profiles and picks);
4. compare cycles and dynamic energy.

Run:  python examples/quickstart.py
"""

from repro.energy import system_energy
from repro.isa import PATTERN_DESCRIPTIONS
from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

KERNEL = """
void saxpy(int* x, int* y, int* out, int a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        out[i] = a * x[i] + y[i];
    }
}
"""

X, Y, OUT, N, A = 0x100000, 0x140000, 0x180000, 512, 3


def main():
    print("=== Table I: the XLOOPS instruction-set extensions ===")
    for mnemonic, description in PATTERN_DESCRIPTIONS.items():
        print("  %-14s %s" % (mnemonic, description))

    print("\n=== compiling the annotated kernel ===")
    compiled = compile_source(KERNEL)
    for loop in compiled.loops:
        print("  loop at line %d: annotation=%r -> %s"
              % (loop.line, loop.annotation, loop.mnemonic))
    print("  %d instructions of assembly"
          % len(compiled.program.instrs))

    io = SystemConfig("io", IO)
    iox = SystemConfig("io+x", IO, lpsu=LPSUConfig())

    results = {}
    for mode, cfg in (("traditional", io), ("specialized", iox),
                      ("adaptive", iox)):
        mem = Memory()
        mem.write_words(X, range(N))
        mem.write_words(Y, range(0, 2 * N, 2))
        r = simulate(compiled.program, cfg, entry="saxpy",
                     args=[X, Y, OUT, A, N], mem=mem, mode=mode)
        expect = [A * i + 2 * i for i in range(N)]
        assert mem.read_words(OUT, N) == expect, "wrong result!"
        results[mode] = (r, cfg)

    print("\n=== one binary, three executions (in-order host) ===")
    base_cycles = results["traditional"][0].cycles
    for mode, (r, cfg) in results.items():
        print("  %-12s %7d cycles   speedup %.2fx   energy %7.1f nJ"
              % (mode, r.cycles, base_cycles / r.cycles,
                 system_energy(r, cfg)))
    spec = results["specialized"][0]
    print("\n  LPSU executed %d iterations over %d specialized "
          "invocation(s); results verified against the golden model."
          % (spec.lpsu_stats.iterations, spec.specialized_invocations))


if __name__ == "__main__":
    main()
