"""Extension kernels beyond the paper's Table II: exercises for the
data-dependent-exit (``.de``) control pattern this reproduction adds
(the paper lists it as future work)."""

from __future__ import annotations

from .base import KernelSpec, Workload, region, rng_for, scale_select
from .sources_uc import _kmp_fail

# ---------------------------------------------------------------------------
# ssearch-de: find the FIRST stream containing the pattern, stopping
# the scan as soon as it is found (xloop.uc.de).
# ---------------------------------------------------------------------------

SSEARCH_DE_SRC = """
int ssearch_first(char* text, int* offs, char* pat, int* fail,
                  int plen, int nstreams, int* res) {
    int winner = -1;
    #pragma xloops unordered
    for (int i = 0; i < nstreams; i++) {
        int lo = offs[i];
        int hi = offs[i+1];
        int q = 0;
        int hit = 0;
        int p = lo;
        while (p < hi) {
            int ch = text[p];
            while (q > 0 && pat[q] != ch) { q = fail[q-1]; }
            if (pat[q] == ch) { q = q + 1; }
            if (q == plen) { hit = 1; p = hi; }
            p = p + 1;
        }
        if (hit) {
            winner = i;
            break;
        }
    }
    res[0] = winner;
    return winner;
}
"""


def _ssearch_de_make(scale, seed):
    nstreams = scale_select(scale, 8, 24)
    stream_len = scale_select(scale, 24, 64)
    rng = rng_for(seed, "ssearch-de")
    pattern = b"abba"
    # pattern-free streams ('c' breaks any match), except one winner
    streams = []
    for _ in range(nstreams):
        streams.append(bytes(rng.choice(b"abc") for _ in
                             range(stream_len)).replace(b"abba", b"abca"))
    winner = nstreams // 2
    payload = bytearray(streams[winner])
    payload[3:7] = pattern
    streams[winner] = bytes(payload)
    text = b"".join(streams)
    offs = [i * stream_len for i in range(nstreams + 1)]
    fail = _kmp_fail(pattern)
    ta, oa, pa, fa, ra = (region(i) for i in range(5))

    def contains(stream):
        return pattern in stream

    expect = next((i for i, s in enumerate(streams) if contains(s)), -1)

    def init(mem):
        mem.write_bytes(ta, list(text))
        mem.write_words(oa, offs)
        mem.write_bytes(pa, list(pattern))
        mem.write_words(fa, fail)
        mem.store_word(ra, 0)

    def verify(mem):
        assert mem.read_words_signed(ra, 1) == [expect]

    wl = Workload(args=[ta, oa, pa, fa, len(pattern), nstreams, ra],
                  init=init, verify=verify)
    wl.expected_return = expect
    return wl


SSEARCH_DE = KernelSpec(
    name="ssearch-de", suite="C", loop_types=("uc",),
    source=SSEARCH_DE_SRC, entry="ssearch_first", make=_ssearch_de_make,
    description="first-match substring search with a data-dependent "
                "exit (.de extension)")

EXTENSION_KERNELS = (SSEARCH_DE,)
