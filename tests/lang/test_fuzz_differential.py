"""Differential fuzzing: randomly generated annotated loops must
produce identical architectural results when compiled for the GP ISA,
executed traditionally as an XLOOPS binary, and executed specialized
on the LPSU (across several LPSU configurations).

This exercises the whole stack at once: parser, dependence analysis,
pattern selection, strength reduction, register allocation, the
assembler, the functional model, and the LPSU's CIB/LSQ/squash
machinery.

The loop generators and source templates live in
:mod:`repro.verify.genloops`, shared with the ``repro verify``
conformance sweep; this suite adds hypothesis's shrinking and example
database on top.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, SystemConfig, simulate
from repro.verify.genloops import (A, B, C, DE_SOURCE, LPSU_SWEEP, N,
                                   om_source, or_loop_body, or_source,
                                   ua_source, uc_loop_body, uc_source)

LPSUS = LPSU_SWEEP


class TestUnorderedFuzz:
    @given(body=uc_loop_body(),
           data=st.lists(st.integers(-100, 100), min_size=N,
                         max_size=N))
    @settings(max_examples=25, deadline=None)
    def test_uc_loop_trimodal(self, body, data):
        src = uc_source(body)
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional"),
                (compile_source(src), SystemConfig("io", IO),
                 "traditional")]
        runs += [(compile_source(src), SystemConfig("x", IO, lpsu),
                  "specialized") for lpsu in LPSUS]
        for compiled, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, [v & 0xFFFFFFFF for v in data])
            simulate(compiled.program, cfg, entry="k",
                     args=[A, B, C, N], mem=mem, mode=mode)
            outs.append((mem.read_words(B, N), mem.read_words(C, N)))
        assert all(o == outs[0] for o in outs[1:])


class TestOrderedFuzz:
    @given(update=or_loop_body(),
           data=st.lists(st.integers(-50, 50), min_size=N, max_size=N),
           init=st.integers(-10, 10))
    @settings(max_examples=25, deadline=None)
    def test_or_loop_trimodal(self, update, data, init):
        src = or_source(update)
        compiled = compile_source(src)
        assert compiled.loop_kinds()[0].startswith("xloop.or")
        results = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compiled, SystemConfig("x", IO, lpsu), "specialized")
                 for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, [v & 0xFFFFFFFF for v in data])
            r = simulate(cp.program, cfg, entry="k",
                         args=[A, B, N, init & 0xFFFFFFFF], mem=mem,
                         mode=mode)
            results.append((mem.read_words(B, N), r.return_value))
        assert all(r == results[0] for r in results[1:])


class TestMemoryOrderedFuzz:
    @given(stride=st.integers(1, 5),
           scale=st.integers(1, 3),
           data=st.lists(st.integers(0, 60), min_size=N + 8,
                         max_size=N + 8))
    @settings(max_examples=25, deadline=None)
    def test_om_recurrence_trimodal(self, stride, scale, data):
        # a[i] = a[i-stride] * scale + a[i] -- dependence distance is
        # the fuzzed stride, so squash behaviour varies per example
        src = om_source(scale)
        compiled = compile_source(src)
        assert compiled.loop_kinds() == ("xloop.om",)
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compiled, SystemConfig("x", IO, lpsu), "specialized")
                 for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, [v & 0xFFFFFFFF for v in data])
            simulate(cp.program, cfg, entry="k",
                     args=[A, N, stride], mem=mem, mode=mode)
            outs.append(mem.read_words(A, N))
        assert all(o == outs[0] for o in outs[1:])


class TestExitFuzz:
    @given(data=st.lists(st.integers(0, 30), min_size=N, max_size=N),
           threshold=st.integers(5, 120))
    @settings(max_examples=20, deadline=None)
    def test_de_loop_trimodal(self, data, threshold):
        src = DE_SOURCE
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compile_source(src), SystemConfig("x", IO, lpsu),
                  "specialized") for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, data)
            r = simulate(cp.program, cfg, entry="k",
                         args=[A, B, N, threshold], mem=mem, mode=mode)
            outs.append((mem.read_words(B, N), r.return_value))
        assert all(o == outs[0] for o in outs[1:])


class TestAtomicFuzz:
    """Random histogram-style ua loops: per-bucket totals must equal a
    serial execution no matter how lanes interleave."""

    @given(data=st.lists(st.integers(0, 7), min_size=N, max_size=N),
           incr=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_ua_histogram_trimodal(self, data, incr):
        src = ua_source(incr)
        outs = []
        runs = [(compile_source(src, xloops=False),
                 SystemConfig("io", IO), "traditional")]
        runs += [(compile_source(src), SystemConfig("x", IO, lpsu),
                  "specialized") for lpsu in LPSUS]
        for cp, cfg, mode in runs:
            mem = Memory()
            mem.write_words(A, data)
            simulate(cp.program, cfg, entry="k", args=[A, B, N],
                     mem=mem, mode=mode)
            outs.append(mem.read_words(B, 16))
        assert all(o == outs[0] for o in outs[1:])
