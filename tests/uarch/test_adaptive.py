"""Adaptive-execution tests: APT state machine and end-to-end
migration behaviour (paper Section II-E / IV-D)."""

from repro.asm import assemble
from repro.sim import Memory
from repro.uarch import (DECIDED_SPECIALIZED, DECIDED_TRADITIONAL, IO, OOO4,
                         AdaptiveProfilingTable, LPSUConfig, SystemConfig,
                         simulate)
from repro.uarch.params import AdaptiveConfig

SRC, DST = 0x100000, 0x200000


class TestAPT:
    def test_gpp_profiling_until_iteration_threshold(self):
        apt = AdaptiveProfilingTable(AdaptiveConfig(profile_iters=4,
                                                    profile_cycles=10 ** 9))
        for i in range(3):
            assert not apt.record_gpp_iteration(0x100, 10)
        assert apt.record_gpp_iteration(0x100, 10)

    def test_gpp_profiling_until_cycle_threshold(self):
        apt = AdaptiveProfilingTable(AdaptiveConfig(profile_iters=10 ** 9,
                                                    profile_cycles=100))
        assert not apt.record_gpp_iteration(0x100, 60)
        assert apt.record_gpp_iteration(0x100, 60)

    def test_decision_prefers_faster_engine(self):
        apt = AdaptiveProfilingTable(AdaptiveConfig(profile_iters=2))
        apt.record_gpp_iteration(0x100, 10)
        apt.record_gpp_iteration(0x100, 10)
        # LPSU did the same 2 iterations in 8 cycles < 20
        assert apt.record_lpsu_profile(0x100, 2, 8) == DECIDED_SPECIALIZED

        apt2 = AdaptiveProfilingTable(AdaptiveConfig(profile_iters=2))
        apt2.record_gpp_iteration(0x200, 10)
        apt2.record_gpp_iteration(0x200, 10)
        assert apt2.record_lpsu_profile(0x200, 2, 100) \
            == DECIDED_TRADITIONAL

    def test_decision_is_sticky(self):
        apt = AdaptiveProfilingTable(AdaptiveConfig(profile_iters=1))
        apt.record_gpp_iteration(0x100, 10)
        apt.record_lpsu_profile(0x100, 1, 1)
        entry = apt.lookup(0x100)
        assert entry.decided
        # further traditional iterations do not reopen profiling
        assert not apt.record_gpp_iteration(0x100, 10)
        assert entry.state == DECIDED_SPECIALIZED

    def test_profiling_stretches_across_instances(self):
        apt = AdaptiveProfilingTable(AdaptiveConfig(profile_iters=100))
        for _ in range(50):
            apt.record_gpp_iteration(0x100, 1)
        entry = apt.lookup(0x100)
        assert entry.gpp_iters == 50
        assert not entry.decided

    def test_capacity_fifo_eviction(self):
        apt = AdaptiveProfilingTable(AdaptiveConfig(apt_entries=2))
        apt.lookup(0x100)
        apt.lookup(0x200)
        apt.lookup(0x300)
        assert apt.evictions == 1


VEC_SCALE = """
main:
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    add  t3, t3, t3
    add  t4, a1, t1
    sw   t3, 0(t4)
    addi t0, t0, 1
    xloop.uc t0, a2, body
done:
    ret
"""


def _adaptive_cfg(gpp, profile_iters=8, profile_cycles=100):
    return SystemConfig(
        name=gpp.name + "+x", gpp=gpp, lpsu=LPSUConfig(),
        adaptive=AdaptiveConfig(profile_iters=profile_iters,
                                profile_cycles=profile_cycles))


class TestAdaptiveEndToEnd:
    def test_parallel_loop_decides_specialized_on_io(self):
        n = 256
        mem = Memory()
        mem.write_words(SRC, range(n))
        cfg = _adaptive_cfg(IO)
        r = simulate(assemble(VEC_SCALE), cfg, args=[SRC, DST, n],
                     mem=mem, mode="adaptive")
        assert mem.read_words(DST, n) == [2 * i for i in range(n)]
        assert list(r.adaptive_decisions.values()) == [DECIDED_SPECIALIZED]
        assert r.specialized_invocations >= 1

    def test_serial_chain_decides_traditional_on_ooo4(self):
        # long intra-iteration dependence chain + CIR: OOO wins
        asm = """
main:
    li   t0, 0
    li   t5, 1
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    mul  t4, t3, t3
    mul  t4, t4, t3
    add  t5, t5, t4
    add  t6, a1, t1
    sw   t5, 0(t6)
    addi t0, t0, 1
    xloop.or t0, a2, body
done:
    ret
"""
        n = 256
        mem = Memory()
        mem.write_words(SRC, [1] * n)
        cfg = _adaptive_cfg(OOO4)
        r = simulate(assemble(asm), cfg, args=[SRC, DST, n], mem=mem,
                     mode="adaptive")
        # t5 starts at 1 and gains 1*1*1 each iteration
        assert mem.read_words(DST, n) == [i + 2 for i in range(n)]
        assert list(r.adaptive_decisions.values()) == [DECIDED_TRADITIONAL]

    def test_adaptive_close_to_best_of_both(self):
        n = 256
        results = {}
        for mode in ("traditional", "specialized", "adaptive"):
            mem = Memory()
            mem.write_words(SRC, range(n))
            cfg = _adaptive_cfg(IO)
            results[mode] = simulate(assemble(VEC_SCALE), cfg,
                                     args=[SRC, DST, n], mem=mem,
                                     mode=mode).cycles
        best = min(results["traditional"], results["specialized"])
        # profiling overhead is bounded (paper: "minimal performance
        # degradation")
        assert results["adaptive"] <= best * 1.5

    def test_short_loops_profile_across_instances(self):
        # call the kernel loop many times with a tiny trip count: the
        # APT must accumulate profile across dynamic instances
        asm = """
main:                      # a0=src a1=dst a2=n a3=reps
    li   s1, 0
outer:
    li   t0, 0
    ble  a2, zero, next
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    add  t3, t3, t3
    add  t4, a1, t1
    sw   t3, 0(t4)
    addi t0, t0, 1
    xloop.uc t0, a2, body
next:
    addi s1, s1, 1
    blt  s1, a3, outer
    ret
"""
        mem = Memory()
        mem.write_words(SRC, range(4))
        cfg = _adaptive_cfg(IO, profile_iters=6, profile_cycles=10 ** 9)
        r = simulate(assemble(asm), cfg, args=[SRC, DST, 4, 10],
                     mem=mem, mode="adaptive")
        # 4 iterations/instance (3 xloop-taken) -> decision made on a
        # later dynamic instance, then specialization kicks in
        assert r.adaptive_decisions
        assert r.specialized_invocations >= 1
