"""Table II reproduction: per-kernel loop characteristics and
traditional / specialized / adaptive speedups on io, ooo/2, ooo/4."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..kernels import TABLE2_KERNELS, get_kernel
from .configs import GPP_NAMES
from .report import render_table
from .runner import baseline_run, run, speedup

MODES = (("T", "traditional"), ("S", "specialized"), ("A", "adaptive"))


@dataclass
class Table2Row:
    kernel: str
    suite: str
    loop_types: Tuple[str, ...]
    xloops: Tuple[str, ...]
    body_insns: Tuple[int, ...]     # static xloop body sizes
    dyn_instrs_gp: int
    dyn_instrs_xloops: int
    #: {(gpp_name, mode_letter): speedup}
    speedups: Dict[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def xg_ratio(self):
        """XLOOPS-ISA / GP-ISA dynamic instruction ratio (X/G)."""
        return self.dyn_instrs_xloops / max(1, self.dyn_instrs_gp)


def build_row(name, scale="small", seed=0, modes=MODES,
              gpps=GPP_NAMES):
    spec = get_kernel(name)
    base_io = baseline_run(name, "io", scale, seed)
    trad_io = run(name, "io", mode="traditional", scale=scale, seed=seed)
    from ..lang import compile_source
    compiled = compile_source(spec.source)
    row = Table2Row(
        kernel=name, suite=spec.suite, loop_types=spec.loop_types,
        xloops=trad_io.static_xloops,
        body_insns=tuple(l.body_insns for l in compiled.loops),
        dyn_instrs_gp=base_io.total_instrs,
        dyn_instrs_xloops=trad_io.total_instrs)
    for gpp in gpps:
        for letter, mode in modes:
            cfg = gpp if mode == "traditional" else gpp + "+x"
            row.speedups[(gpp, letter)] = speedup(
                name, cfg, mode, scale=scale, seed=seed)
    return row


def build_table2(kernels=None, scale="small", seed=0, modes=MODES,
                 gpps=GPP_NAMES, jobs=None):
    names = kernels or [k.name for k in TABLE2_KERNELS]
    # submit the whole point set through the sweep executor first;
    # the row assembly below then runs entirely out of the memo
    from .parallel import sweep, table2_points
    sweep(table2_points(names, scale, seed, modes, gpps), jobs=jobs)
    return [build_row(n, scale, seed, modes, gpps) for n in names]


def render_table2(rows, gpps=GPP_NAMES, modes=MODES):
    headers = ["Kernel", "Suite", "Type", "Insns", "DynInsn", "X/G"]
    for gpp in gpps:
        for letter, _ in modes:
            headers.append("%s:%s" % (gpp, letter))
    body = []
    for r in rows:
        insns = ("%d-%d" % (min(r.body_insns), max(r.body_insns))
                 if len(set(r.body_insns)) > 1
                 else str(r.body_insns[0]) if r.body_insns else "-")
        line = [r.kernel, r.suite, ",".join(r.loop_types), insns,
                r.dyn_instrs_gp, "%.2f" % r.xg_ratio]
        for gpp in gpps:
            for letter, _ in modes:
                line.append("%.2f" % r.speedups[(gpp, letter)])
        body.append(line)
    return render_table(headers, body,
                        title="Table II: XLOOPS application kernels and "
                              "cycle-level results")
