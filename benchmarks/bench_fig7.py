"""Regenerate paper Fig 7: specialized vs adaptive execution on
ooo/4+x (speedup over the ooo/4 baseline).

Expected shape: where specialized execution loses to the aggressive
OOO core, adaptive execution migrates back and recovers to ~1x; where
specialized wins, adaptive pays only a small profiling cost.
"""

from conftest import run_once

from repro.eval import render_fig7
from repro.eval.figures import fig7_data


def test_fig7(benchmark):
    series = run_once(benchmark, fig7_data, scale="small")
    print()
    print(render_fig7(series))
    losers = [k for k, s in series["S"].items() if s < 0.8]
    recovered = [k for k in losers if series["A"][k] > series["S"][k]]
    assert len(recovered) >= max(1, len(losers) * 2 // 3)
