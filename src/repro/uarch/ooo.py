"""Out-of-order superscalar GPP timing model (``ooo/2``, ``ooo/4``).

A window-based dataflow model processed in program order, in the spirit
of gem5's O3 at the fidelity the paper's results depend on:

* fetch/dispatch/retire bounded by ``width``; ROB occupancy bounds the
  in-flight window;
* dataflow scheduling against register-ready times (ideal renaming: no
  false dependences);
* structural contention for integer ALUs, memory ports, and the
  long-latency FU pool (int mul/div + FP);
* store->load memory dependences honoured at word granularity with
  ideal forwarding (an optimistic LSQ);
* bimodal predictor; mispredicts redirect fetch after resolution;
* **conservative AMOs/fences**: an AMO waits for all earlier
  instructions to complete and stalls fetch until it completes — the
  paper calls its out-of-order AMO implementation "rather conservative"
  and attributes the <1x traditional-execution speedups to it.
"""

from __future__ import annotations

from collections import deque

from ..isa.instructions import FU
from .branch import BimodalPredictor, make_predictor
from .cache import L1Cache
from .params import GPPConfig

#: FU classes served by the shared long-latency unit pool
_LLFU = (FU.MUL, FU.DIV, FU.FPU, FU.FDIV)
#: LLFU ops that occupy their unit for the full latency (unpipelined)
_UNPIPELINED = (FU.DIV, FU.FDIV)


class _UnitPool:
    """A small pool of units, each free at some cycle."""

    __slots__ = ("free_at",)

    def __init__(self, count):
        self.free_at = [0] * count

    def acquire(self, ready, occupy):
        """Earliest issue >= *ready* on any unit; occupy it."""
        best = 0
        best_t = self.free_at[0]
        for i in range(1, len(self.free_at)):
            t = self.free_at[i]
            if t < best_t:
                best, best_t = i, t
        start = ready if ready >= best_t else best_t
        self.free_at[best] = start + occupy
        return start


class OOOTiming:
    """Width/window-parameterized out-of-order timing."""

    def __init__(self, config, cache=None, events=None, predictor=None):
        self.config = config
        self.lat = config.latencies
        self.cache = cache if cache is not None else L1Cache(config.cache)
        self.events = events
        self.predictor = predictor or make_predictor(
            config.bpred_kind, config.bpred_entries)

        self.width = config.width
        self._rob = deque()                      # retire times in flight
        self._rob_size = config.rob_entries
        self._alus = _UnitPool(config.width)
        self._mem = _UnitPool(config.mem_ports)
        self._llfu = _UnitPool(config.llfus)

        self.reg_ready = [0] * 32
        self._store_ready = {}                   # word addr -> store done
        self._fetch_cycle = 0
        self._fetch_count = 0
        self._retire_cycle = 0
        self._retire_count = 0
        self._redirect = 0                       # fetch gate (mispredict/AMO)
        self._max_complete = 0                   # for serializing ops
        self.retired = 0
        self.mispredicts = 0
        self.serializations = 0

    # -- helpers ---------------------------------------------------------

    def _fetch(self):
        """Next fetch slot honouring width and redirects."""
        if self._fetch_cycle < self._redirect:
            self._fetch_cycle = self._redirect
            self._fetch_count = 0
        if self._fetch_count >= self.width:
            self._fetch_cycle += 1
            self._fetch_count = 0
        self._fetch_count += 1
        return self._fetch_cycle

    def _retire(self, complete):
        """In-order retirement bounded by width; returns retire cycle."""
        t = complete if complete >= self._retire_cycle else self._retire_cycle
        if t > self._retire_cycle:
            self._retire_cycle = t
            self._retire_count = 0
        if self._retire_count >= self.width:
            self._retire_cycle += 1
            self._retire_count = 0
        self._retire_count += 1
        return self._retire_cycle

    # -- main entry -------------------------------------------------------

    def consume(self, step):
        return self.consume_op(step.instr, step.pc, step.addr, step.taken)

    def consume_op(self, instr, pc, addr, taken):
        """Account one dynamic instruction from explicit operands —
        the entry point fused superblocks (:mod:`repro.sim.fusion`)
        call directly, skipping the :class:`StepInfo` indirection."""
        op = instr.op
        ev = self.events
        srcs = instr.src_regs()
        if ev is not None:
            ev.ic_access += 1
            ev.ooo_rename += 1
            ev.iq_op += 1
            ev.rob_op += 1
            for s in srcs:
                if s:
                    ev.rf_read += 1

        rob = self._rob
        fetch = self._fetch()
        dispatch = fetch + 1
        # ROB occupancy: wait for a slot
        if len(rob) >= self._rob_size:
            oldest = rob.popleft()
            if oldest > dispatch:
                dispatch = oldest

        reg_ready = self.reg_ready
        ready = dispatch
        for s in srcs:
            t = reg_ready[s]
            if t > ready:
                ready = t

        fu = op.fu
        serialize = op.is_amo or op.is_fence
        if serialize:
            # conservative AMO: wait for every earlier instruction
            if self._max_complete > ready:
                ready = self._max_complete
            self.serializations += 1

        if op.is_mem and not op.is_fence:
            word = addr & ~3 if addr is not None else 0
            dep = self._store_ready.get(word)
            if op.is_load and dep is not None and dep > ready:
                ready = dep
            access = self.cache.access(addr, is_store=op.is_store)
            if ev is not None:
                ev.dc_access += 1
                ev.lsq_search += 1
                if access > self.cache.config.hit_latency:
                    ev.dc_miss += 1
            if op.is_amo:
                latency = self.lat.amo + (access
                                          - self.cache.config.hit_latency)
            elif op.is_load:
                latency = access
            else:
                latency = self.lat.store
            issue = self._mem.acquire(ready, 1)
        elif fu in _LLFU:
            latency = self.lat.for_fu(fu)
            occupy = latency if fu in _UNPIPELINED else 1
            issue = self._llfu.acquire(ready, occupy)
        else:
            latency = 1
            issue = self._alus.acquire(ready, 1)

        if ev is not None:
            self._count_fu(ev, op)

        complete = issue + latency
        if complete > self._max_complete:
            self._max_complete = complete

        dst = instr.dst_reg()
        if dst is not None:
            reg_ready[dst] = complete
            if ev is not None:
                ev.rf_write += 1
        if op.is_store or op.is_amo:
            if addr is not None:
                self._store_ready[addr & ~3] = complete

        if op.is_branch or op.is_xloop:
            if ev is not None:
                ev.bpred += 1
            wrong = self.predictor.predict_and_update(pc, taken)
            if wrong:
                self.mispredicts += 1
                gate = complete + self.config.mispredict_penalty
                if gate > self._redirect:
                    self._redirect = gate
        elif op.mnemonic == "jalr":
            # ideal return-address stack: one-bubble redirect
            gate = fetch + 2
            if gate > self._redirect:
                self._redirect = gate
        if serialize:
            if complete > self._redirect:
                self._redirect = complete

        retire = self._retire(complete)
        rob.append(retire)
        self.retired += 1
        return issue

    def _count_fu(self, ev, op):
        fu = op.fu
        if fu == FU.MUL:
            ev.mul_op += 1
        elif fu == FU.DIV:
            ev.div_op += 1
        elif fu == FU.FPU:
            ev.fpu_op += 1
        elif fu == FU.FDIV:
            ev.fdiv_op += 1
        else:
            ev.alu_op += 1

    @property
    def cycles(self):
        return self._retire_cycle + 1 if self.retired else 0

    def advance(self, cycles):
        """Account externally-spent stall time (specialized phase)."""
        base = self.cycles + cycles
        self._fetch_cycle = max(self._fetch_cycle, base)
        self._fetch_count = 0
        self._retire_cycle = max(self._retire_cycle, base)
        self._retire_count = 0
        self._redirect = max(self._redirect, base)
        self._max_complete = max(self._max_complete, base)
        self._rob.clear()
        self._store_ready.clear()

    def drain(self):
        """Cycles at which every in-flight instruction has retired
        (used before handing off to the LPSU: the specialized phase
        starts only when the xloop reaches the ROB head)."""
        return self._retire_cycle + 1 if self.retired else 0
