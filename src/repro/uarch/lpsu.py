"""Cycle-level model of the Loop-Pattern Specialization Unit (Fig 4).

The LPSU is modelled as a cycle-stepped collection of decoupled
in-order lanes coordinated by a lane-management unit (LMU):

* **scan phase** — body instructions stream into the per-lane
  instruction buffers (one per cycle) while the LMU renames registers,
  detects CIRs and builds the MIVT (see
  :mod:`repro.uarch.descriptor`);
* **specialized execution phase** — idle lanes pull iteration indices
  (the IDQ); each lane executes its iteration in order, one
  instruction per cycle, stalling on RAW hazards, shared-memory-port
  and shared-LLFU structural hazards, cross-iteration-buffer (CIB)
  waits for ``xloop.or``, and LSQ hazards for
  ``xloop.{om,orm,ua}``;
* **memory disambiguation** — speculative lanes buffer stores in a
  per-lane LSQ and record load addresses; committed stores broadcast
  their addresses and squash any younger iteration that already read
  the same word; iterations commit strictly in index order;
* **dynamic bounds** — writes to the bound register are forwarded to
  the LMU, which grows the iteration space (``xloop.*.db``);
* **vertical multithreading** (Fig 9 ``+t``) — two iteration contexts
  per lane, round-robin issue, for unordered patterns only.

Functional execution is *real*: lanes run the same semantics as the
golden model against the shared memory, so specialized execution
produces (and tests verify) architecturally correct results, including
squash-and-replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.instructions import FU, Fmt
from ..sim.functional import LivelockError, decode_instr, execute
from ..sim.memory import MASK32, to_s32
from .descriptor import LoopDescriptor
from .params import LPSUConfig
from .schedmemo import FAR_FUTURE as _FAR

_LOAD_SIZE = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}
_STORE_SIZE = {"sw": 4, "sh": 2, "sb": 1}
_SIGNED_LOAD = {"lw": True, "lh": True, "lb": True, "lhu": False,
                "lbu": False}


@dataclass
class LPSUStats:
    """Specialized-execution statistics (feeds Fig 6 and Table II)."""

    scan_cycles: int = 0
    exec_cycles: int = 0
    finish_cycles: int = 0
    iterations: int = 0
    instrs: int = 0
    squashes: int = 0
    squashed_instrs: int = 0
    squash_cycles: int = 0     # lane-cycles of work thrown away
    # lane-cycle breakdown (Fig 6 categories)
    busy: int = 0
    stall_raw: int = 0
    stall_memport: int = 0
    stall_llfu: int = 0
    stall_cib: int = 0
    stall_lsq: int = 0
    stall_commit: int = 0
    stall_branch: int = 0
    idle: int = 0

    @property
    def cycles(self):
        return self.scan_cycles + self.exec_cycles + self.finish_cycles

    def breakdown(self):
        return {
            "busy": self.busy, "raw": self.stall_raw,
            "memport": self.stall_memport, "llfu": self.stall_llfu,
            "cib": self.stall_cib, "lsq": self.stall_lsq,
            "commit": self.stall_commit, "branch": self.stall_branch,
            "squash": self.squash_cycles, "idle": self.idle,
        }


@dataclass
class LPSUResult:
    """Outcome of one specialized xloop execution."""

    cycles: int
    iterations: int
    final_idx: int
    final_bound: int
    cir_values: Dict[int, int]
    exited: bool                # a .de iteration terminated the loop
    miv_values: Dict[int, int]  # MIV registers advanced past the last
    #                             executed iteration (needed when the
    #                             GPP resumes the loop traditionally)
    stats: LPSUStats
    completed: bool            # False when stopped early (profiling)
    exit_regs: Dict[int, int] = field(default_factory=dict)
    #                           # exiting lane's register copy-back


def _ctx_order(ctx):
    """Per-cycle issue order: active contexts first, oldest iteration
    (smallest k) first; ``sorted`` is stable so ties keep lane order."""
    return (not ctx.active, ctx.k)


class _StoreEntry:
    __slots__ = ("addr", "size", "value")

    def __init__(self, addr, size, value):
        self.addr = addr
        self.size = size
        self.value = value


class _Context:
    """One iteration context (a lane has 1, or 2 with multithreading)."""

    __slots__ = ("lane_id", "regs", "ready", "k", "pc_index", "ready_at",
                 "stall_kind", "iter_start", "attempt_instrs",
                 "received_cirs", "cir_written", "store_buf",
                 "load_words", "bypass", "committing", "active",
                 "exit_flag", "sleep_from")

    def __init__(self, lane_id, live_in_regs):
        self.lane_id = lane_id
        self.regs = list(live_in_regs)
        self.ready = [0] * 32      # per-lane register scoreboard
        self.k = -1
        self.pc_index = 0
        self.ready_at = 0
        self.stall_kind = None
        self.iter_start = 0
        self.attempt_instrs = 0
        self.received_cirs = {}
        self.cir_written = set()
        self.store_buf: List[_StoreEntry] = []
        # word address -> iteration index whose value the load
        # consumed (-1 when it came from memory); drives precise
        # violation detection under inter-lane forwarding
        self.load_words = {}
        self.bypass = False
        self.committing = False
        self.active = False
        self.exit_flag = False
        self.sleep_from = 0   # cycle a commit-parked context went idle

    @property
    def lsq_store_count(self):
        return len(self.store_buf)


class LPSU:
    """One specialized execution of one xloop.

    Parameters
    ----------
    descriptor
        Scan-phase analysis of the loop (:func:`scan_loop`).
    live_in_regs
        GPP register file when the xloop was reached.
    mem
        The shared architectural memory (updated in place).
    cache
        Shared L1 data cache timing model.
    config
        :class:`LPSUConfig`.
    events
        Optional :class:`~repro.energy.events.EnergyEvents` to count into.
    """

    def __init__(self, descriptor, live_in_regs, mem, cache, config=None,
                 events=None, trace=None, decoded_body=None,
                 monitor=None, fast=True, memo=None, engine=None,
                 vector=None):
        self.d = descriptor
        self.cfg = config or LPSUConfig()
        self.mem = mem
        self.cache = cache
        self.events = events
        self.trace = trace   # optional LaneTrace (repro.uarch.tracelog)
        # optional InvariantMonitor (repro.verify): a pure observer fed
        # through the same style of hook points as the tracer, so a
        # monitored run is cycle/energy-identical to an unmonitored one
        self.monitor = monitor
        # fast path: same schedule, less per-cycle bookkeeping.  Any
        # observer that must see every individual step disables it.
        self.fast = bool(fast) and trace is None and monitor is None
        self._memo = memo    # optional ScheduleMemo (repro.uarch.schedmemo)
        # optional compiled fused-lane step factory
        # (repro.sim.fusion.lpsu_engine); bound by run()
        self._engine = engine
        # optional whole-block batching engine
        # (repro.sim.vector.vector_engine); consulted by run()
        self._vector = vector
        self.lat = None  # set by run() from the GPP latency table

        self.live_in = list(live_in_regs)
        self.start_idx = to_s32(live_in_regs[descriptor.idx_reg])
        self.bound = to_s32(live_in_regs[descriptor.bound_reg])
        # conflict squashing is a *data*-pattern property; control
        # speculation (.de) additionally buffers every iteration's
        # stores so an older iteration's exit can discard younger work
        self.squash_on_conflict = \
            descriptor.kind.data.needs_memory_disambiguation
        self.control_speculative = descriptor.kind.control.value == "de"
        self.needs_lsq = (self.squash_on_conflict
                          or self.control_speculative)
        self.ordered_regs = descriptor.kind.data.ordered_through_registers
        self.dynamic_bound = descriptor.kind.control.value == "db"
        self._exited_at = None
        self._exit_regs = {}

        threads = self.cfg.threads_per_lane
        if self.needs_lsq or self.ordered_regs:
            # paper IV-F: multithreading disabled for or/om/orm (and ua,
            # which shares the om mechanisms)
            threads = 1
        self.contexts = [
            _Context(lane, self.live_in)
            for lane in range(self.cfg.lanes) for _ in range(threads)]

        # CIB channels: (cir_reg, iteration k) -> (cycle, value)
        self._cib: Dict[tuple, tuple] = {}
        # pre-decoded body handlers (lane "instruction buffer"): one
        # specialized closure per slot, indexed by pc_index
        if decoded_body is None:
            decoded_body = [
                decode_instr(ins, descriptor.body_start_pc + 4 * i)
                for i, ins in enumerate(descriptor.body)]
        self._body_exec = decoded_body
        self._body_n = descriptor.body_len
        self._body_base = descriptor.body_start_pc
        self._meta = None          # built by run() (needs latencies)
        self._exec_counts = [0] * self._body_n
        self.stats = LPSUStats()
        self._next_k = 0
        self._commit_next = 0
        self._llfu_free = [0] * self.cfg.llfus
        self._mem_grants = 0
        self._cycle = 0
        self._max_iters = None
        self._active_count = 0
        self._order = list(self.contexts)
        self._order_dirty = True
        # issue-slot superblock fusion needs a single context per lane
        # (another thread on the lane could claim the slot mid-run)
        self._fuse = self.fast and len(self.contexts) == self.cfg.lanes
        self._fusable = None       # built by run() alongside _meta
        self._commit_waiters = {}  # k -> context parked on commit order
        self._rec = None           # active schedule recording (or None)
        self._rec_sig = None
        self._rec_cycle0 = 0
        self._rec_k0 = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def _build_meta(self, latencies):
        """Static per-slot facts, resolved once so the per-cycle step
        does table lookups instead of property chains: the handler,
        operand registers, issue class (0=ALU 1=mem 2=LLFU), latency /
        LLFU occupancy, and the CIR/bound bookkeeping flags."""
        d = self.d
        cirs = d.cirs
        ordered = self.ordered_regs
        meta = []
        for i, ins in enumerate(d.body):
            op = ins.op
            srcs = ins.src_regs()
            dst = ins.dst_reg()
            if op.is_mem and not op.is_fence:
                kind, latency, occupy = 1, 0, 0
            elif op.is_llfu:
                kind = 2
                latency = latencies.for_fu(op.fu)
                occupy = latency if op.fu in (FU.DIV, FU.FDIV) else 1
            else:
                kind, latency, occupy = 0, 1, 0
            has_cir_srcs = ordered and any(s in cirs for s in srcs)
            meta.append((
                self._body_exec[i], srcs, dst, kind, latency, occupy,
                op.is_xbreak,
                op.is_branch or op.is_jump or op.is_xloop,
                has_cir_srcs,
                ordered and dst is not None and dst in cirs,
                ins.last_cir_write,
                self.dynamic_bound and dst == d.bound_reg,
                ins))
        return meta

    def _apply_exec_counts(self, ev):
        """Fold the deferred per-slot execution counts into the energy
        event totals (order-independent integer sums, so this matches
        per-instruction counting exactly)."""
        d = self.d
        for i, n in enumerate(self._exec_counts):
            if not n:
                continue
            ins = d.body[i]
            op = ins.op
            ev.ib_read += n
            reads = 0
            for s in ins.src_regs():
                if s:
                    reads += 1
            ev.rf_read += reads * n
            if ins.dst_reg() is not None:
                ev.rf_write += n
            fu = op.fu
            if fu == FU.MUL:
                ev.mul_op += n
            elif fu == FU.DIV:
                ev.div_op += n
            elif fu == FU.FPU:
                ev.fpu_op += n
            elif fu == FU.FDIV:
                ev.fdiv_op += n
            elif not op.is_mem:
                ev.alu_op += n

    def run(self, latencies, max_iters=None, max_cycles=None):
        """Execute the loop; returns an :class:`LPSUResult`.

        *max_cycles* bounds the specialized execution phase: exceeding
        it raises :class:`~repro.sim.functional.LivelockError` (a
        malformed or fault-injected loop can otherwise stall forever
        on a CIB/commit wait that never resolves).
        """
        self.lat = latencies
        self._max_iters = max_iters
        self._meta = self._build_meta(latencies)
        # slots a superblock may *continue* through: single-cycle
        # compute with no CIR/bound side effects (srcs/dst are then
        # context-private, so batched execution is schedule-identical)
        self._fusable = [m[3] == 0 and not m[8] and not m[9]
                         and not m[11] for m in self._meta]
        d, cfg, ev = self.d, self.cfg, self.events

        # schedule memoization: only for loops whose scheduling is
        # insensitive to cross-lane state (see repro.uarch.schedmemo)
        memo = self._memo
        if memo is not None and (
                max_iters is not None or not self._fuse
                or self.needs_lsq or self.ordered_regs
                or self.dynamic_bound or d.cirs
                or cfg.inter_lane_forwarding or memo.dead):
            memo = None
        if memo is not None:
            ok = memo.body_ok
            if ok is None:
                ok = True
                for ins in d.body:
                    if ins.op.is_amo or ins.op.fmt == Fmt.JALR:
                        ok = False
                        break
                memo.body_ok = ok
            if not ok:
                memo = None

        # -- scan phase --------------------------------------------------
        self.stats.scan_cycles = cfg.scan_overhead + d.body_len
        if ev is not None:
            ev.ib_write += d.body_len * cfg.lanes
            ev.rename += d.body_len
            ev.rf_read += d.live_in_reads
            ev.rf_write += d.live_in_reads * cfg.lanes

        # seed CIB channels for the first specialized iteration
        for cir in d.cirs:
            self._cib[(cir, 0)] = (0, self.live_in[cir])

        # -- specialized execution phase -----------------------------------
        cycle = 0
        # whole-block batching (vector tier): engage only where turbo
        # has nothing to offer -- divergent bodies (whose schedule memo
        # dies) or loops running without a usable memo.  On success the
        # engine consumed every iteration (bit-identical stats/events/
        # memory), so the per-cycle loop below exits immediately with
        # the reconstructed cycle count.
        vec = self._vector
        if (vec is not None and self.fast and self._fuse
                and ev is not None and max_cycles is None
                and (vec.divergent or memo is None or memo.dead)):
            batched = vec.execute(self)
            if batched is not None:
                cycle = batched
                memo = None
        guard = 0
        contexts = self.contexts
        step = self._step
        # compiled fused-lane engine: a generated drop-in for _step
        # with this loop's statics folded in.  Recording cycles (the
        # memo needs to see individual actions) and every non-fast /
        # observed configuration keep the interpreted stepper.
        engine_step = None
        if (self._engine is not None and self._fuse
                and self.events is not None):
            engine_step = self._engine(self)
        finished = self._finished
        # with one context per lane every lane_id is unique, so the
        # issue-slot dedupe can never fire; skip its bookkeeping
        multithreaded = len(contexts) > cfg.lanes
        fast = self.fast
        n_ctx = len(contexts)
        anchor_k = self._next_k   # next iteration count that starts an epoch
        while True:
            if finished():
                break
            if memo is not None:
                rec = self._rec
                if rec is not None and len(rec) > memo.max_entries:
                    # one epoch is too long to ever replay profitably;
                    # stop paying the recording tax for this loop
                    self._rec = None
                    memo.dead = True
                    memo = None
                elif self._next_k >= anchor_k:
                    cycle, mid = self._memo_anchor(memo, cycle)
                    if memo.dead:
                        memo = None
                    else:
                        anchor_k = (self._next_k // n_ctx + 1) * n_ctx
                    if mid:
                        # a replay diverged; its abort path already
                        # completed the returned cycle with _step
                        cycle += 1
                        guard += 1
                        continue
                    if finished():
                        break
            self._mem_grants = 0
            # issue order depends only on (active, k), which change
            # solely at iteration begin/retire/discard — re-sort only
            # after one of those happened
            if self._order_dirty:
                self._order = sorted(contexts, key=_ctx_order)
                self._order_dirty = False
            order = self._order
            if multithreaded:
                issued_lanes = set()
                for ctx in order:
                    if ctx.lane_id in issued_lanes:
                        continue
                    if step(ctx, cycle):
                        issued_lanes.add(ctx.lane_id)
            else:
                s = (engine_step
                     if engine_step is not None and self._rec is None
                     else step)
                for ctx in order:
                    if ctx.active and ctx.ready_at > cycle:
                        continue
                    s(ctx, cycle)
            cycle += 1
            guard += 1
            if (fast and (self._active_count == n_ctx
                          or not self._more_iterations())):
                # event-driven scheduling: no context can change state
                # before the earliest wake-up, so jump straight to it
                # (the skipped cycles touch no stat -- idle time
                # derives from totals below).  Every context that was
                # denied this cycle still has ready_at <= cycle, which
                # keeps the jump a no-op whenever anything could issue.
                nxt = _FAR
                for ctx in contexts:
                    if ctx.active and ctx.ready_at < nxt:
                        nxt = ctx.ready_at
                if cycle < nxt < _FAR:
                    cycle = nxt
            if max_cycles is not None and cycle > max_cycles:
                raise LivelockError(
                    "LPSU exceeded %d cycles (livelock?)" % max_cycles)
            if guard > 200_000_000:  # pragma: no cover
                raise LivelockError("LPSU livelock (step guard)")
        self._rec = None   # drop any recording cut short by loop end
        self.stats.exec_cycles = cycle
        self.stats.finish_cycles = cfg.finish_overhead
        if ev is not None:
            self._apply_exec_counts(ev)

        # idle lane-cycles = lane-cycles not otherwise attributed
        total_lane_cycles = cycle * len(self.contexts)
        attributed = (self.stats.busy + self.stats.stall_raw
                      + self.stats.stall_memport + self.stats.stall_llfu
                      + self.stats.stall_cib + self.stats.stall_lsq
                      + self.stats.stall_commit + self.stats.stall_branch)
        self.stats.idle = max(0, total_lane_cycles - attributed)

        iterations = self.stats.iterations
        if self._exited_at is not None:
            final_idx = self.start_idx + self._exited_at
            completed = True
        else:
            final_idx = self.start_idx + self._next_k
            completed = final_idx >= self.bound
        last_k = (self._exited_at + 1 if self._exited_at is not None
                  else self._next_k)
        cir_values = {cir: self._cib[(cir, last_k)][1]
                      for cir in d.cirs
                      if (cir, last_k) in self._cib}
        miv_values = {
            miv.reg: (self.live_in[miv.reg]
                      + miv.increment * last_k) & MASK32
            for miv in d.mivt.values()}
        return LPSUResult(
            cycles=self.stats.cycles, iterations=iterations,
            final_idx=final_idx, final_bound=self.bound,
            cir_values=cir_values, miv_values=miv_values,
            exited=self._exited_at is not None,
            exit_regs=dict(self._exit_regs),
            stats=self.stats, completed=completed)

    # ------------------------------------------------------------------
    # per-cycle machinery
    # ------------------------------------------------------------------

    def _finished(self):
        if self._active_count:
            return False
        return not self._more_iterations()

    def _more_iterations(self):
        if self._exited_at is not None:
            return False
        if (self._max_iters is not None
                and self._next_k >= self._max_iters):
            return False
        return self.start_idx + self._next_k < self.bound

    def _discard_younger(self, k, cycle):
        for other in self.contexts:
            if not other.active or other.k <= k:
                continue
            if self._commit_waiters:
                w = self._commit_waiters.pop(other.k, None)
                if w is not None:
                    self.stats.stall_commit += cycle - w.sleep_from
            if self.monitor is not None:
                self.monitor.on_discard(other.lane_id, other.k, cycle)
            self.stats.squashes += 1
            self.stats.squashed_instrs += other.attempt_instrs
            self.stats.squash_cycles += max(0, cycle - other.iter_start)
            if self.events is not None:
                self.events.squashed_instr += other.attempt_instrs
            other.active = False
            self._active_count -= 1
            self._order_dirty = True
            other.committing = False
            other.attempt_instrs = 0
            other.store_buf.clear()
            other.load_words.clear()
            other.received_cirs.clear()
            other.cir_written.clear()
            other.exit_flag = False
            other.bypass = False

    def _step(self, ctx, cycle):
        """Advance one context by at most one issue slot.  Returns True
        when the context consumed its lane's issue slot this cycle."""
        if not ctx.active:
            if self._more_iterations():
                self._begin_iteration(ctx, cycle)
            else:
                return False
        if ctx.ready_at > cycle:
            return False

        if ctx.committing:
            return self._advance_commit(ctx, cycle)

        # mid-iteration promotion: drain buffered stores once oldest
        if (self.needs_lsq and ctx.store_buf and not ctx.bypass
                and ctx.k == self._commit_next):
            return self._drain_one(ctx, cycle, promote=True)

        pc_index = ctx.pc_index
        if pc_index >= self._body_n:
            return self._end_iteration(ctx, cycle)

        (handler, srcs, dst, kind, latency, _occupy, is_xbreak, branchy,
         has_cir_srcs, publishes_cir, last_cir, bound_dst,
         instr) = self._meta[pc_index]

        # CIR delivery: the first read of a CIR waits on the CIB
        if has_cir_srcs and not self._deliver_cirs(ctx, instr, cycle):
            return False

        # RAW hazards (per-lane scoreboard)
        ready = ctx.ready
        avail = cycle
        for s in srcs:
            t = ready[s]
            if t > avail:
                avail = t
        if avail > cycle:
            self._stall(ctx, cycle, avail, "raw")
            return False

        if kind == 1:
            return self._step_mem(ctx, instr, cycle)

        # LLFU structural hazard (shared with the GPP, Fig 4)
        if kind == 2:
            unit = self._llfu_acquire(cycle, _occupy)
            if unit is None:
                self._stall_one(ctx, cycle, "llfu")
                return True  # occupied the issue slot attempting

        next_pc, _addr, taken = handler(ctx.regs, self.mem)
        self._exec_counts[pc_index] += 1
        ctx.attempt_instrs += 1

        if is_xbreak:
            ctx.exit_flag = True
        if dst is not None:
            ready[dst] = cycle + latency
        i = (next_pc - self._body_base) >> 2
        c = cycle + 1
        br_stall = 0
        if branchy and taken:
            br_stall = self.cfg.branch_penalty
            c += br_stall
        self.stats.busy += 1
        if self.trace is not None:
            self.trace.mark(ctx, cycle, "E")

        # CIB publish: last CIR write (or dynamic-bound notification)
        if publishes_cir:
            ctx.cir_written.add(dst)
            if last_cir:
                self._publish_cir(ctx, dst, cycle + latency)
        if bound_dst:
            new_bound = to_s32(ctx.regs[dst])
            if new_bound > self.bound:
                self.bound = new_bound

        if (self._fuse and kind == 0 and 0 <= i < self._body_n
                and self._fusable[i]
                and (not self.needs_lsq or ctx.k == self._commit_next)):
            # superblock fusion: keep executing single-cycle compute
            # ops within this issue slot for as long as the per-cycle
            # loop could not have scheduled anything between them.
            # Fusable ops touch only context-private state (regs and
            # scoreboard) plus order-independent totals, and this
            # context cannot be squashed mid-batch: it is either in an
            # unordered pattern or it is the oldest iteration.
            meta = self._meta
            mt = meta[i]
            avail = c
            for s in mt[1]:
                t = ready[s]
                if t > avail:
                    avail = t
            if avail <= c:
                fusable = self._fusable
                counts = self._exec_counts
                regs = ctx.regs
                mem = self.mem
                body_n = self._body_n
                base = self._body_base
                pen = self.cfg.branch_penalty
                rec = self._rec
                if rec is not None:
                    slots = [pc_index]
                    takens = [taken if branchy else None]
                n = 1
                while True:
                    next_pc, _addr, taken = mt[0](regs, mem)
                    counts[i] += 1
                    if mt[6]:
                        ctx.exit_flag = True
                    d2 = mt[2]
                    if d2 is not None:
                        ready[d2] = c + 1
                    if rec is not None:
                        slots.append(i)
                        takens.append(taken if mt[7] else None)
                    c += 1
                    if mt[7] and taken:
                        br_stall += pen
                        c += pen
                    i = (next_pc - base) >> 2
                    n += 1
                    if not (0 <= i < body_n and fusable[i] and n < 65536):
                        break
                    mt = meta[i]
                    avail = c
                    for s in mt[1]:
                        t = ready[s]
                        if t > avail:
                            avail = t
                    if avail > c:
                        break   # RAW: the per-cycle loop takes over
                ctx.attempt_instrs += n - 1
                self.stats.busy += n - 1
                self.stats.stall_branch += br_stall
                if rec is not None:
                    rec.append(("A", cycle, ctx.lane_id, tuple(slots),
                                tuple(takens), i, c - cycle, br_stall))
                ctx.pc_index = i
                ctx.ready_at = c
                return True
        self.stats.stall_branch += br_stall
        rec = self._rec
        if rec is not None:
            if kind == 2:
                rec.append(("F", cycle, ctx.lane_id, pc_index))
            elif kind == 0:
                rec.append(("A", cycle, ctx.lane_id, (pc_index,),
                            (taken if branchy else None,), i,
                            c - cycle, br_stall))
        ctx.pc_index = i
        ctx.ready_at = c
        return True

    # -- memory operations -------------------------------------------------

    def _deliver_cirs(self, ctx, instr, cycle):
        """First read of each CIR waits for the previous iteration's
        value in the CIB.  Returns False when the context must stall."""
        d = self.d
        for s in instr.src_regs():
            if s in d.cirs and s not in ctx.received_cirs:
                chan = self._cib.get((s, ctx.k))
                if chan is None or chan[0] > cycle:
                    self._stall(ctx, cycle,
                                chan[0] if chan else cycle + 1, "cib")
                    return False
                ctx.regs[s] = chan[1]
                ctx.received_cirs[s] = chan[1]
                ctx.ready[s] = cycle
                if self.events is not None:
                    self.events.cib_read += 1
                    self.events.rf_write += 1
                if self.monitor is not None:
                    self.monitor.on_cib_consume(ctx.lane_id, ctx.k, s,
                                                chan[1], cycle)
        return True

    def _publish_cir(self, ctx, cir, avail_cycle):
        self._cib[(cir, ctx.k + 1)] = (avail_cycle, ctx.regs[cir])
        if self.events is not None:
            self.events.cib_write += 1
        if self.monitor is not None:
            self.monitor.on_cib_publish(ctx.lane_id, ctx.k, cir,
                                        ctx.regs[cir], avail_cycle,
                                        avail_cycle)

    def _step_mem(self, ctx, instr, cycle):
        op = instr.op
        regs = ctx.regs
        d = self.d

        if self.ordered_regs and not self._deliver_cirs(ctx, instr,
                                                        cycle):
            return False
        speculative = (self.needs_lsq and not ctx.bypass
                       and ctx.k != self._commit_next)
        if self.needs_lsq and not speculative:
            ctx.bypass = True  # oldest iteration: direct memory access

        addr = (regs[instr.rs1] + instr.imm) & MASK32 \
            if op.fmt != Fmt.AMO else regs[instr.rs1]

        if op.is_amo and speculative:
            # AMOs cannot be buffered; wait until non-speculative
            self._stall_one(ctx, cycle, "commit")
            return True

        if speculative and op.is_store:
            if ctx.lsq_store_count >= self.cfg.lsq_stores:
                self._stall_one(ctx, cycle, "lsq")
                return True
        if speculative and op.is_load and self.squash_on_conflict:
            if len(ctx.load_words) >= self.cfg.lsq_loads:
                self._stall_one(ctx, cycle, "lsq")
                return True

        forwarded = None
        forward_source = -1
        if speculative and op.is_load:
            size = _LOAD_SIZE[op.mnemonic]
            forwarded = self._forward(ctx, addr, size)
            if forwarded == "overlap":
                self._stall_one(ctx, cycle, "lsq")
                return True
            if forwarded is None and self.cfg.inter_lane_forwarding:
                forwarded, forward_source = self._forward_across(
                    ctx, addr, size)
                if forwarded == "overlap":
                    self._stall_one(ctx, cycle, "lsq")
                    return True

        if forwarded is None:
            # needs the shared memory port
            if self._mem_grants >= self.cfg.mem_ports:
                self._stall_one(ctx, cycle, "memport")
                return True
            self._mem_grants += 1
            access = self.cache.access(addr, is_store=op.is_store)
            if self.events is not None:
                self.events.dc_access += 1
                if access > self.cache.config.hit_latency:
                    self.events.dc_miss += 1
        else:
            access = 1  # store->load forwarding inside the LSQ

        ready = ctx.ready
        result_time = cycle + 1
        if op.is_load:
            size = _LOAD_SIZE[op.mnemonic]
            if forwarded is not None and forwarded != "overlap":
                value = forwarded
                if forward_source >= 0 and self.squash_on_conflict:
                    # keep the *oldest* source seen for this word: an
                    # earlier read served by memory (-1) or an older
                    # lane must stay squashable by that source's later
                    # commits -- overwriting with a younger source
                    # would hide the earlier read from the broadcast
                    word = addr & ~3
                    prev = ctx.load_words.get(word)
                    ctx.load_words[word] = (forward_source
                                            if prev is None
                                            else min(prev, forward_source))
            else:
                value = self.mem.load(addr, size, _SIGNED_LOAD[op.mnemonic])
                if speculative and self.squash_on_conflict:
                    ctx.load_words[addr & ~3] = -1
                    if self.events is not None:
                        self.events.lsq_write += 1
            if speculative and self.events is not None:
                self.events.lsq_search += 1
            if instr.rd:
                regs[instr.rd] = value
                ready[instr.rd] = cycle + access
                result_time = cycle + access
        elif op.is_store:
            size = _STORE_SIZE[op.mnemonic]
            value = regs[instr.rs2]
            if speculative:
                ctx.store_buf.append(_StoreEntry(addr, size, value))
                if self.events is not None:
                    self.events.lsq_write += 1
                if self.cfg.inter_lane_forwarding:
                    self._invalidate_stale_forwards(ctx, addr, cycle)
            else:
                self.mem.store(addr, size, value)
                if self.monitor is not None:
                    self.monitor.on_commit_store(
                        ctx.lane_id, ctx.k, "st", addr, size, value,
                        cycle)
                if self.cfg.inter_lane_forwarding:
                    self._invalidate_stale_forwards(ctx, addr, cycle)
                if self.squash_on_conflict:
                    self._broadcast(addr, ctx, cycle)
        else:  # AMO, non-speculative by construction here
            if self.monitor is not None:
                self.monitor.on_commit_store(
                    ctx.lane_id, ctx.k, "amo", addr, 4,
                    regs[instr.rs2], cycle)
            old = self.mem.amo(op.mnemonic, addr, regs[instr.rs2])
            if instr.rd:
                regs[instr.rd] = old
                ready[instr.rd] = cycle + self.lat.amo
                result_time = cycle + self.lat.amo
            if self.cfg.inter_lane_forwarding:
                self._invalidate_stale_forwards(ctx, addr, cycle)
            if self.squash_on_conflict:
                self._broadcast(addr, ctx, cycle)
            if self.dynamic_bound and instr.rd == d.bound_reg:
                new_bound = to_s32(regs[instr.rd])
                if new_bound > self.bound:
                    self.bound = new_bound

        dst = instr.dst_reg()
        if self.ordered_regs and dst is not None and dst in d.cirs:
            ctx.cir_written.add(dst)
            if instr.last_cir_write:
                self._publish_cir(ctx, dst, result_time)

        self._exec_counts[ctx.pc_index] += 1
        ctx.attempt_instrs += 1
        ctx.pc_index += 1
        ctx.ready_at = cycle + 1
        self.stats.busy += 1
        if self.trace is not None:
            self.trace.mark(ctx, cycle, "M")
        if self._rec is not None:
            self._rec.append(("M", cycle, ctx.lane_id, ctx.pc_index - 1,
                              access > self.cache.config.hit_latency))

        # a plain load of the bound register also grows a dynamic bound
        if (self.dynamic_bound and op.is_load
                and instr.rd == d.bound_reg):
            new_bound = to_s32(regs[instr.rd])
            if new_bound > self.bound:
                self.bound = new_bound
        return True

    def _forward(self, ctx, addr, size):
        """Search the context's store buffer newest-first."""
        end = addr + size
        for entry in reversed(ctx.store_buf):
            if entry.addr == addr and entry.size == size:
                return entry.value & ((1 << (8 * size)) - 1) \
                    if size < 4 else entry.value
            if entry.addr < end and addr < entry.addr + entry.size:
                return "overlap"
        return None

    def _forward_across(self, ctx, addr, size):
        """Inter-lane forwarding: search *older* in-flight iterations'
        store buffers, youngest-first (paper II-D's aggressive
        variant).  Returns (value, source_k) or (None, -1)."""
        older = sorted((o for o in self.contexts
                        if o is not ctx and o.active and o.k < ctx.k),
                       key=lambda o: -o.k)
        for other in older:
            if self.events is not None:
                self.events.lsq_search += 1
            hit = self._forward(other, addr, size)
            if hit == "overlap":
                return "overlap", -1
            if hit is not None:
                return hit, other.k
        return None, -1

    def _invalidate_stale_forwards(self, ctx, addr, cycle):
        """A new store by *ctx* to a word some younger iteration already
        forwarded out of ctx's store buffer leaves that iteration holding
        an intermediate value -- serial execution would see ctx's final
        store.  The commit-time broadcast deliberately ignores readers
        whose recorded source is the committing iteration itself (that is
        what makes forwarding pay off), so the repeated-store case must
        squash here, at execute time."""
        word = addr & ~3
        for other in self.contexts:
            if (other is not ctx and other.active and other.k > ctx.k
                    and other.load_words.get(word) == ctx.k):
                self._squash(other, cycle)

    # -- commit / squash machinery --------------------------------------------

    def _end_iteration(self, ctx, cycle):
        d = self.d
        # pass through CIRs whose last-CIR-write was dynamically skipped
        # (paper II-D: "the lane will copy the corresponding CIR value
        # to the CIB" at the end of the iteration)
        if self.ordered_regs:
            for cir in d.cirs:
                if (cir, ctx.k + 1) in self._cib:
                    continue
                if cir in ctx.received_cirs or cir in ctx.cir_written:
                    self._publish_cir(ctx, cir, cycle)
                    continue
                # never touched this iteration: forward the incoming
                # value (which must itself have arrived)
                chan = self._cib.get((cir, ctx.k))
                if chan is None or chan[0] > cycle:
                    self._stall(ctx, cycle,
                                chan[0] if chan else cycle + 1, "cib")
                    return False
                self._cib[(cir, ctx.k + 1)] = (cycle, chan[1])
                if self.events is not None:
                    self.events.cib_write += 1
                if self.monitor is not None:
                    self.monitor.on_cib_publish(ctx.lane_id, ctx.k, cir,
                                                chan[1], cycle, cycle)
        if self.needs_lsq:
            ctx.committing = True
            return self._advance_commit(ctx, cycle)
        self._retire_iteration(ctx, cycle)
        return False

    def _advance_commit(self, ctx, cycle):
        if ctx.k != self._commit_next:
            self._stall_one(ctx, cycle, "commit")
            return False
        if ctx.store_buf:
            return self._drain_one(ctx, cycle, promote=False)
        self._retire_iteration(ctx, cycle)
        return False

    def _drain_one(self, ctx, cycle, promote):
        """Write one buffered store to memory (needs the memory port)."""
        if self._mem_grants >= self.cfg.mem_ports:
            self._stall_one(ctx, cycle, "memport")
            return True
        self._mem_grants += 1
        entry = ctx.store_buf.pop(0)
        self.cache.access(entry.addr, is_store=True)
        self.mem.store(entry.addr, entry.size, entry.value)
        if self.events is not None:
            self.events.dc_access += 1
        if self.monitor is not None:
            self.monitor.on_commit_store(
                ctx.lane_id, ctx.k, "st", entry.addr, entry.size,
                entry.value, cycle)
        if self.squash_on_conflict:
            self._broadcast(entry.addr, ctx, cycle)
        ctx.ready_at = cycle + 1
        self.stats.busy += 1
        if self.trace is not None:
            self.trace.mark(ctx, cycle, "D")
        if promote and not ctx.store_buf:
            ctx.bypass = True
            ctx.load_words.clear()
        return True

    def _retire_iteration(self, ctx, cycle):
        if self.monitor is not None:
            self.monitor.on_retire(ctx.lane_id, ctx.k, cycle, ctx.regs)
        self.stats.iterations += 1
        self.stats.instrs += ctx.attempt_instrs
        if self._rec is not None:
            self._rec.append(("R", cycle, ctx.lane_id))
        if self.needs_lsq:
            self._commit_next += 1
            if self._commit_waiters:
                w = self._commit_waiters.pop(self._commit_next, None)
                if w is not None:
                    # account the commit stalls the parked context
                    # would have re-attempted every intervening cycle
                    self.stats.stall_commit += cycle - w.sleep_from
                    w.ready_at = cycle
        if ctx.exit_flag:
            # data-dependent exit: this (now architectural) iteration
            # terminates the loop; discard younger speculative work and
            # snapshot its registers for the LMU copy-back
            self._exited_at = ctx.k
            self._exit_regs = {r: ctx.regs[r]
                               for r in self.d.exit_copy_regs}
            self._discard_younger(ctx.k, cycle)
            ctx.exit_flag = False
        ctx.active = False
        self._active_count -= 1
        self._order_dirty = True
        ctx.committing = False
        ctx.attempt_instrs = 0
        ctx.store_buf.clear()
        ctx.load_words.clear()
        ctx.received_cirs.clear()
        ctx.cir_written.clear()
        ctx.bypass = False
        ctx.ready_at = cycle + 1

    def _broadcast(self, addr, src_ctx, cycle):
        """Committed-store address broadcast: squash younger readers."""
        word = addr & ~3
        if self.monitor is not None:
            self.monitor.on_broadcast(src_ctx.lane_id, src_ctx.k, word,
                                      cycle)
        for other in self.contexts:
            if other is src_ctx or not other.active:
                continue
            if (other.k > src_ctx.k
                    and other.load_words.get(word, src_ctx.k)
                    < src_ctx.k):
                self._squash(other, cycle)
            if self.events is not None and other.k > src_ctx.k:
                self.events.lsq_search += 1

    def _squash(self, ctx, cycle):
        if self._commit_waiters:
            w = self._commit_waiters.pop(ctx.k, None)
            if w is not None:
                self.stats.stall_commit += cycle - w.sleep_from
        if self.monitor is not None:
            self.monitor.on_squash(ctx.lane_id, ctx.k, cycle,
                                   len(ctx.store_buf))
        self.stats.squashes += 1
        self.stats.squashed_instrs += ctx.attempt_instrs
        self.stats.squash_cycles += max(0, cycle - ctx.iter_start)
        if self.events is not None:
            self.events.squashed_instr += ctx.attempt_instrs
        # cascade: younger iterations that forwarded values out of this
        # iteration's (now discarded) store buffer consumed wrong data
        if self.cfg.inter_lane_forwarding:
            for other in self.contexts:
                if (other is not ctx and other.active
                        and other.k > ctx.k
                        and ctx.k in other.load_words.values()):
                    self._squash(other, cycle)
        if self.trace is not None:
            self.trace.mark(ctx, cycle, "X")
        ctx.attempt_instrs = 0
        ctx.exit_flag = False
        ctx.store_buf.clear()
        ctx.load_words.clear()
        ctx.cir_written.clear()
        ctx.pc_index = 0
        ctx.committing = False
        ctx.bypass = False
        ctx.ready_at = cycle + 1
        # restart state: index + MIVs reset; received CIRs reapplied
        self._init_iter_regs(ctx)
        ctx.iter_start = cycle + 1

    # -- iteration setup -------------------------------------------------------

    def _begin_iteration(self, ctx, cycle):
        k = self._next_k
        self._next_k += 1
        ctx.k = k
        ctx.active = True
        self._active_count += 1
        self._order_dirty = True
        ctx.committing = False
        ctx.bypass = False
        ctx.pc_index = 0
        ctx.iter_start = cycle
        ctx.attempt_instrs = 0
        ctx.received_cirs.clear()
        ctx.cir_written.clear()
        self._init_iter_regs(ctx)
        if self.monitor is not None:
            self.monitor.on_begin(ctx.lane_id, k, cycle, ctx.regs)
        ctx.ready_at = cycle
        if self.trace is not None and k:
            self.trace.mark(ctx, max(0, cycle - 1), "|")
        if self.events is not None:
            self.events.idq_op += 1
        if self._rec is not None:
            self._rec.append(("B", cycle, ctx.lane_id))

    def _init_iter_regs(self, ctx):
        d = self.d
        k = ctx.k
        ctx.regs[d.idx_reg] = (self.start_idx + k) & MASK32
        for miv in d.mivt.values():
            ctx.regs[miv.reg] = (self.live_in[miv.reg]
                                 + miv.increment * k) & MASK32
            if self.events is not None:
                self.events.miv_mul += 1
        for cir, value in ctx.received_cirs.items():
            ctx.regs[cir] = value

    # -- small helpers ------------------------------------------------------------

    def _stall(self, ctx, cycle, until, kind):
        ctx.ready_at = max(until, cycle + 1)
        span = ctx.ready_at - cycle
        if kind == "raw":
            self.stats.stall_raw += span
            if self._rec is not None:
                self._rec.append(("r", cycle, ctx.lane_id))
        elif kind == "cib":
            self.stats.stall_cib += span
        if self.trace is not None:
            self.trace.mark(ctx, cycle, "r" if kind == "raw" else "c",
                            span)

    _TRACE_CODES = {"memport": "m", "llfu": "l", "lsq": "q",
                    "commit": "w"}

    def _stall_one(self, ctx, cycle, kind):
        ctx.ready_at = cycle + 1
        if kind == "memport":
            self.stats.stall_memport += 1
            if self._rec is not None:
                self._rec.append(("p", cycle, ctx.lane_id))
        elif kind == "llfu":
            self.stats.stall_llfu += 1
            if self._rec is not None:
                self._rec.append(("l", cycle, ctx.lane_id))
        elif kind == "lsq":
            self.stats.stall_lsq += 1
        elif kind == "commit":
            self.stats.stall_commit += 1
            if self.fast:
                # park until the commit token reaches this iteration;
                # the retire-time wake-up reproduces the slow path's
                # once-per-cycle re-attempt accounting exactly
                ctx.sleep_from = cycle + 1
                ctx.ready_at = _FAR
                self._commit_waiters[ctx.k] = ctx
        if self.trace is not None:
            self.trace.mark(ctx, cycle, self._TRACE_CODES[kind])

    def _llfu_acquire(self, cycle, occupy):
        for i, free in enumerate(self._llfu_free):
            if free <= cycle:
                self._llfu_free[i] = cycle + occupy
                return i
        return None

    # ------------------------------------------------------------------
    # schedule memoization (see repro.uarch.schedmemo)
    # ------------------------------------------------------------------

    def _memo_anchor(self, memo, cycle):
        """Epoch boundary: close any active recording, replay every
        stored segment whose signature matches, then open a new
        recording if the loop is still worth learning.  Returns
        ``(cycle, mid_cycle)``; *mid_cycle* means a replay diverged and
        the abort path already completed the returned cycle."""
        if self._rec is not None:
            sig = memo.finalize(self, cycle)
        else:
            sig = memo.signature(self, cycle)
        remaining = self.bound - self.start_idx - self._next_k
        while True:
            seg = memo.table.get(sig)
            if seg is None or seg.n_begins > remaining:
                break
            took = 1
            hit = memo.compiled(self, sig, seg)
            if hit is not None:
                # compiled batch replay (turbo backend): the memo may
                # substitute a composite segment covering a whole
                # phase cycle; one that re-keys its own start replays
                # every remaining whole period in a single call
                fn, seg = hit
                if seg.end_sig == sig and seg.n_begins:
                    took = remaining // seg.n_begins
                done, cycle = fn(cycle, took)
            else:
                done, cycle = self._replay_segment(seg, cycle)
            if not done:
                memo.aborts += 1
                if (memo.aborts >= memo.dead_aborts
                        and memo.hits < memo.aborts >> 2):
                    # replays keep diverging: live outcomes for this
                    # loop are too unstable for memoization to pay
                    memo.dead = True
                return cycle, True
            memo.hits += took
            remaining -= seg.n_begins * took
            sig = seg.end_sig
            if not remaining:
                break
        if remaining > 0 and not memo.dead:
            self._rec = []
            self._rec_sig = sig
            self._rec_cycle0 = cycle
            self._rec_k0 = self._next_k
        return cycle, False

    def _replay_segment(self, seg, cycle0):
        """Apply one recorded segment with live outcomes; validation
        aborts to the slow path on any divergence (see the correctness
        model in :mod:`repro.uarch.schedmemo`).  Every recorded action
        is also pre-checked against the live context, so even a
        signature collision degrades to slow execution rather than a
        wrong schedule.  Returns ``(completed, cycle)``."""
        contexts = self.contexts
        meta = self._meta
        stats = self.stats
        counts = self._exec_counts
        mem = self.mem
        cache = self.cache
        hit_lat = cache.config.hit_latency
        ev = self.events
        cfg = self.cfg
        pen = cfg.branch_penalty
        base = self._body_base
        body_n = self._body_n
        abort = self._replay_abort
        for dc, ops in seg.cycles:
            c = cycle0 + dc
            self._mem_grants = 0
            retired = None
            for e in ops:
                tag = e[0]
                ctx = contexts[e[2]]
                if tag == "A":
                    slots = e[3]
                    if (not ctx.active or ctx.ready_at > c
                            or ctx.pc_index != slots[0]):
                        return False, abort(c, retired)
                    takens = e[4]
                    regs = ctx.regs
                    ready = ctx.ready
                    cc = c
                    diverged = False
                    for j, si in enumerate(slots):
                        mt = meta[si]
                        next_pc, _a, taken = mt[0](regs, mem)
                        counts[si] += 1
                        if mt[6]:
                            ctx.exit_flag = True
                        d2 = mt[2]
                        if d2 is not None:
                            ready[d2] = cc + 1
                        cc += 1
                        tk = takens[j]
                        if tk is not None and taken is not tk:
                            diverged = True
                            break
                        if tk:
                            cc += pen
                    if not diverged:
                        n = len(slots)
                        ctx.attempt_instrs += n
                        stats.busy += n
                        ctx.pc_index = e[5]
                        ctx.ready_at = c + e[6]
                        stats.stall_branch += e[7]
                        continue
                    # the diverging op itself ran exactly as the slow
                    # path would have -- finish its bookkeeping, then
                    # hand the rest of this cycle to the slow stepper
                    n = j + 1
                    ctx.attempt_instrs += n
                    stats.busy += n
                    br = 0
                    for x in range(j):
                        if takens[x]:
                            br += pen
                    if taken:
                        br += pen
                        cc += pen
                    ctx.pc_index = (next_pc - base) >> 2
                    ctx.ready_at = cc
                    stats.stall_branch += br
                    return False, abort(c, retired)
                elif tag == "M":
                    si = e[3]
                    if (not ctx.active or ctx.ready_at > c
                            or ctx.pc_index != si
                            or self._mem_grants >= cfg.mem_ports):
                        return False, abort(c, retired)
                    mt = meta[si]
                    instr = mt[12]
                    self._mem_grants += 1
                    _np, addr, _t = mt[0](ctx.regs, mem)
                    access = cache.access(addr,
                                          is_store=instr.op.is_store)
                    if ev is not None:
                        ev.dc_access += 1
                        if access > hit_lat:
                            ev.dc_miss += 1
                    if instr.rd and instr.op.is_load:
                        ctx.ready[instr.rd] = c + access
                    counts[si] += 1
                    ctx.attempt_instrs += 1
                    ctx.pc_index = si + 1
                    ctx.ready_at = c + 1
                    stats.busy += 1
                    if (access > hit_lat) is not e[4]:
                        return False, abort(c, retired)
                elif tag == "B":
                    if ctx.active or not self._more_iterations():
                        return False, abort(c, retired)
                    self._begin_iteration(ctx, c)
                elif tag == "R":
                    if (not ctx.active or ctx.ready_at > c
                            or ctx.pc_index < body_n):
                        return False, abort(c, retired)
                    self._retire_iteration(ctx, c)
                    if retired is None:
                        retired = {e[2]}
                    else:
                        retired.add(e[2])
                elif tag == "r":
                    if not ctx.active or ctx.ready_at > c:
                        return False, abort(c, retired)
                    mt = meta[ctx.pc_index]
                    ready = ctx.ready
                    avail = c
                    for s in mt[1]:
                        t = ready[s]
                        if t > avail:
                            avail = t
                    if avail <= c:
                        return False, abort(c, retired)
                    self._stall(ctx, c, avail, "raw")
                elif tag == "F":
                    si = e[3]
                    if (not ctx.active or ctx.ready_at > c
                            or ctx.pc_index != si):
                        return False, abort(c, retired)
                    mt = meta[si]
                    if self._llfu_acquire(c, mt[5]) is None:
                        return False, abort(c, retired)
                    _np, _a, _t = mt[0](ctx.regs, mem)
                    counts[si] += 1
                    d2 = mt[2]
                    if d2 is not None:
                        ctx.ready[d2] = c + mt[4]
                    ctx.attempt_instrs += 1
                    ctx.pc_index = si + 1
                    ctx.ready_at = c + 1
                    stats.busy += 1
                elif tag == "p":
                    if (not ctx.active or ctx.ready_at > c
                            or self._mem_grants < cfg.mem_ports):
                        return False, abort(c, retired)
                    self._stall_one(ctx, c, "memport")
                else:  # "l"
                    if not ctx.active or ctx.ready_at > c:
                        return False, abort(c, retired)
                    free = False
                    for f in self._llfu_free:
                        if f <= c:
                            free = True
                            break
                    if free:
                        return False, abort(c, retired)
                    self._stall_one(ctx, c, "llfu")
        return True, cycle0 + seg.n_cycles

    def _replay_abort(self, cycle, retired):
        """A replayed action diverged mid-cycle.  Everything applied so
        far this cycle matches the slow path exactly, so finish the
        cycle with the ordinary stepper: contexts that already acted
        no-op on ``ready_at``; contexts that retired this cycle are
        skipped (a fresh visit would begin their next iteration one
        cycle early)."""
        step = self._step
        for ctx in sorted(self.contexts, key=_ctx_order):
            if (retired is not None and ctx.lane_id in retired
                    and not ctx.active):
                continue
            step(ctx, cycle)
        self._order_dirty = True
        return cycle
