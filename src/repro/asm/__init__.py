"""Assembler toolchain: tokenizer, two-pass assembler, program model,
and disassembler for the XLOOPS ISA."""

from .lexer import tokenize, AsmSyntaxError, AsmLine
from .assembler import Assembler, assemble, split_li
from .program import Program, TEXT_BASE, DATA_BASE
from .disasm import format_instr, disassemble

__all__ = ["tokenize", "AsmSyntaxError", "AsmLine", "Assembler", "assemble",
           "split_li", "Program", "TEXT_BASE", "DATA_BASE", "format_instr",
           "disassemble"]
