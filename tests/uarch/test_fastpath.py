"""Fast-path equivalence tests: superblock fusion and iteration-
schedule memoization must be bit-identical to the step-at-a-time
simulators -- cycles, instruction counts, energy events, LPSU stats,
adaptive decisions, and the final memory image.

``repro verify --fast-slow`` runs the same differential harness over
every registered kernel and generated loops; these tests keep a
representative cross-section in the tier-1 suite.
"""

import pytest

from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.sim.functional import FunctionalCore, run_program
from repro.sim.fusion import block_runs, fused_blocks
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate
from repro.uarch.schedmemo import ScheduleMemo
from repro.uarch.system import SystemSimulator
from repro.verify import check_fast_slow

#: one kernel per dependence pattern, kept cheap via tiny workloads
_KERNELS = ("sgemm-uc", "adpcm-or", "dynprog-om", "btree-ua",
            "qsort-uc-db")

#: a small LPSU sweep that still exercises multi-lane, LSQ, and
#: forwarding variants of the lane scheduler
_SWEEP = (LPSUConfig(),
          LPSUConfig(lanes=2, lsq_loads=4, lsq_stores=4),
          LPSUConfig(inter_lane_forwarding=True))


def _program(name):
    spec = get_kernel(name)
    return spec, compile_source(spec.source).program


# ---------------------------------------------------------------------------
# fusion block layout
# ---------------------------------------------------------------------------

class TestBlockLayout:
    def test_runs_are_disjoint_and_straight_line(self):
        _spec, program = _program("sgemm-uc")
        runs = block_runs(program)
        seen = set()
        for idxs in runs:
            # contiguous, no instruction in two runs
            assert idxs == list(range(idxs[0], idxs[-1] + 1))
            assert not seen & set(idxs)
            seen |= set(idxs)
            # control flow only at the end of a run
            for i in idxs[:-1]:
                op = program.instrs[i].op
                assert not (op.is_branch or op.is_jump or op.is_xloop)
        assert seen  # a real kernel must produce at least one block

    def test_break_pcs_split_blocks(self):
        _spec, program = _program("sgemm-uc")
        whole = block_runs(program)
        # breaking at the second instruction of the first multi-instr
        # run must start a new block there
        first = next(r for r in whole if len(r) > 1)
        pc = program.instrs[first[1]].pc
        split = block_runs(program, frozenset((pc,)))
        starts = {program.instrs[r[0]].pc for r in split}
        assert pc in starts
        assert pc not in {program.instrs[r[0]].pc for r in whole}

    def test_fused_blocks_cached_per_key(self):
        _spec, program = _program("sgemm-uc")
        a = fused_blocks(program, "func")
        assert fused_blocks(program, "func") is a
        b = fused_blocks(program, "func",
                         break_pcs=(program.text_base + 4,))
        assert b is not a


# ---------------------------------------------------------------------------
# functional flavour
# ---------------------------------------------------------------------------

class TestFunctionalFusion:
    @pytest.mark.parametrize("name", _KERNELS)
    def test_fused_run_matches_single_step(self, name):
        spec, program = _program(name)
        wl = spec.workload("tiny", 0)
        mem_f, mem_s = Memory(), Memory()
        args_f, args_s = wl.apply(mem_f), wl.apply(mem_s)
        fast = run_program(program, spec.entry, args_f, mem_f,
                           fast=True)
        slow = run_program(program, spec.entry, args_s, mem_s,
                           fast=False)
        assert fast.icount == slow.icount
        assert fast.regs == slow.regs
        assert fast.return_value == slow.return_value
        assert mem_f.pages_equal(mem_s)

    def test_unknown_pc_falls_back_to_step(self):
        spec, program = _program("sgemm-uc")
        core = FunctionalCore(program)
        wl = spec.workload("tiny", 0)
        core.setup_call(spec.entry, wl.apply(core.mem))
        blocks = fused_blocks(program, "func")
        # drop the entry block: run() must single-step through it and
        # still finish with the right answer
        blocks.pop(core.pc, None)
        core.run(fast=True)
        wl.check(core.mem)


# ---------------------------------------------------------------------------
# whole-system fast-vs-slow bit identity
# ---------------------------------------------------------------------------

class TestSystemFastSlow:
    @pytest.mark.parametrize("name", _KERNELS)
    def test_bit_identical_across_modes_and_design_points(self, name):
        spec, program = _program(name)

        def make_args(mem):
            return spec.workload("tiny", 0).apply(mem)

        res = check_fast_slow(name, program, spec.entry, make_args,
                              sweep=_SWEEP)
        assert res.ok, res.detail
        # traditional + sweep points + one adaptive run were compared
        assert res.configs == len(_SWEEP) + 2

    @pytest.mark.parametrize("name", _KERNELS)
    def test_noengine_fast_path_stays_bit_identical(self, name,
                                                    monkeypatch):
        # the interpreted-stepper fast path (schedule memo + batch
        # loop) must honour the same contract when the compiled
        # fused-lane engine is disabled via its escape hatch
        spec, program = _program(name)
        results = []
        for no_engine in (True, False):
            if no_engine:
                monkeypatch.setenv("REPRO_NO_LPSU_ENGINE", "1")
            else:
                monkeypatch.delenv("REPRO_NO_LPSU_ENGINE",
                                   raising=False)
            mem = Memory()
            args = spec.workload("tiny", 0).apply(mem)
            r = simulate(program, SystemConfig("t", IO, LPSUConfig()),
                         entry=spec.entry, args=args, mem=mem,
                         mode="specialized", fast=True)
            results.append((r, mem))
        (ne_r, ne_mem), (en_r, en_mem) = results
        assert ne_r.cycles == en_r.cycles
        assert repr(ne_r.lpsu_stats) == repr(en_r.lpsu_stats)
        assert dict(vars(ne_r.events)) == dict(vars(en_r.events))
        assert ne_mem.pages_equal(en_mem)

    def test_verified_run_bypasses_fused_lanes(self):
        # verify=True attaches the invariant monitor, which must see
        # every interpreted step: the engine (and the fast path as a
        # whole) transparently disengages, while timing stays
        # bit-identical to an unmonitored run
        spec, program = _program("sgemm-uc")

        def run(**kw):
            mem = Memory()
            args = spec.workload("tiny", 0).apply(mem)
            r = simulate(program, SystemConfig("t", IO, LPSUConfig()),
                         entry=spec.entry, args=args, mem=mem,
                         mode="specialized", **kw)
            return r, mem
        ver_r, ver_mem = run(fast=True, verify=True)
        fast_r, fast_mem = run(fast=True)
        assert ver_r.cycles == fast_r.cycles
        assert repr(ver_r.lpsu_stats) == repr(fast_r.lpsu_stats)
        assert ver_mem.pages_equal(fast_mem)

    def test_engine_compiles_for_every_pattern(self):
        # the fused-lane engine must actually engage on all five
        # dependence patterns (a silent fallback to the interpreted
        # stepper would still be bit-identical, but not fast)
        for name in _KERNELS:
            spec, program = _program(name)
            mem = Memory()
            args = spec.workload("tiny", 0).apply(mem)
            sim = SystemSimulator(program,
                                  SystemConfig("t", IO, LPSUConfig()),
                                  mem=mem, fast=True)
            sim.run(entry=spec.entry, args=args, mode="specialized")
            engines = [v for k, v in
                       getattr(program, "_fused", {}).items()
                       if k[0] == "lpsu"]
            assert engines and all(e is not None for e in engines), \
                "no compiled engine for %s" % name

    def test_adaptive_decisions_identical(self):
        spec, program = _program("war-om")
        results = []
        for fast in (True, False):
            mem = Memory()
            args = spec.workload("tiny", 0).apply(mem)
            r = simulate(program, SystemConfig("t", IO, LPSUConfig()),
                         entry=spec.entry, args=args, mem=mem,
                         mode="adaptive", fast=fast)
            results.append(r)
        fast_r, slow_r = results
        assert dict(fast_r.adaptive_decisions)
        assert dict(fast_r.adaptive_decisions) \
            == dict(slow_r.adaptive_decisions)
        assert fast_r.cycles == slow_r.cycles
        assert repr(fast_r.lpsu_stats) == repr(slow_r.lpsu_stats)


# ---------------------------------------------------------------------------
# schedule memoization
# ---------------------------------------------------------------------------

class TestScheduleMemo:
    def _run(self, name, fast, monkeypatch=None):
        if monkeypatch is not None:
            # schedule memoization only engages when the fused-lane
            # engine is unavailable; force the interpreted stepper so
            # the memo layer is actually exercised
            monkeypatch.setenv("REPRO_NO_LPSU_ENGINE", "1")
        spec, program = _program(name)
        mem = Memory()
        args = spec.workload("tiny", 0).apply(mem)
        sim = SystemSimulator(program, SystemConfig("t", IO,
                                                    LPSUConfig()),
                              mem=mem, fast=fast)
        r = sim.run(entry=spec.entry, args=args, mode="specialized")
        return sim, r, mem

    def test_memo_replays_and_stays_bit_identical(self, monkeypatch):
        # Floyd-Warshall re-invokes the same static xloop with a
        # recurring schedule: the memo must actually get hits, and the
        # run must still match the slow path exactly.
        sim, fast_r, fast_mem = self._run("war-uc", True, monkeypatch)
        _, slow_r, slow_mem = self._run("war-uc", False)
        assert fast_r.cycles == slow_r.cycles
        assert repr(fast_r.lpsu_stats) == repr(slow_r.lpsu_stats)
        assert fast_mem.pages_equal(slow_mem)
        assert sum(m.hits for m in sim._memos.values()) > 0

    def test_slow_path_builds_no_memos(self):
        sim, _r, _m = self._run("war-uc", False)
        assert not sim._memos

    def test_never_hitting_memo_goes_dead(self):
        # a loop whose anchor signatures never repeat must stop paying
        # the recording tax after _DEAD_MISSES stored segments
        from repro.uarch.schedmemo import _DEAD_MISSES

        class _StubLPSU:
            contexts = ()
            _llfu_free = ()

            def __init__(self, i):
                self._rec = [("F", 0, 0, 0)]
                self._rec_sig = ("sig", i)   # unique per segment
                self._rec_cycle0 = 0
                self._rec_k0 = 0
                self._next_k = 2
                self.bound = 10
                self.start_idx = 0

        memo = ScheduleMemo()
        for i in range(_DEAD_MISSES):
            assert not memo.dead
            memo.finalize(_StubLPSU(i), cycle=5)
        assert memo.dead
        assert memo.hits == 0
        assert memo.misses == _DEAD_MISSES
