"""The paper's application kernels (Table II + Table IV case studies):
annotated MiniC sources, deterministic synthetic datasets, and
pure-Python golden verifiers."""

from .base import KernelSpec, Workload, region
from .registry import (ALL_KERNELS, KERNELS, TABLE2_KERNELS,
                       TABLE4_KERNELS, get_kernel)
from .sources_ext import EXTENSION_KERNELS
from .sources_turbo import TURBO_KERNELS

__all__ = ["KernelSpec", "Workload", "region", "ALL_KERNELS", "KERNELS",
           "TABLE2_KERNELS", "TABLE4_KERNELS", "EXTENSION_KERNELS",
           "TURBO_KERNELS", "get_kernel"]
