"""XLOOPS instruction-set architecture: registers, instructions,
binary encoding, and the inter-iteration dependence-pattern taxonomy."""

from .registers import (NUM_REGS, REG_NAMES, ABI_NAMES, reg_num, reg_name,
                        is_reg, RegisterError)
from .instructions import OPS, OpSpec, Instr, FU, Fmt, spec, ALL_MNEMONICS
from .xloops import (DataPattern, ControlPattern, XLoopKind, refines,
                     ALL_XLOOP_KINDS, PATTERN_DESCRIPTIONS)
from .encoding import encode, decode, EncodingError

__all__ = [
    "NUM_REGS", "REG_NAMES", "ABI_NAMES", "reg_num", "reg_name", "is_reg",
    "RegisterError", "OPS", "OpSpec", "Instr", "FU", "Fmt", "spec",
    "ALL_MNEMONICS", "DataPattern", "ControlPattern", "XLoopKind",
    "refines", "ALL_XLOOP_KINDS", "PATTERN_DESCRIPTIONS", "encode",
    "decode", "EncodingError",
]
