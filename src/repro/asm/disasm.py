"""Disassembly / pretty-printing of XLOOPS instructions."""

from __future__ import annotations

from ..isa.instructions import Fmt
from ..isa.registers import reg_name


def format_instr(instr, abi=True):
    """Render one instruction in assembly syntax."""
    r = lambda n: reg_name(n, abi=abi)
    op = instr.op
    m = op.mnemonic
    fmt = op.fmt
    if fmt in (Fmt.R, Fmt.XI_R):
        return "%s %s, %s, %s" % (m, r(instr.rd), r(instr.rs1), r(instr.rs2))
    if fmt == Fmt.R2:
        return "%s %s, %s" % (m, r(instr.rd), r(instr.rs1))
    if fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I, Fmt.JALR):
        return "%s %s, %s, %d" % (m, r(instr.rd), r(instr.rs1), instr.imm)
    if fmt == Fmt.LOAD:
        return "%s %s, %d(%s)" % (m, r(instr.rd), instr.imm, r(instr.rs1))
    if fmt == Fmt.STORE:
        return "%s %s, %d(%s)" % (m, r(instr.rs2), instr.imm, r(instr.rs1))
    if fmt == Fmt.AMO:
        return "%s %s, %s, (%s)" % (m, r(instr.rd), r(instr.rs2),
                                    r(instr.rs1))
    if fmt in (Fmt.BRANCH, Fmt.XLOOP):
        target = instr.label or ("0x%x" % instr.branch_target())
        return "%s %s, %s, %s" % (m, r(instr.rs1), r(instr.rs2), target)
    if fmt == Fmt.JAL:
        target = instr.label or ("0x%x" % instr.branch_target())
        if op.is_xbreak:
            return "%s %s" % (m, target)
        return "%s %s, %s" % (m, r(instr.rd), target)
    if fmt == Fmt.LUI:
        return "%s %s, %d" % (m, r(instr.rd), instr.imm)
    return m


def disassemble(program):
    """Full-listing convenience wrapper (see Program.listing)."""
    return program.listing()
