"""Event-based energy modeling (McPAT-style, Section IV-A) plus the
VLSI-calibrated table used for Fig 10."""

from .events import EnergyEvents
from .mcpat import (EnergyTable, MCPAT_45NM, VLSI_40NM, energy_nj,
                    energy_breakdown, system_energy)

__all__ = ["EnergyEvents", "EnergyTable", "MCPAT_45NM", "VLSI_40NM",
           "energy_nj", "energy_breakdown", "system_energy"]
