"""Resilience tooling: fault injection and execution watchdogs.

Two halves, mirroring how real architecture groups qualify a design:

* :mod:`repro.resilience.faults` / :mod:`repro.resilience.campaign` --
  a deterministic, seeded fault-injection campaign that corrupts
  architectural state (registers, CIB channels, LSQ entries, MIVT
  rows, memory pages) mid-run through the LPSU's observer hooks and
  classifies each outcome against the :mod:`repro.verify` runtime
  invariant monitor.

* :mod:`repro.resilience.watchdog` -- wall-clock deadlines for the
  hardened evaluation runtime (:mod:`repro.eval.hardening`), and
  :mod:`repro.resilience.backoff` -- the bounded exponential retry
  schedule the distributed serve tier reconnects with.
"""

from .backoff import Backoff, BackoffExhausted
from .watchdog import DeadlineExceeded, deadline
from .faults import (FAULT_TARGETS, FaultInjector, FaultSpec,
                     InjectionRecord)
from .campaign import (CampaignConfig, CampaignError, CampaignReport,
                       InjectionOutcome, KernelProfile, OUTCOMES,
                       profile_kernel, run_campaign)

__all__ = [
    "Backoff", "BackoffExhausted",
    "DeadlineExceeded", "deadline",
    "FAULT_TARGETS", "FaultInjector", "FaultSpec", "InjectionRecord",
    "CampaignConfig", "CampaignError", "CampaignReport",
    "InjectionOutcome", "KernelProfile", "OUTCOMES",
    "profile_kernel", "run_campaign",
]
