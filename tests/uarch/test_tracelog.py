"""Lane-trace tests: the diagram must reflect what the LPSU did."""

import pytest

from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch.params import LPSUConfig
from repro.uarch.tracelog import LEGEND, LaneTrace, trace_specialized

A, B = 0x100000, 0x200000


def _trace(src, entry, args, lpsu=None, n_init=None):
    cp = compile_source(src)
    mem = Memory()
    if n_init:
        mem.write_words(A, n_init)
    return trace_specialized(cp.program, entry, args, mem,
                             lpsu_config=lpsu)


class TestLaneTrace:
    def test_mark_and_render(self):
        t = LaneTrace()

        class Ctx:
            pass

        c0, c1 = Ctx(), Ctx()
        t.mark(c0, 0, "E")
        t.mark(c0, 1, "r", span=3)
        t.mark(c1, 2, "M")
        out = t.render()
        assert "lane0  Errr" in out
        assert "lane1  ..M" in out
        assert "RAW" in out   # legend present

    def test_idle_never_overwrites(self):
        t = LaneTrace()

        class Ctx:
            pass

        c = Ctx()
        t.mark(c, 0, "E")
        t.mark(c, 0, ".")
        assert "E" in t.render()

    def test_max_cycles_cap(self):
        t = LaneTrace(max_cycles=4)

        class Ctx:
            pass

        t.mark(Ctx(), 100, "E")
        assert t.cycles_seen <= 4

    def test_empty_render(self):
        assert "no trace" in LaneTrace().render()

    def test_legend_covers_all_codes(self):
        for code in "EMrcmlqwDX|.":
            assert code in LEGEND


class TestTraceSpecialized:
    UC = """
void k(int* a, int* b, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { b[i] = a[i] * 2; }
}
"""
    OR = """
void k(int* a, int* b, int n) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { acc = acc + a[i]; b[i] = acc; }
}
"""

    def test_uc_trace_is_mostly_execution(self):
        trace, result = _trace(self.UC, "k", [A, B, 32],
                               n_init=range(32))
        out = trace.render()
        assert out.count("E") > out.count("c")
        assert result.iterations == 31

    def test_or_trace_shows_cib_serialization(self):
        trace, _ = _trace(self.OR, "k", [A, B, 32], n_init=range(32))
        out = trace.render(width=200)
        assert "c" in out   # CIB waits visible

    def test_iteration_boundaries_marked(self):
        trace, _ = _trace(self.UC, "k", [A, B, 32], n_init=range(32))
        assert "|" in trace.render(width=400)

    def test_no_xloop_raises(self):
        src = "void k() { }"
        cp = compile_source(src)
        with pytest.raises(ValueError):
            trace_specialized(cp.program, "k", [], Memory())

    def test_respects_lpsu_config(self):
        trace, _ = _trace(self.UC, "k", [A, B, 32],
                          lpsu=LPSUConfig(lanes=2), n_init=range(32))
        rows = [l for l in trace.render().splitlines()
                if l.startswith("lane")]
        assert len(rows) == 2


class TestMultiLaneSquash:
    """Squash storms must be visible in the diagram: an om recurrence
    with distance 1 forces speculative lanes to mis-speculate, squash
    ('X'), and replay until they reach the head of the commit order."""

    OM = """
void k(int* a, int n) {
    #pragma xloops ordered
    for (int i = 1; i < n; i++) { a[i] = a[i-1] + a[i]; }
}
"""
    # two stores per iteration: speculative lanes buffer them in the
    # LSQ, so the in-order drain ('D') shows up alongside the squashes
    OM2 = """
void k(int* a, int* b, int n) {
    #pragma xloops ordered
    for (int i = 1; i < n; i++) { a[i] = a[i-1] + a[i]; b[i] = a[i]; }
}
"""

    def _squash_trace(self, src, lanes=4):
        return _trace(src, "k", [A, B, 32] if "b" in src.split(")")[0]
                      else [A, 32],
                      lpsu=LPSUConfig(lanes=lanes), n_init=[1] * 32)

    def test_squashes_marked_across_lanes(self):
        trace, result = self._squash_trace(self.OM)
        assert result.stats.squashes > 0 and result.iterations > 0
        out = trace.render(width=600)
        rows = [line for line in out.splitlines()
                if line.startswith("lane")]
        assert len(rows) == 4
        assert "X" in out
        # the stats and the diagram tell the same story
        assert sum(r.count("X") for r in rows) <= result.stats.squashes

    def test_replay_follows_squash(self):
        trace, _ = self._squash_trace(self.OM)
        for line in trace.render(width=600).splitlines():
            if not line.startswith("lane"):
                continue
            cells = line.split()[1]
            x = cells.find("X")
            if x >= 0:
                # work resumes on the same context after its squash
                assert any(ch in "EMD" for ch in cells[x + 1:]), cells
                break
        else:
            pytest.fail("no squash recorded in any lane row")

    def test_drains_visible_under_commit_order(self):
        trace, result = self._squash_trace(self.OM2)
        out = trace.render(width=600)
        assert "D" in out            # buffered stores drained in order
        assert result.stats.squashes > 0
