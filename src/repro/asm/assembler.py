"""Two-pass assembler for the XLOOPS ISA.

Pass 1 expands pseudo-instructions, lays out the text and data
sections, and binds labels.  Pass 2 resolves symbolic operands and
produces :class:`~repro.isa.instructions.Instr` objects with PC-relative
branch offsets already computed.

Supported pseudo-instructions: ``nop mv li la neg not seqz snez beqz
bnez blez bgez bltz bgtz bgt ble bgtu bleu j jr ret call``.

Supported directives: ``.text .data .globl .word .half .byte .float
.space .zero .align .ascii .asciiz``.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..isa.instructions import OPS, Fmt, Instr
from ..isa.registers import reg_num, is_reg
from .lexer import AsmSyntaxError, tokenize
from .program import Program, TEXT_BASE, DATA_BASE

IMM12_MIN, IMM12_MAX = -(1 << 11), (1 << 11) - 1
LI_MIN, LI_MAX = -(1 << 28), (1 << 28) - 1


def _parse_int(text, lineno):
    text = text.strip()
    try:
        if text.lower().startswith("0x") or text.lower().startswith("-0x"):
            return int(text, 16)
        if len(text) == 3 and text[0] == text[2] == "'":
            return ord(text[1])
        return int(text, 10)
    except ValueError:
        raise AsmSyntaxError("bad integer literal %r" % text, lineno)


def split_li(imm):
    """Split *imm* into (hi17, lo12) for a ``lui``/``addi`` pair.

    ``lui`` computes ``rd = sext(hi17) << 12``; ``addi`` adds the signed
    low part.  Valid for constants in [-2**28, 2**28).
    """
    if not LI_MIN <= imm <= LI_MAX:
        raise ValueError("li constant %d out of range" % imm)
    lo = ((imm & 0xFFF) ^ 0x800) - 0x800          # sign-extend low 12
    hi = (imm - lo) >> 12
    return hi, lo


class _Proto:
    """A pre-layout instruction: mnemonic plus raw operand strings."""

    __slots__ = ("mnemonic", "operands", "lineno", "pc")

    def __init__(self, mnemonic, operands, lineno):
        self.mnemonic = mnemonic
        self.operands = operands
        self.lineno = lineno
        self.pc = 0


class Assembler:
    """Assemble XLOOPS assembly source into a :class:`Program`."""

    def __init__(self, text_base=TEXT_BASE, data_base=DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # -- public API ------------------------------------------------------

    def assemble(self, source):
        protos, data, symbols = self._pass1(tokenize(source))
        instrs = [self._resolve(p, symbols) for p in protos]
        return Program(instrs=instrs, data=data, symbols=symbols,
                       text_base=self.text_base, data_base=self.data_base,
                       source=source)

    # -- pass 1: layout ----------------------------------------------------

    def _pass1(self, lines):
        protos: List[_Proto] = []
        data = bytearray()
        symbols = {}
        section = "text"

        def bind(label, lineno):
            if label in symbols:
                raise AsmSyntaxError("duplicate label %r" % label, lineno)
            if section == "text":
                symbols[label] = self.text_base + 4 * len(protos)
            else:
                symbols[label] = self.data_base + len(data)

        for line in lines:
            for label in line.labels:
                bind(label, line.lineno)
            if line.directive:
                section = self._directive(line, data, section)
            elif line.mnemonic:
                if section != "text":
                    raise AsmSyntaxError("instruction outside .text",
                                         line.lineno)
                for proto in self._expand(line):
                    proto.pc = self.text_base + 4 * len(protos)
                    protos.append(proto)
        return protos, data, symbols

    def _directive(self, line, data, section):
        d, args, lineno = line.directive, line.operands, line.lineno
        if d == ".text":
            return "text"
        if d == ".data":
            return "data"
        if d == ".globl":
            return section
        if section != "data" and d not in (".align",):
            raise AsmSyntaxError("%s outside .data" % d, lineno)
        if d == ".word":
            for a in args:
                data += struct.pack("<I", _parse_int(a, lineno) & 0xFFFFFFFF)
        elif d == ".half":
            for a in args:
                data += struct.pack("<h", _parse_int(a, lineno))
        elif d == ".byte":
            for a in args:
                data += struct.pack("<b", _parse_int(a, lineno))
        elif d == ".float":
            for a in args:
                data += struct.pack("<f", float(a))
        elif d in (".space", ".zero"):
            data += bytes(_parse_int(args[0], lineno))
        elif d == ".align":
            align = 1 << _parse_int(args[0], lineno)
            while len(data) % align:
                data.append(0)
        elif d in (".ascii", ".asciiz"):
            text = ",".join(args).strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AsmSyntaxError("bad string literal", lineno)
            payload = text[1:-1].encode().decode("unicode_escape").encode()
            data += payload
            if d == ".asciiz":
                data.append(0)
        else:
            raise AsmSyntaxError("unknown directive %r" % d, lineno)
        return section

    # -- pseudo-instruction expansion --------------------------------------

    def _expand(self, line):
        m, ops, ln = line.mnemonic, line.operands, line.lineno
        P = lambda mnemonic, *operands: _Proto(mnemonic, list(operands), ln)
        if m in OPS:
            return [_Proto(m, ops, ln)]
        if m == "nop":
            return [P("addi", "x0", "x0", "0")]
        if m == "mv":
            return [P("addi", ops[0], ops[1], "0")]
        if m == "li":
            imm = _parse_int(ops[1], ln)
            if IMM12_MIN <= imm <= IMM12_MAX:
                return [P("addi", ops[0], "x0", str(imm))]
            try:
                hi, lo = split_li(imm)
            except ValueError as exc:
                raise AsmSyntaxError(str(exc), ln)
            out = [P("lui", ops[0], str(hi))]
            if lo:
                out.append(P("addi", ops[0], ops[0], str(lo)))
            return out
        if m == "la":
            # always two words so that layout is symbol-independent
            return [P("lui", ops[0], "%hi(" + ops[1] + ")"),
                    P("addi", ops[0], ops[0], "%lo(" + ops[1] + ")")]
        if m == "neg":
            return [P("sub", ops[0], "x0", ops[1])]
        if m == "not":
            return [P("xori", ops[0], ops[1], "-1")]
        if m == "seqz":
            return [P("sltiu", ops[0], ops[1], "1")]
        if m == "snez":
            return [P("sltu", ops[0], "x0", ops[1])]
        if m == "beqz":
            return [P("beq", ops[0], "x0", ops[1])]
        if m == "bnez":
            return [P("bne", ops[0], "x0", ops[1])]
        if m == "blez":
            return [P("bge", "x0", ops[0], ops[1])]
        if m == "bgez":
            return [P("bge", ops[0], "x0", ops[1])]
        if m == "bltz":
            return [P("blt", ops[0], "x0", ops[1])]
        if m == "bgtz":
            return [P("blt", "x0", ops[0], ops[1])]
        if m == "bgt":
            return [P("blt", ops[1], ops[0], ops[2])]
        if m == "ble":
            return [P("bge", ops[1], ops[0], ops[2])]
        if m == "bgtu":
            return [P("bltu", ops[1], ops[0], ops[2])]
        if m == "bleu":
            return [P("bgeu", ops[1], ops[0], ops[2])]
        if m == "j":
            return [P("jal", "x0", ops[0])]
        if m == "jr":
            return [P("jalr", "x0", ops[0], "0")]
        if m == "ret":
            return [P("jalr", "x0", "ra", "0")]
        if m == "call":
            return [P("jal", "ra", ops[0])]
        raise AsmSyntaxError("unknown mnemonic %r" % m, ln)

    # -- pass 2: operand resolution ------------------------------------------

    def _imm(self, text, symbols, lineno):
        text = text.strip()
        if text.startswith("%hi(") and text.endswith(")"):
            addr = self._symval(text[4:-1], symbols, lineno)
            return split_li(addr)[0]
        if text.startswith("%lo(") and text.endswith(")"):
            addr = self._symval(text[4:-1], symbols, lineno)
            return split_li(addr)[1]
        if text in symbols:
            return symbols[text]
        return _parse_int(text, lineno)

    def _symval(self, name, symbols, lineno):
        name = name.strip()
        if name not in symbols:
            raise AsmSyntaxError("undefined symbol %r" % name, lineno)
        return symbols[name]

    def _target(self, text, symbols, proto):
        """Branch-target operand -> byte offset relative to the branch."""
        text = text.strip()
        if text in symbols:
            return symbols[text] - proto.pc
        return _parse_int(text, proto.lineno)

    def _reg(self, text, lineno):
        try:
            return reg_num(text)
        except Exception:
            raise AsmSyntaxError("expected register, got %r" % text, lineno)

    def _memop(self, text, lineno):
        """Parse ``imm(rs1)`` -> (imm, rs1)."""
        text = text.strip()
        if not text.endswith(")") or "(" not in text:
            raise AsmSyntaxError("expected imm(reg), got %r" % text, lineno)
        off, base = text[:-1].split("(", 1)
        imm = _parse_int(off, lineno) if off.strip() else 0
        return imm, self._reg(base, lineno)

    def _resolve(self, proto, symbols):
        op = OPS[proto.mnemonic]
        ops, ln = proto.operands, proto.lineno
        instr = Instr(op, pc=proto.pc, srcline=ln)
        fmt = op.fmt

        def need(n):
            if len(ops) != n:
                raise AsmSyntaxError(
                    "%s expects %d operands, got %d"
                    % (proto.mnemonic, n, len(ops)), ln)

        if fmt in (Fmt.R, Fmt.XI_R):
            need(3)
            instr.rd = self._reg(ops[0], ln)
            instr.rs1 = self._reg(ops[1], ln)
            instr.rs2 = self._reg(ops[2], ln)
        elif fmt == Fmt.R2:
            need(2)
            instr.rd = self._reg(ops[0], ln)
            instr.rs1 = self._reg(ops[1], ln)
        elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I):
            need(3)
            instr.rd = self._reg(ops[0], ln)
            instr.rs1 = self._reg(ops[1], ln)
            instr.imm = self._imm(ops[2], symbols, ln)
        elif fmt == Fmt.LOAD:
            need(2)
            instr.rd = self._reg(ops[0], ln)
            instr.imm, instr.rs1 = self._memop(ops[1], ln)
        elif fmt == Fmt.STORE:
            need(2)
            instr.rs2 = self._reg(ops[0], ln)
            instr.imm, instr.rs1 = self._memop(ops[1], ln)
        elif fmt == Fmt.AMO:
            need(3)
            instr.rd = self._reg(ops[0], ln)
            instr.rs2 = self._reg(ops[1], ln)
            base = ops[2].strip()
            if base.startswith("(") and base.endswith(")"):
                base = base[1:-1]
            instr.rs1 = self._reg(base, ln)
        elif fmt in (Fmt.BRANCH, Fmt.XLOOP):
            need(3)
            instr.rs1 = self._reg(ops[0], ln)
            instr.rs2 = self._reg(ops[1], ln)
            instr.imm = self._target(ops[2], symbols, proto)
            instr.label = ops[2].strip() if ops[2].strip() in symbols else None
            if op.is_xloop and instr.imm >= 0:
                raise AsmSyntaxError(
                    "xloop body label must precede the xloop instruction", ln)
        elif fmt == Fmt.JAL:
            if op.is_xbreak:
                need(1)
                instr.rd = 0
                instr.imm = self._target(ops[0], symbols, proto)
                instr.label = (ops[0].strip()
                               if ops[0].strip() in symbols else None)
                if instr.imm <= 0:
                    raise AsmSyntaxError(
                        "xloop.break must jump forward past its xloop",
                        ln)
            else:
                need(2)
                instr.rd = self._reg(ops[0], ln)
                instr.imm = self._target(ops[1], symbols, proto)
                instr.label = (ops[1].strip()
                               if ops[1].strip() in symbols else None)
        elif fmt == Fmt.JALR:
            need(3)
            instr.rd = self._reg(ops[0], ln)
            instr.rs1 = self._reg(ops[1], ln)
            instr.imm = self._imm(ops[2], symbols, ln)
        elif fmt == Fmt.LUI:
            need(2)
            instr.rd = self._reg(ops[0], ln)
            instr.imm = self._imm(ops[1], symbols, ln)
        elif fmt == Fmt.NONE:
            need(0)
        else:  # pragma: no cover
            raise AsmSyntaxError("bad format %r" % fmt, ln)
        return instr


def assemble(source, text_base=TEXT_BASE, data_base=DATA_BASE):
    """Convenience wrapper: assemble *source* into a :class:`Program`."""
    return Assembler(text_base, data_base).assemble(source)
