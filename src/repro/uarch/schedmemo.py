"""Iteration-schedule memoization for the LPSU (the fast path's
second level, above basic-block fusion).

XLOOPS loops are highly regular: once an ``xloop.uc`` reaches steady
state, each group of ``lanes`` iterations (an *epoch*) repeats the same
schedule — same per-lane instruction interleaving, same RAW/structural
stalls, same retire pattern — shifted in time.  The LPSU records one
epoch's worth of scheduling *actions* (executed slots, taken-branch
path, memory accesses with their hit/miss outcomes, structural stalls,
iteration begin/retire events) keyed by a **relative signature** of the
machine state at the epoch boundary, and on a later signature match
replays the recorded actions instead of re-running the per-cycle
scan/sort/step machinery.

Correctness model — replay is *apply-with-live-outcomes*, not blind
fast-forward:

* Register values are deliberately absent from the signature: replay
  executes every recorded slot's real handler against live registers
  and memory, so architectural state is exact by construction.
* Data-dependent outcomes (branch direction, cache hit/miss) are
  produced live and *validated* against the recording.  On the first
  mismatch the diverging action has already been applied exactly as
  the slow path would have applied it, so the LPSU finishes that cycle
  with the ordinary per-context stepper and resumes slow execution —
  no state is ever rolled back, and no recorded state is ever trusted
  over live state.
* Eligibility is restricted to patterns whose scheduling cannot be
  affected by other lanes mid-flight: single-threaded ``xloop.uc``
  (optionally ``.db``-less), no CIB traffic, no LSQ/commit machinery,
  no inter-lane forwarding, no AMOs, no indirect jumps, and no
  tracing/monitoring/``max_iters`` (profiling needs exact per-cycle
  observation).  Everything else takes the slow path unchanged.

The cycle/energy/stat deltas therefore come out bit-identical to the
slow path; ``repro verify --fast-slow`` enforces this empirically over
the kernel suite and generated loops.
"""

from __future__ import annotations

#: "asleep" sentinel for ready_at — far beyond any reachable cycle
FAR_FUTURE = 1 << 60

#: give up recording for a loop whose signatures never repeat
_DEAD_MISSES = 16
#: give up when replays keep diverging instead of completing
_DEAD_ABORTS = 64
#: keep at most this many segments per static xloop
_MAX_SEGMENTS = 64
#: refuse to memoize long epochs — a short-body loop's epoch is a few
#: hundred actions; anything bigger never repays the recording tax
_MAX_ENTRIES = 4096


class Segment:
    """One recorded anchor-to-anchor schedule.

    ``cycles`` is a tuple of ``(cycle_delta, actions)`` groups;
    ``end_sig`` keys the state at the segment's end so consecutive
    steady-state segments chain without recomputing signatures.
    """

    __slots__ = ("cycles", "n_cycles", "n_begins", "end_sig")

    def __init__(self, cycles, n_cycles, n_begins, end_sig):
        self.cycles = cycles
        self.n_cycles = n_cycles
        self.n_begins = n_begins
        self.end_sig = end_sig


class ScheduleMemo:
    """Per-static-xloop memo table, shared across specialized
    invocations of the same loop by the owning SystemSimulator."""

    __slots__ = ("table", "hits", "misses", "aborts", "body_ok", "dead")

    # tuning knobs, read through the instance so subclasses (the turbo
    # backend's TurboMemo) can raise them without touching this module
    max_entries = _MAX_ENTRIES
    max_segments = _MAX_SEGMENTS
    dead_misses = _DEAD_MISSES
    dead_aborts = _DEAD_ABORTS

    def __init__(self):
        self.table = {}
        self.hits = 0        # segments replayed to completion
        self.misses = 0      # segments recorded (no hit at that anchor)
        self.aborts = 0      # replays abandoned on live divergence
        self.body_ok = None  # lazily-computed body eligibility
        # set when recording keeps paying and replay never fires (many
        # stored-but-never-matched segments, or one over-long epoch):
        # all future anchors of this static loop then skip memoization
        self.dead = False

    # -- signatures -----------------------------------------------------

    @staticmethod
    def signature(lpsu, cycle):
        """Schedule-relevant machine state, relative to *cycle* and to
        the next iteration index.

        Per context (in lane order): iteration offset ``k - next_k``
        (``None`` when inactive), body pc, wake-up offset, and the
        scoreboard's still-pending entries as ``(reg, offset)`` pairs
        (pending long-latency writebacks survive retirement and gate
        future RAW checks, so inactive contexts keep theirs too; the
        sparse form hashes cheaply because it is usually empty).
        Register *values* are intentionally excluded — see the module
        docstring.
        """
        parts = []
        nk = lpsu._next_k
        for ctx in lpsu.contexts:
            rdy = tuple((j, t - cycle)
                        for j, t in enumerate(ctx.ready) if t > cycle)
            if ctx.active:
                ra = ctx.ready_at - cycle
                parts.append((ctx.k - nk, ctx.pc_index,
                              ra if ra > 0 else 0, rdy))
            else:
                parts.append((None, 0, 0, rdy))
        parts.append(tuple((t - cycle) if t > cycle else 0
                           for t in lpsu._llfu_free))
        return tuple(parts)

    # -- recording ------------------------------------------------------

    def finalize(self, lpsu, cycle):
        """Close the LPSU's active recording; returns the end-state
        signature (which doubles as the next anchor's lookup key).

        A segment is only stored when at least one iteration remains
        at its end: remaining-work only decreases within a run, so
        this guarantees no iteration-begin was ever *denied* during
        the recorded span — replay (pre-checked against remaining
        work) can then trust every recorded begin.
        """
        entries = lpsu._rec
        lpsu._rec = None
        end_sig = self.signature(lpsu, cycle)
        start_sig = lpsu._rec_sig
        n_cycles = cycle - lpsu._rec_cycle0
        n_begins = lpsu._next_k - lpsu._rec_k0
        remaining = lpsu.bound - lpsu.start_idx - lpsu._next_k
        if (n_cycles > 0 and remaining >= 1
                and len(entries) <= self.max_entries
                and start_sig not in self.table):
            groups = []
            cur_c = None
            cur = None
            for e in entries:
                c = e[1]
                if c != cur_c:
                    cur = []
                    groups.append((c - lpsu._rec_cycle0, cur))
                    cur_c = c
                cur.append(e)
            if len(self.table) >= self.max_segments:
                self.table.clear()
            self.table[start_sig] = Segment(
                tuple((dc, tuple(ops)) for dc, ops in groups),
                n_cycles, n_begins, end_sig)
            self.misses += 1
            if self.misses >= self.dead_misses and self.hits == 0:
                self.dead = True
        return end_sig

    # -- replay hooks ---------------------------------------------------

    def compiled(self, lpsu, sig, seg):
        """Compiled batch replay for *seg*: returns ``(fn, segment)``
        — where *segment* may be a substitute covering several chained
        recordings (a phase-cycle composite) — or None to use the
        interpreted :meth:`~repro.uarch.lpsu.LPSU._replay_segment` on
        *seg* itself.  The base memo never compiles; the turbo
        backend's TurboMemo overrides this."""
        return None
