import pytest

from repro.isa import (ALL_XLOOP_KINDS, ControlPattern, DataPattern,
                       PATTERN_DESCRIPTIONS, XLoopKind, refines)


def test_mnemonic_roundtrip_all_kinds():
    for kind in ALL_XLOOP_KINDS:
        assert XLoopKind.from_mnemonic(kind.mnemonic) == kind


def test_fixed_bound_has_no_suffix():
    kind = XLoopKind(DataPattern.UC)
    assert kind.mnemonic == "xloop.uc"
    assert kind.control is ControlPattern.FIXED


def test_dynamic_bound_suffix():
    kind = XLoopKind(DataPattern.UC, ControlPattern.DYNAMIC_BOUND)
    assert kind.mnemonic == "xloop.uc.db"


def test_from_mnemonic_rejects_garbage():
    with pytest.raises(ValueError):
        XLoopKind.from_mnemonic("xloop")
    with pytest.raises(ValueError):
        XLoopKind.from_mnemonic("xloop.uc.xx")
    with pytest.raises(ValueError):
        XLoopKind.from_mnemonic("loop.uc")


def test_pattern_properties():
    assert DataPattern.OR.ordered_through_registers
    assert DataPattern.ORM.ordered_through_registers
    assert not DataPattern.UC.ordered_through_registers
    assert DataPattern.OM.ordered_through_memory
    assert DataPattern.UA.needs_memory_disambiguation
    assert DataPattern.UC.unordered and DataPattern.UA.unordered
    assert not DataPattern.OM.unordered


def test_refinement_lattice_paper_claims():
    # "any valid xloop.uc is also a valid xloop.or"
    assert refines(DataPattern.UC, DataPattern.OR)
    # "any valid xloop.ua is also a valid xloop.om"
    assert refines(DataPattern.UA, DataPattern.OM)
    # "any fixed-bound xloop is a valid xloop.orm"
    for pattern in DataPattern:
        assert refines(pattern, DataPattern.ORM)
    # reflexive
    for pattern in DataPattern:
        assert refines(pattern, pattern)
    # not symmetric
    assert not refines(DataPattern.OR, DataPattern.UC)
    assert not refines(DataPattern.OM, DataPattern.UA)


def test_every_kind_documented():
    for kind in ALL_XLOOP_KINDS:
        assert kind.mnemonic in PATTERN_DESCRIPTIONS
