"""The simulation backend ladder: ``interp`` -> ``fused`` -> ``turbo``
-> ``vector``.

Every tier simulates the same machine and must produce bit-identical
results (cycles, energy events, final memory); they differ only in how
much per-cycle interpretation they elide:

``interp``
    The reference path: per-instruction decoded handlers, per-cycle
    LPSU stepping.  Slowest, structurally closest to the paper's
    description; verification and fault injection always run here.
``fused``
    Superblock fusion (:mod:`repro.sim.fusion`): exec-compiled GPP
    basic blocks and the compiled fused-lane LPSU engine.  Same
    schedule, less dispatch.
``turbo``
    Everything in ``fused`` plus steady-state recurrence extraction
    (:mod:`repro.sim.turbo`): recorded iteration-schedule segments are
    exec-compiled into straight-line batch steppers and whole epochs
    are replayed per call, validated live against branch directions
    and cache hit/miss outcomes.
``vector``
    Everything in ``turbo`` plus whole-block iteration batching
    (:mod:`repro.sim.vector`): branchy/aperiodic ``xloop.uc`` bodies
    -- exactly the loops whose schedule memo goes dead -- are executed
    functionally as numpy array programs over blocks of iterations
    (active-mask wavefront, gather/scatter subscripts), then the exact
    cycle/energy schedule is reconstructed by an event-compressed
    replay of the per-instruction meta table.  Needs the optional
    ``repro[vector]`` extra (numpy).

``auto`` resolves to the highest applicable tier: ``vector`` when
numpy is importable, demoted to ``turbo`` by ``REPRO_NO_VECTOR`` (or a
missing numpy), then to ``fused`` by ``REPRO_NO_TURBO``.  An explicit
request is never demoted by the hatches -- they only govern what
``auto`` means -- but explicitly requesting ``vector`` without numpy
installed is an error.  ``repro verify --ladder`` enforces the
bit-identity contract pairwise across all tiers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: names accepted anywhere a backend is selected
BACKEND_CHOICES = ("auto", "interp", "fused", "turbo", "vector")


@dataclass(frozen=True)
class Backend:
    """One rung of the simulation-backend ladder."""

    name: str
    fast: bool    # fused superblocks + LPSU engine enabled
    turbo: bool   # steady-state segment compilation enabled
    vector: bool  # numpy whole-block iteration batching enabled
    description: str


BACKENDS = {
    "interp": Backend(
        "interp", False, False, False,
        "per-instruction reference interpreter"),
    "fused": Backend(
        "fused", True, False, False,
        "superblock fusion + compiled LPSU lane engine"),
    "turbo": Backend(
        "turbo", True, True, False,
        "fused + compiled steady-state schedule replay"),
    "vector": Backend(
        "vector", True, True, True,
        "turbo + numpy whole-block iteration batching"),
}


def _have_numpy():
    from .vector import HAS_NUMPY
    return HAS_NUMPY


def resolve_backend(name=None, fast=None):
    """Resolve a backend selection to a :class:`Backend`.

    *name* may be any of :data:`BACKEND_CHOICES` or None.  When None,
    the legacy ``fast`` boolean decides (``False`` -> interp,
    otherwise auto).  ``auto`` resolves to the highest tier whose
    prerequisites hold: ``vector`` (unless ``REPRO_NO_VECTOR`` is set
    or numpy is not importable), else ``turbo`` (unless
    ``REPRO_NO_TURBO`` demotes to ``fused``).  The ``REPRO_NO_FAST``
    hatch is honoured upstream by the callers that own a default,
    e.g. :func:`repro.eval.runner.default_backend`.
    """
    if name is None:
        name = "interp" if fast is False else "auto"
    if name == "auto":
        if os.environ.get("REPRO_NO_TURBO"):
            name = "fused"
        elif os.environ.get("REPRO_NO_VECTOR") or not _have_numpy():
            name = "turbo"
        else:
            name = "vector"
    elif name == "vector" and not _have_numpy():
        raise ValueError(
            "backend 'vector' requires numpy (install the repro[vector] "
            "extra); 'auto' falls back to turbo without it")
    b = BACKENDS.get(name)
    if b is None:
        raise ValueError("unknown backend %r (choose from %s)"
                         % (name, "/".join(BACKEND_CHOICES)))
    return b
