"""The committed BENCH_speed.json baseline must keep its schema: the
nightly CI smoke job and downstream dashboards parse it by key."""

import json
import os
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
_BASELINE = os.path.join(_ROOT, "BENCH_speed.json")

_POINT_KEYS = {"cold_fast_seconds", "cold_slow_seconds", "speedup"}


@pytest.fixture(scope="module")
def baseline():
    if not os.path.exists(_BASELINE):
        pytest.skip("no committed BENCH_speed.json (source tree only)")
    with open(_BASELINE) as f:
        return json.load(f)


def test_toplevel_schema(baseline):
    assert baseline["schema"] == 6
    for section in ("patterns", "long_kernels", "table2", "backends",
                    "branchy", "service", "distributed"):
        assert section in baseline


def test_pattern_points(baseline):
    patterns = baseline["patterns"]
    assert set(patterns) == {"uc", "or", "om", "ua", "db"}
    for entry in patterns.values():
        assert _POINT_KEYS | {"kernel", "warm_seconds"} <= set(entry)
        assert entry["cold_fast_seconds"] > 0
        assert entry["cold_slow_seconds"] > 0


def test_long_kernel_points(baseline):
    longs = baseline["long_kernels"]
    assert len(longs) >= 2
    for entry in longs.values():
        assert _POINT_KEYS <= set(entry)
    # the fast-path acceptance bar: >=3x cold on >=2 long kernels
    assert sum(1 for e in longs.values() if e["speedup"] >= 3.0) >= 2


def test_backend_ladder_points(baseline):
    backends = baseline["backends"]
    assert len(backends) >= 3
    keys = {"interp_seconds", "fused_seconds", "turbo_cold_seconds",
            "turbo_warm_seconds", "turbo_over_interp",
            "turbo_over_fused"}
    for entry in backends.values():
        assert keys <= set(entry)
        # the fused floor: turbo never loses to the tier below it
        assert entry["turbo_over_fused"] >= 1.0
    # the turbo acceptance bar: >=10x cold over interp on >=3 of the
    # long steady-state streaming kernels
    assert sum(1 for e in backends.values()
               if e["turbo_over_interp"] >= 10.0) >= 3


def test_branchy_vector_points(baseline):
    branchy = baseline["branchy"]
    assert len(branchy) >= 3
    keys = {"interp_seconds", "fused_seconds", "turbo_seconds",
            "vector_seconds", "vector_engaged", "vector_over_fused",
            "vector_over_turbo"}
    engaged = []
    for entry in branchy.values():
        assert keys <= set(entry)
        if entry["vector_engaged"]:
            # the fused floor: an engaged batcher never loses to the
            # tier it was built to beat
            assert entry["vector_over_fused"] >= 1.0
            engaged.append(entry)
    # the vector acceptance bar: >=2x cold over fused on >=2 branchy
    # kernels where turbo's schedule memo is dead
    assert sum(1 for e in engaged
               if e["vector_over_fused"] >= 2.0) >= 2


def test_table2_warm_is_cache_served(baseline):
    t2 = baseline["table2"]
    assert t2["warm_simulator_invocations"] == 0
    assert t2["warm_seconds"] < t2["cold_seconds"]


def test_service_section(baseline):
    svc = baseline["service"]
    keys = {"kernels", "points", "jobs", "cold_seconds",
            "cold_simulated", "warm_seconds", "warm_points_per_sec",
            "warm_served_fraction", "warm_simulator_invocations"}
    assert keys <= set(svc)
    # the serving contract: a warm resubmission through the server is
    # entirely cache-served and never touches the simulator
    assert svc["warm_served_fraction"] >= 0.95
    assert svc["warm_simulator_invocations"] == 0
    assert svc["cold_simulated"] > 0          # the cold pass did work
    assert svc["warm_points_per_sec"] > 0


def test_distributed_section(baseline):
    dist = baseline["distributed"]
    keys = {"kernels", "points", "host_cpus", "workers_1", "workers_4",
            "scaling_4_over_1", "warm_seconds", "warm_points_per_sec",
            "warm_served_fraction", "warm_simulator_invocations",
            "warm_enqueued"}
    assert keys <= set(dist)
    for pool in (dist["workers_1"], dist["workers_4"]):
        assert pool["cold_seconds"] > 0
        assert pool["cold_simulated"] > 0     # workers did the sims
    # the distributed warm contract: served at the front door, never
    # enqueued, never simulated
    assert dist["warm_served_fraction"] >= 0.95
    assert dist["warm_simulator_invocations"] == 0
    assert dist["warm_enqueued"] == 0
    # the scaling bar only binds where the host can actually run
    # workers in parallel (simulations are CPU-bound)
    if dist["host_cpus"] >= 2:
        assert dist["scaling_4_over_1"] >= 1.3


def test_check_mode_flags_regressions():
    sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))
    try:
        import bench_speed
    finally:
        sys.path.pop(0)
    base = {"patterns": {"uc": {"cold_fast_seconds": 1.0}},
            "long_kernels": {}, "table2": {"cold_seconds": 10.0}}
    ok = {"patterns": {"uc": {"kernel": "sgemm-uc",
                              "cold_fast_seconds": 1.2}},
          "long_kernels": {}, "table2": {"cold_seconds": 11.0}}
    bad = {"patterns": {"uc": {"kernel": "sgemm-uc",
                               "cold_fast_seconds": 1.3}},
           "long_kernels": {}, "table2": {"cold_seconds": 14.0}}
    assert bench_speed._check(ok, base) == []
    problems = bench_speed._check(bad, base)
    assert len(problems) == 2
    # points absent from the baseline never fail the gate
    extra = {"patterns": {"new": {"kernel": "x",
                                  "cold_fast_seconds": 99.0}},
             "long_kernels": {}, "table2": {"cold_seconds": 10.0}}
    assert bench_speed._check(extra, base) == []
    # the turbo fused-floor gate needs no baseline entry at all
    floor = {"patterns": {}, "long_kernels": {},
             "backends": {"vvadd-uc": {"scale": "large",
                                       "turbo_cold_seconds": 1.0,
                                       "turbo_over_fused": 0.8}},
             "table2": {"cold_seconds": 10.0}}
    problems = bench_speed._check(floor, base)
    assert len(problems) == 1 and "fused floor" in problems[0]
    # the service gates: served-fraction floor and zero-simulation
    # contract hold with no baseline entry; the rate gate needs one
    svc_ok = {"patterns": {}, "long_kernels": {},
              "service": {"points": 28, "warm_served_fraction": 1.0,
                          "warm_simulator_invocations": 0,
                          "warm_points_per_sec": 900.0}}
    svc_base = {"service": {"points": 28,
                            "warm_points_per_sec": 1000.0}}
    assert bench_speed._check(svc_ok, svc_base) == []
    svc_bad = {"patterns": {}, "long_kernels": {},
               "service": {"points": 28, "warm_served_fraction": 0.5,
                           "warm_simulator_invocations": 3,
                           "warm_points_per_sec": 100.0}}
    problems = bench_speed._check(svc_bad, svc_base)
    assert len(problems) == 3
    assert any("cache-served" in p for p in problems)
    assert any("invoked the simulator" in p for p in problems)
    assert any("serving rate" in p for p in problems)
    # the distributed gates: warm contract always binds, the scaling
    # floor only on multi-core hosts
    dist_ok = {"patterns": {}, "long_kernels": {},
               "distributed": {"points": 28, "host_cpus": 1,
                               "scaling_4_over_1": 0.9,
                               "warm_served_fraction": 1.0,
                               "warm_simulator_invocations": 0,
                               "warm_enqueued": 0,
                               "warm_points_per_sec": 900.0}}
    assert bench_speed._check(dist_ok, {}) == []
    dist_bad = {"patterns": {}, "long_kernels": {},
                "distributed": {"points": 28, "host_cpus": 8,
                                "scaling_4_over_1": 0.9,
                                "warm_served_fraction": 0.5,
                                "warm_simulator_invocations": 2,
                                "warm_enqueued": 3,
                                "warm_points_per_sec": 900.0}}
    problems = bench_speed._check(dist_bad, {})
    assert len(problems) == 4
    assert any("4-worker pool" in p for p in problems)
    assert any("enqueued" in p for p in problems)
