"""Compiler analysis passes (dependence analysis, pattern selection,
symbolic dependence proving)."""

from .depend import (LinForm, MemAccess, analyze_loop, analyze_unit_loops,
                     decompose, expr_key, has_cross_iteration_dep)
from .prover import (KernelProof, LoopProof, PairCert, Witness,
                     auto_annotate_unit, fuzz_prover, prove_all,
                     prove_kernel, prove_loop, prove_source, prove_unit)
from .prover_core import HAS_Z3, Poly, solve_eqs, z3_enabled

__all__ = ["LinForm", "MemAccess", "analyze_loop", "analyze_unit_loops",
           "decompose", "expr_key", "has_cross_iteration_dep",
           "KernelProof", "LoopProof", "PairCert", "Witness",
           "auto_annotate_unit", "fuzz_prover", "prove_all",
           "prove_kernel", "prove_loop", "prove_source", "prove_unit",
           "HAS_Z3", "Poly", "solve_eqs", "z3_enabled"]
