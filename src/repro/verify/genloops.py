"""Shared random annotated-loop generators.

One generator core drives both consumers of randomized differential
testing:

* the hypothesis fuzz suite (``tests/lang/test_fuzz_differential.py``)
  wraps the core in ``@st.composite`` strategies so examples shrink,
  and
* the ``repro verify`` CLI draws from the same core through a plain
  :class:`random.Random` so conformance sweeps are reproducible from a
  seed without a hypothesis dependency.

The core is written against a tiny *chooser* protocol (``integers``,
``sampled_from``, ``booleans``); :class:`RandomChooser` adapts a
``random.Random`` and the strategies adapt a hypothesis ``draw``.
hypothesis itself is an optional import: everything except the
``*_strategy`` helpers works without it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..uarch.params import LPSUConfig

#: workload array bases / element count shared by every generated loop
A, B, C = 0x100000, 0x180000, 0x200000
N = 24

#: the LPSU design points every differential sweep runs specialized on:
#: the primary 4-lane design, a narrow machine with tiny LSQs, a wide
#: one with doubled shared resources, and the aggressive inter-lane
#: store->load forwarding variant
LPSU_SWEEP = (
    LPSUConfig(),
    LPSUConfig(lanes=2, lsq_loads=4, lsq_stores=4),
    LPSUConfig(lanes=8, mem_ports=2, llfus=2),
    LPSUConfig(inter_lane_forwarding=True),
)

BINOPS = ("+", "-", "*", "&", "|", "^")

OR_UPDATES = (
    "acc = acc + a[i];",
    "acc = (acc ^ a[i]) + 1;",
    "if (a[i] > 0) { acc = acc + a[i]; }",
    "if ((a[i] & 1) == 0) { acc = acc * 3; } "
    "else { acc = acc - a[i]; }",
    "acc = acc + a[i]; acc = acc & 65535;",
)


class RandomChooser:
    """Chooser over a ``random.Random`` (seed-reproducible draws)."""

    def __init__(self, rng):
        if not isinstance(rng, random.Random):
            rng = random.Random(rng)
        self.rng = rng

    def integers(self, lo, hi):
        return self.rng.randint(lo, hi)

    def sampled_from(self, seq):
        return seq[self.rng.randrange(len(seq))]

    def booleans(self):
        return self.rng.random() < 0.5


# -- generator core ---------------------------------------------------------

def gen_expr(ch, depth=0, vars_=("x", "y")):
    """A random MiniC integer expression over *vars_* and ``a[i]``."""
    choice = ch.integers(0, 5 if depth < 2 else 2)
    if choice == 0:
        return str(ch.integers(-40, 40))
    if choice == 1:
        return ch.sampled_from(vars_)
    if choice == 2:
        return "a[i]"
    op = ch.sampled_from(BINOPS)
    left = gen_expr(ch, depth + 1, vars_)
    right = gen_expr(ch, depth + 1, vars_)
    return "(%s %s %s)" % (left, op, right)


def gen_uc_body(ch):
    """Statements for an unordered body writing only b[i]/c[i]."""
    stmts = ["int x = a[i];", "int y = i * 3;"]
    n = ch.integers(1, 4)
    for _ in range(n):
        e = gen_expr(ch)
        if ch.booleans():
            stmts.append("x = %s;" % e)
        else:
            stmts.append("y = %s;" % e)
    if ch.booleans():
        cond = gen_expr(ch)
        stmts.append("if (%s) { x = x + 1; } else { y = y - 2; }"
                     % cond)
    stmts.append("b[i] = x;")
    stmts.append("c[i] = y;")
    return "\n        ".join(stmts)


def gen_or_update(ch):
    """Ordered-body CIR accumulator update, possibly conditional."""
    return ch.sampled_from(OR_UPDATES)


# -- source templates -------------------------------------------------------

def uc_source(body):
    return """
void k(int* a, int* b, int* c, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        %s
    }
}""" % body


def or_source(update):
    return """
int k(int* a, int* b, int n, int init) {
    int acc = init;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        %s
        b[i] = acc;
    }
    return acc;
}""" % update


def om_source(scale):
    """``a[i] = a[i-stride] * scale + a[i]`` — the dependence distance
    is the runtime *stride* argument, so squash behaviour varies per
    example."""
    return """
void k(int* a, int n, int stride) {
    #pragma xloops ordered
    for (int i = stride; i < n; i++) {
        a[i] = a[i-stride] * %d + a[i];
    }
}""" % scale


DE_SOURCE = """
int k(int* a, int* b, int n, int limit) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        acc = acc + a[i];
        b[i] = acc;
        if (acc > limit) { break; }
    }
    return acc;
}"""


def ua_source(incr):
    """Histogram-style atomic loop: two buckets updated per element."""
    return """
void k(int* d, int* h, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) {
        int s = d[i];
        h[s] = h[s] + %d;
        h[s + 8] = h[s + 8] + 1;
    }
}""" % incr


# -- fully-assembled random cases (the `repro verify --gen N` sweep) --------

@dataclass
class GenCase:
    """One generated differential-conformance case: a source, a memory
    image, a call, and which words to compare across execution modes."""

    name: str
    source: str
    entry: str
    args: List[int]
    init_words: List[Tuple[int, List[int]]]     # (base, words)
    out_regions: List[Tuple[int, int]]          # (base, count) to compare
    compare_return: bool = False

    def apply(self, mem):
        for base, words in self.init_words:
            mem.write_words(base, [v & 0xFFFFFFFF for v in words])
        return self.args

    def outputs(self, mem, return_value=None):
        out = [tuple(mem.read_words(base, count))
               for base, count in self.out_regions]
        if self.compare_return:
            out.append(return_value)
        return tuple(out)


def _data(ch, lo, hi, count=N):
    return [ch.integers(lo, hi) for _ in range(count)]


def gen_uc_case(ch, tag=""):
    return GenCase(
        name="uc%s" % tag, source=uc_source(gen_uc_body(ch)), entry="k",
        args=[A, B, C, N], init_words=[(A, _data(ch, -100, 100))],
        out_regions=[(B, N), (C, N)])


def gen_or_case(ch, tag=""):
    init = ch.integers(-10, 10)
    return GenCase(
        name="or%s" % tag, source=or_source(gen_or_update(ch)),
        entry="k", args=[A, B, N, init & 0xFFFFFFFF],
        init_words=[(A, _data(ch, -50, 50))],
        out_regions=[(B, N)], compare_return=True)


def gen_om_case(ch, tag=""):
    stride = ch.integers(1, 5)
    scale = ch.integers(1, 3)
    return GenCase(
        name="om%s" % tag, source=om_source(scale), entry="k",
        args=[A, N, stride],
        init_words=[(A, _data(ch, 0, 60, N + 8))],
        out_regions=[(A, N)])


def gen_de_case(ch, tag=""):
    threshold = ch.integers(5, 120)
    return GenCase(
        name="de%s" % tag, source=DE_SOURCE, entry="k",
        args=[A, B, N, threshold],
        init_words=[(A, _data(ch, 0, 30))],
        out_regions=[(B, N)], compare_return=True)


def gen_ua_case(ch, tag=""):
    incr = ch.integers(1, 5)
    return GenCase(
        name="ua%s" % tag, source=ua_source(incr), entry="k",
        args=[A, B, N], init_words=[(A, _data(ch, 0, 7))],
        out_regions=[(B, 16)])


_CASE_GENS = (gen_uc_case, gen_or_case, gen_om_case, gen_de_case,
              gen_ua_case)


def random_cases(seed, count):
    """*count* deterministic :class:`GenCase` objects cycling through
    every pattern family (uc, or, om, de, ua)."""
    ch = RandomChooser(random.Random(seed))
    return [_CASE_GENS[i % len(_CASE_GENS)](ch, tag="-%d" % i)
            for i in range(count)]


# -- prover-directed cases --------------------------------------------------

def case_from_counterexample(name, source, entry, params, witness,
                             words=64, min_trip=16):
    """Build a directed :class:`GenCase` from a prover counterexample.

    *witness* is a ``repro.lang.passes.prover.Witness``: a concrete
    iteration pair of *source*'s loop that touches the same array
    element.  The case binds every pointer parameter of *params* (the
    entry function's parameter list) to its own region, sizes the trip
    count so the colliding iterations actually execute, and compares
    every region across execution modes — so an unsound pragma
    becomes an observable traditional-vs-specialized divergence.

    The witness trip count is a *minimum*: it is raised to *min_trip*
    (the colliding pair still executes; a longer run lengthens the
    dependence chain, making lane-interleaving divergence far more
    likely to materialize on at least one sweep point).
    """
    args: List[int] = []
    init_words: List[Tuple[int, List[int]]] = []
    out_regions: List[Tuple[int, int]] = []
    ridx = 0
    for p in params:
        if p.type.is_pointer:
            base = A + ridx * 0x80000
            # distinct, deterministic non-zero fill per region so
            # reorderings of colliding accesses change the image
            vals = [(1000003 * (k + 7 * ridx + 1)) % 65521
                    for k in range(words)]
            args.append(base)
            init_words.append((base, vals))
            out_regions.append((base, words))
            ridx += 1
        elif p.name == witness.bound_name:
            args.append(max(witness.trip, min_trip))
        elif p.name in witness.symbols:
            args.append(witness.symbols[p.name] & 0xFFFFFFFF)
        else:
            args.append(max(witness.trip, 2))
    return GenCase(name=name, source=source, entry=entry, args=args,
                   init_words=init_words, out_regions=out_regions)


# -- hypothesis strategies (optional dependency) ----------------------------

try:  # pragma: no cover - exercised via the fuzz suite
    from hypothesis import strategies as _st
except ImportError:  # pragma: no cover
    _st = None

if _st is not None:
    class _DrawChooser:
        """Chooser over a hypothesis ``draw`` (examples still shrink)."""

        def __init__(self, draw):
            self._draw = draw

        def integers(self, lo, hi):
            return self._draw(_st.integers(lo, hi))

        def sampled_from(self, seq):
            return self._draw(_st.sampled_from(seq))

        def booleans(self):
            return self._draw(_st.booleans())

    @_st.composite
    def uc_loop_body(draw):
        return gen_uc_body(_DrawChooser(draw))

    @_st.composite
    def or_loop_body(draw):
        return gen_or_update(_DrawChooser(draw))
