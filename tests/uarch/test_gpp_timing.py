"""Unit tests for the in-order and out-of-order GPP timing models,
driven by the functional golden model."""

from repro.asm import assemble
from repro.energy import EnergyEvents
from repro.sim import FunctionalCore, Memory
from repro.uarch import IO, OOO2, OOO4, InOrderTiming, OOOTiming
from repro.uarch.params import GPPConfig


def run_timing(src, config, args=(), mem=None, events=None):
    prog = assemble(src)
    core = FunctionalCore(prog, mem)
    core.setup_call("main", args)
    timing = (OOOTiming if config.is_ooo else InOrderTiming)(
        config, events=events)
    while not core.halted:
        timing.consume(core.step())
    return timing, core


INDEP = """
main:
    li t0, 1
    li t1, 2
    li t2, 3
    li t3, 4
    li t4, 5
    li t5, 6
    li t6, 7
    li s2, 8
    ret
"""

CHAIN = """
main:
    li  t0, 1
    add t0, t0, t0
    add t0, t0, t0
    add t0, t0, t0
    add t0, t0, t0
    add t0, t0, t0
    add t0, t0, t0
    add t0, t0, t0
    ret
"""


def test_inorder_is_roughly_one_ipc_on_independent_ops():
    t, core = run_timing(INDEP, IO)
    assert core.icount <= t.cycles <= core.icount + 4


def test_ooo_width_speeds_up_independent_ops():
    t2, _ = run_timing(INDEP, OOO2)
    t4, _ = run_timing(INDEP, OOO4)
    t1, _ = run_timing(INDEP, IO)
    assert t4.cycles <= t2.cycles <= t1.cycles


def test_dependence_chain_defeats_ooo_width():
    t2, core = run_timing(CHAIN, OOO2)
    t4, _ = run_timing(CHAIN, OOO4)
    # serialized chain: wider machine gains (almost) nothing
    assert abs(t4.cycles - t2.cycles) <= 2
    assert t2.cycles >= core.icount - 2


def test_ooo_extracts_ilp_from_interleaved_chains():
    two_chains = """
main:
    li  t0, 1
    li  t1, 1
    add t0, t0, t0
    add t1, t1, t1
    add t0, t0, t0
    add t1, t1, t1
    add t0, t0, t0
    add t1, t1, t1
    ret
"""
    tio, _ = run_timing(two_chains, IO)
    t2, _ = run_timing(two_chains, OOO2)
    assert t2.cycles < tio.cycles


def test_load_use_stall_inorder():
    src = """
main:
    la  t0, v
    lw  t1, 0(t0)
    add a0, t1, t1      # immediate use of load
    ret
    .data
v:  .word 5
"""
    t, core = run_timing(src, IO)
    assert t.stall_raw >= 1
    assert core.regs[10] == 10


def test_llfu_latency_visible():
    mul_chain = """
main:
    li  t0, 3
    mul t0, t0, t0
    mul t0, t0, t0
    mul t0, t0, t0
    ret
"""
    t, _ = run_timing(mul_chain, IO)
    # 3 dependent multiplies at 4 cycles each dominate
    assert t.cycles >= 12


def test_div_unpipelined_on_ooo():
    divs = """
main:
    li  t0, 100
    li  t1, 3
    div t2, t0, t1
    div t3, t0, t1
    div t4, t0, t1
    ret
"""
    t2, _ = run_timing(divs, OOO2)   # one LLFU: divs serialize
    t4, _ = run_timing(divs, OOO4)   # two LLFUs
    assert t4.cycles < t2.cycles


def test_branch_mispredict_costs_more_on_ooo():
    # data-dependent alternating branch: untrainable
    src = """
main:
    li  t0, 0
    li  t1, 64
    li  t2, 0
loop:
    andi t3, t0, 1
    beqz t3, skip
    addi t2, t2, 1
skip:
    addi t0, t0, 1
    blt  t0, t1, loop
    mv   a0, t2
    ret
"""
    tio, cio = run_timing(src, IO)
    tooo, _ = run_timing(src, OOO2)
    assert cio.return_value == 32
    assert tio.stall_branch > 0
    assert tooo.mispredicts > 10


def test_amo_serializes_ooo():
    base = """
main:
    la  t0, cell
    li  t1, 1
    %s
    li a0, 0
    ret
    .data
cell: .word 0
"""
    amos = base % "\n    ".join(["amo.add t2, t1, (t0)"] * 8)
    plains = base % "\n    ".join(["add t2, t1, t1"] * 8)
    t_amo, _ = run_timing(amos, OOO4)
    t_plain, _ = run_timing(plains, OOO4)
    assert t_amo.serializations == 8
    assert t_amo.cycles > t_plain.cycles + 8


def test_store_load_forwarding_dependence():
    src = """
main:
    la  t0, cell
    li  t1, 7
    sw  t1, 0(t0)
    lw  t2, 0(t0)      # must see the store
    add a0, t2, t2
    ret
    .data
cell: .word 0
"""
    t, core = run_timing(src, OOO4)
    assert core.return_value == 14


def test_rob_bounds_window():
    # many independent loads: small ROB limits overlap
    body = "\n    ".join("lw t%d, %d(a0)" % (i % 3, 4 * i)
                         for i in range(32))
    src = "main:\n    %s\n    ret\n" % body
    small = GPPConfig(name="small", kind="ooo", width=4, rob_entries=4,
                      mem_ports=2, llfus=1)
    t_small, _ = run_timing(src, small, args=[0x100000])
    t_big, _ = run_timing(src, OOO4, args=[0x100000])
    assert t_big.cycles <= t_small.cycles


def test_events_counted():
    ev = EnergyEvents()
    run_timing(INDEP, IO, events=ev)
    assert ev.ic_access == 9
    assert ev.alu_op >= 8
    assert ev.rf_write >= 8

    ev2 = EnergyEvents()
    run_timing(INDEP, OOO2, events=ev2)
    assert ev2.rob_op == 9
    assert ev2.ooo_rename == 9


def test_xloop_counts_as_branch_on_gpp():
    src = """
main:
    li t0, 0
    li t1, 16
body:
    addi t0, t0, 1
    xloop.uc t0, t1, body
    mv a0, t0
    ret
"""
    ev = EnergyEvents()
    t, core = run_timing(src, IO, events=ev)
    assert core.return_value == 16
    assert ev.bpred == 16   # one lookup per xloop execution


def test_advance_moves_clock():
    t, _ = run_timing(INDEP, IO)
    before = t.cycles
    t.advance(100)
    assert t.cycles == before + 100

    t2, _ = run_timing(INDEP, OOO2)
    before2 = t2.cycles
    t2.advance(100)
    assert t2.cycles >= before2 + 100
