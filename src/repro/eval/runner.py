"""Experiment runner: compile -> simulate -> verify -> collect stats.

All table/figure generators go through :func:`run`, which memoizes
results per process (one Table II sweep feeds Figs 5-8 without
re-simulating)."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..energy import MCPAT_45NM, VLSI_40NM, system_energy
from ..energy.events import EnergyEvents
from ..kernels import get_kernel
from ..lang import compile_source
from ..sim import Memory
from ..uarch import SystemSimulator
from ..uarch.lpsu import LPSUStats
from .configs import BASELINE_OF, config

#: binaries: the XLOOPS binary, the same source compiled for the GP
#: ISA, or the paper's separate serial implementation where one exists
BINARIES = ("xloops", "gp", "serial")


@dataclass
class KernelRun:
    """Everything recorded from one kernel x config x mode simulation."""

    kernel: str
    config: str
    mode: str
    binary: str
    cycles: int
    gpp_instrs: int
    lpsu_instrs: int
    energy_nj: float
    vlsi_energy_nj: float
    events: "EnergyEvents"
    lpsu_stats: LPSUStats
    specialized_invocations: int
    adaptive_decisions: Dict[int, str]
    cache_miss_rate: float
    static_xloops: Tuple[str, ...]

    @property
    def total_instrs(self):
        return self.gpp_instrs + self.lpsu_instrs


@lru_cache(maxsize=None)
def _compiled(kernel_name, binary, xi_enabled):
    spec = get_kernel(kernel_name)
    if binary == "xloops":
        return compile_source(spec.source, xloops=True,
                              xi_enabled=xi_enabled)
    if binary == "gp":
        return compile_source(spec.source, xloops=False)
    if binary == "serial":
        source = spec.serial_source or spec.source
        return compile_source(source, xloops=False)
    raise ValueError("unknown binary kind %r" % binary)


_RESULTS: Dict[tuple, KernelRun] = {}


def run(kernel_name, config_name, mode="traditional", binary="xloops",
        xi_enabled=True, scale="small", seed=0, verify=True):
    """Simulate one (kernel, platform, mode) point; memoized."""
    key = (kernel_name, config_name, mode, binary, xi_enabled, scale,
           seed)
    hit = _RESULTS.get(key)
    if hit is not None:
        return hit

    spec = get_kernel(kernel_name)
    compiled = _compiled(kernel_name, binary, xi_enabled)
    workload = spec.workload(scale, seed)
    mem = Memory()
    args = workload.apply(mem)
    sysconfig = config(config_name)
    sim = SystemSimulator(compiled.program, sysconfig, mem=mem)
    result = sim.run(entry=spec.entry, args=args, mode=mode)
    if verify:
        workload.check(mem)

    out = KernelRun(
        kernel=kernel_name, config=config_name, mode=mode, binary=binary,
        cycles=result.cycles, gpp_instrs=result.gpp_instrs,
        lpsu_instrs=result.lpsu_instrs,
        energy_nj=system_energy(result, sysconfig, MCPAT_45NM),
        vlsi_energy_nj=system_energy(result, sysconfig, VLSI_40NM),
        events=result.events,
        lpsu_stats=result.lpsu_stats,
        specialized_invocations=result.specialized_invocations,
        adaptive_decisions=result.adaptive_decisions,
        cache_miss_rate=(result.cache_misses / result.cache_accesses
                         if result.cache_accesses else 0.0),
        static_xloops=compiled.loop_kinds())
    _RESULTS[key] = out
    return out


def baseline_run(kernel_name, config_name, scale="small", seed=0):
    """The paper's denominator: the serial/GP binary executed
    traditionally on the platform's baseline GPP."""
    spec = get_kernel(kernel_name)
    binary = "serial" if spec.serial_source else "gp"
    return run(kernel_name, BASELINE_OF[config_name],
               mode="traditional", binary=binary, scale=scale, seed=seed)


def speedup(kernel_name, config_name, mode, scale="small", seed=0,
            **run_kw):
    """Speedup of (config, mode) over the baseline GPP (Table II
    normalization)."""
    base = baseline_run(kernel_name, config_name, scale, seed)
    this = run(kernel_name, config_name, mode=mode, scale=scale,
               seed=seed, **run_kw)
    return base.cycles / this.cycles


def energy_efficiency(kernel_name, config_name, mode, scale="small",
                      seed=0, table="mcpat"):
    """Energy efficiency (baseline energy / this energy, Fig 8)."""
    base = baseline_run(kernel_name, config_name, scale, seed)
    this = run(kernel_name, config_name, mode=mode, scale=scale,
               seed=seed)
    if table == "vlsi":
        return base.vlsi_energy_nj / this.vlsi_energy_nj
    return base.energy_nj / this.energy_nj


def clear_cache():
    _RESULTS.clear()
    _compiled.cache_clear()
