"""Compiler analysis passes (dependence analysis, pattern selection)."""

from .depend import (LinForm, MemAccess, analyze_loop, analyze_unit_loops,
                     decompose, expr_key, has_cross_iteration_dep)

__all__ = ["LinForm", "MemAccess", "analyze_loop", "analyze_unit_loops",
           "decompose", "expr_key", "has_cross_iteration_dep"]
