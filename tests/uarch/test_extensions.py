"""Tests for the two microarchitecture extensions beyond the paper's
baseline design:

* data-dependent exits (``xloop.*.de`` + ``xloop.break``) — the
  control pattern the paper explicitly leaves to future work;
* inter-lane store-load forwarding — the "more aggressive
  implementation" the paper sketches in Section II-D.
"""

import pytest

from repro.asm import AsmSyntaxError, assemble
from repro.lang import CompileError, compile_source
from repro.sim import Memory
from repro.uarch import (IO, LPSUConfig, ScanError, SystemConfig,
                         scan_loop, simulate)

SRC, DST = 0x100000, 0x200000
IOX = SystemConfig("io+x", IO, lpsu=LPSUConfig())


def run_spec(asm_or_prog, args, mem, lpsu=None, entry="main"):
    prog = assemble(asm_or_prog) if isinstance(asm_or_prog, str) \
        else asm_or_prog
    cfg = SystemConfig("io+x", IO, lpsu=lpsu or LPSUConfig())
    return simulate(prog, cfg, entry=entry, args=list(args), mem=mem,
                    mode="specialized")


SEARCH_DE = """
main:                       # a0=data a1=n a2=needle ; returns index
    li   t0, 0
    li   t1, -1             # found
    ble  a1, zero, done
body:
    slli t2, t0, 2
    add  t3, a0, t2
    lw   t4, 0(t3)
    bne  t4, a2, miss
    mv   t1, t0
    xloop.break done
miss:
    addi t0, t0, 1
    xloop.uc.de t0, a1, body
done:
    mv   a0, t1
    ret
"""


class TestDataDependentExit:
    def _run(self, data, needle, lpsu=None, mode="specialized"):
        mem = Memory()
        mem.write_words(SRC, data)
        cfg = SystemConfig("io+x", IO, lpsu=lpsu or LPSUConfig())
        return simulate(assemble(SEARCH_DE), cfg,
                        args=[SRC, len(data), needle], mem=mem,
                        mode=mode)

    def test_finds_first_match(self):
        data = [9, 7, 5, 7, 3]
        r = self._run(data, 7)
        assert r.return_value == 1   # first, not any, match

    def test_exit_despite_concurrent_lanes(self):
        # the match sits early; lanes 2..4 speculate past it and must
        # be discarded, not committed
        data = [0] * 64
        data[2] = 42
        r = self._run(data, 42)
        assert r.return_value == 2
        assert r.lpsu_stats.iterations <= 8   # far fewer than 64

    def test_no_match_runs_to_bound(self):
        data = list(range(10, 40))
        r = self._run(data, 999)
        assert r.return_value == -1   # RunResult reports signed a0

    def test_traditional_semantics_match(self):
        data = [5, 1, 8, 1]
        spec = self._run(data, 1)
        trad = self._run(data, 1, mode="traditional")
        assert spec.return_value == trad.return_value == 1

    def test_speculative_side_effects_discarded(self):
        # iterations write out[i] before testing for the needle; under
        # specialized execution entries past the exit must NOT appear
        asm = """
main:                       # a0=data a1=out a2=n a3=needle
    li   t0, 0
    ble  a2, zero, done
body:
    slli t2, t0, 2
    add  t3, a0, t2
    lw   t4, 0(t3)
    add  t5, a1, t2
    sw   t4, 0(t5)          # speculative side effect
    beq  t4, a3, hit
    addi t0, t0, 1
    xloop.uc.de t0, a2, body
    jal  zero, done
hit:
    xloop.break done
done:
    ret
"""
        # note: 'hit' path placed after the xloop would put the break
        # outside the body; instead keep break inside:
        asm = """
main:
    li   t0, 0
    ble  a2, zero, done
body:
    slli t2, t0, 2
    add  t3, a0, t2
    lw   t4, 0(t3)
    add  t5, a1, t2
    sw   t4, 0(t5)
    bne  t4, a3, miss
    xloop.break done
miss:
    addi t0, t0, 1
    xloop.uc.de t0, a2, body
done:
    ret
"""
        data = list(range(100, 164))
        needle = 105   # index 5
        mem = Memory()
        mem.write_words(SRC, data)
        r = run_spec(asm, [SRC, DST, len(data), needle], mem)
        out = mem.read_words(DST, len(data))
        assert out[:6] == data[:6]
        assert all(v == 0 for v in out[6:]), out
        assert r.lpsu_stats.squashes >= 1   # discarded younger work

    def test_compiler_generates_de(self):
        cp = compile_source("""
int f(int* a, int n) {
    int hit = -1;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        if (a[i] == 0) { hit = i; break; }
    }
    return hit;
}""")
        assert cp.loop_kinds() == ("xloop.uc.de",)

    def test_xbreak_outside_de_loop_rejected_by_scan(self):
        prog = assemble("""
main:
    li t0, 0
    li t1, 8
body:
    xloop.break out
    addi t0, t0, 1
    xloop.uc t0, t1, body
out:
    ret
""")
        xloop = next(i for i in prog.instrs if i.op.is_xloop)
        with pytest.raises(ScanError):
            scan_loop(prog, xloop, [0] * 32)

    def test_xbreak_must_target_fallthrough(self):
        prog = assemble("""
main:
    li t0, 0
    li t1, 8
body:
    xloop.break far
    addi t0, t0, 1
    xloop.uc.de t0, t1, body
    nop
far:
    ret
""")
        xloop = next(i for i in prog.instrs if i.op.is_xloop)
        with pytest.raises(ScanError):
            scan_loop(prog, xloop, [0] * 32)

    def test_xbreak_backward_rejected_by_assembler(self):
        with pytest.raises(AsmSyntaxError):
            assemble("back:\n nop\n xloop.break back\n")

    def test_de_with_or_pattern(self):
        # running sum until it crosses a threshold: CIR + exit
        cp = compile_source("""
int f(int* a, int n, int limit) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        acc = acc + a[i];
        if (acc > limit) { break; }
    }
    return acc;
}""")
        assert cp.loop_kinds() == ("xloop.or.de",)
        data = [3] * 40
        mem = Memory()
        mem.write_words(SRC, data)
        r = run_spec(cp.program, [SRC, len(data), 25], mem, entry="f")
        acc, expect = 0, 0
        for v in data:
            acc += v
            if acc > 25:
                expect = acc
                break
        assert r.return_value == expect


class TestInterLaneForwarding:
    # early store / late load across iterations; many buffered stores
    # keep commits backed up so the forwarding window actually opens
    ASM = """
main:                       # a0=a (a[0] preset) a1=scratch a2=n
    li   t0, 1
    li   t6, 1
    bge  t6, a2, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    sw   t0, 0(t2)          # early store to a[i] (value = i)
    slli t3, t0, 4
    add  t4, a1, t3
    sw   t0, 0(t4)          # padding stores fill the LSQ
    sw   t0, 4(t4)
    sw   t0, 8(t4)
    mul  t5, t0, t0         # long-latency compute
    mul  t5, t5, t5
    lw   t6, -4(t2)         # late load of a[i-1]
    add  t6, t6, t5
    sw   t6, 12(t4)
    addi t0, t0, 1
    xloop.om t0, a2, body
done:
    ret
"""

    def _run(self, forwarding, n=48):
        mem = Memory()
        mem.store_word(SRC, 0)
        lpsu = LPSUConfig(inter_lane_forwarding=forwarding)
        r = run_spec(self.ASM, [SRC, DST, n], mem, lpsu=lpsu)
        # architectural result identical either way
        got = mem.read_words(SRC, n)
        assert got == [0] + list(range(1, n)), got[:8]
        return r

    def test_results_identical(self):
        base = self._run(False)
        fwd = self._run(True)
        assert base.cycles > 0 and fwd.cycles > 0

    def test_forwarding_reduces_squashes(self):
        base = self._run(False)
        fwd = self._run(True)
        assert fwd.lpsu_stats.squashes <= base.lpsu_stats.squashes
        assert fwd.cycles <= base.cycles

    def test_config_default_off(self):
        assert not LPSUConfig().inter_lane_forwarding
