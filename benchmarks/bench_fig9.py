"""Regenerate paper Fig 9: LPSU design-space exploration on select
kernels (vertical multithreading, eight lanes, doubled memory
ports/LLFUs, 16-entry LSQs), speedup over ooo/4.

Expected shape: sgemm gains from multithreading, lanes and extra
LLFU bandwidth; viterbi is memory-port bound until +r; covar-or is
CIR-bound and gains from nothing; btree-ua gains from bigger LSQs.
"""

from conftest import run_once

from repro.eval import render_fig9
from repro.eval.figures import fig9_data


def test_fig9(benchmark):
    series = run_once(benchmark, fig9_data, scale="small")
    print()
    print(render_fig9(series))
    assert (series["ooo/4+x8+r"]["sgemm-uc"]
            > series["ooo/4+x"]["sgemm-uc"])
    assert (series["ooo/4+x8+r+m"]["btree-ua"]
            >= series["ooo/4+x8+r"]["btree-ua"] * 0.95)
    covar = [series[c]["covar-or"] for c in series]
    assert max(covar) / min(covar) < 1.6   # largely insensitive
