"""Line-oriented tokenizer for XLOOPS assembly source."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


class AsmSyntaxError(SyntaxError):
    """Assembly could not be tokenized/parsed."""

    def __init__(self, message, lineno=None):
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


@dataclass
class AsmLine:
    """One significant source line, already split into fields."""

    lineno: int
    labels: List[str]
    mnemonic: Optional[str]       # None for label-only / directive lines
    operands: List[str]
    directive: Optional[str]      # e.g. ".word" (without arguments)


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:")
_COMMENT_RE = re.compile(r"(#|//).*$")


def _split_operands(rest):
    """Split an operand string at top-level commas (parens protected)."""
    operands, depth, cur = [], 0, []
    for ch in rest:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        operands.append(tail)
    return [o for o in operands if o]


def tokenize(source):
    """Tokenize assembly *source* into a list of :class:`AsmLine`."""
    lines = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = _COMMENT_RE.sub("", raw).strip()
        if not text:
            continue
        labels = []
        while True:
            m = _LABEL_RE.match(text)
            if not m:
                break
            labels.append(m.group(1))
            text = text[m.end():].strip()
        mnemonic = directive = None
        operands = []
        if text:
            parts = text.split(None, 1)
            head = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if head.startswith("."):
                directive = head
                operands = _split_operands(rest)
            else:
                mnemonic = head
                operands = _split_operands(rest)
        if labels or mnemonic or directive:
            lines.append(AsmLine(lineno, labels, mnemonic, operands,
                                 directive))
    return lines
