"""Set-associative L1 data-cache timing model.

Only timing and event counting — data always comes from the backing
:class:`~repro.sim.memory.Memory` (the cache never holds stale data, so
functional correctness is independent of the cache model).  LRU
replacement, no-write-allocate is *not* modelled (stores allocate, as
in the paper's writeback L1).
"""

from __future__ import annotations

from .params import CacheConfig


class L1Cache:
    """Timing/event model of one L1 data cache."""

    def __init__(self, config=None):
        self.config = config or CacheConfig()
        cfg = self.config
        self.num_sets = cfg.size_bytes // (cfg.line_bytes * cfg.ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("cache geometry must give power-of-two sets")
        self._line_shift = cfg.line_bytes.bit_length() - 1
        # per-set list of tags in LRU order (front == most recent)
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr, is_store=False):
        """Access *addr*; returns the latency in cycles."""
        line = addr >> self._line_shift
        index = line & (self.num_sets - 1)
        tag = line >> (self.num_sets.bit_length() - 1)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            return self.config.hit_latency
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.ways:
            ways.pop()
        return self.config.hit_latency + self.config.miss_latency

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
