"""Wire protocol: framing, payload packing, and address parsing."""

import io
import socket
import threading

import pytest

from repro.eval.parallel import SweepPoint
from repro.serve import protocol


def _loopback():
    """A connected (client, server) socket pair."""
    a, b = socket.socketpair()
    return a, b


class TestFraming:
    def test_round_trip(self):
        a, b = _loopback()
        try:
            protocol.send_frame(a, {"op": "ping", "n": 7})
            assert protocol.recv_frame(b) == {"op": "ping", "n": 7}
        finally:
            a.close()
            b.close()

    def test_many_frames_one_stream(self):
        a, b = _loopback()
        try:
            for i in range(20):
                protocol.send_frame(a, {"i": i})
            for i in range(20):
                assert protocol.recv_frame(b) == {"i": i}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = _loopback()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = _loopback()
        try:
            frame = protocol.encode_frame({"op": "stats"})
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = _loopback()
        try:
            a.sendall(protocol._HEADER.pack(protocol.MAX_FRAME + 1))
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = _loopback()
        try:
            body = b"[1,2,3]"
            a.sendall(protocol._HEADER.pack(len(body)) + body)
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()


class TestPayloads:
    def test_record_pack_round_trip(self):
        obj = {"cycles": 123, "events": [1, 2, ("a", 3)]}
        assert protocol.unpack_record(protocol.pack_record(obj)) == obj

    def test_point_wire_round_trip(self):
        pt = SweepPoint("sgemm-uc", "io+x", mode="specialized",
                        scale="tiny", seed=3, schedule_cirs=True)
        back = protocol.point_from_wire(protocol.point_to_wire(pt))
        assert back == pt

    def test_adhoc_config_is_rejected(self):
        pt = SweepPoint("sgemm-uc", object())
        with pytest.raises(protocol.ProtocolError):
            protocol.point_to_wire(pt)

    def test_malformed_wire_point_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.point_from_wire({"config": "io"})   # no kernel
        with pytest.raises(protocol.ProtocolError):
            protocol.point_from_wire({"kernel": "sgemm-uc",
                                      "config": "io", "seed": "NaN?x"})


class TestAddresses:
    def test_explicit_unix(self):
        assert protocol.parse_address("unix:/run/s.sock") \
            == ("unix", "/run/s.sock", None)

    def test_bare_path_is_unix(self):
        assert protocol.parse_address("/tmp/x/s.sock") \
            == ("unix", "/tmp/x/s.sock", None)
        assert protocol.parse_address("serve.sock") \
            == ("unix", "serve.sock", None)

    def test_host_port(self):
        assert protocol.parse_address("127.0.0.1:7340") \
            == ("tcp", "127.0.0.1", 7340)
        assert protocol.parse_address(":9000") \
            == ("tcp", "127.0.0.1", 9000)

    def test_garbage_port(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_address("host:notaport")
