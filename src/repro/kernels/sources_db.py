"""Dynamic-bound (xloop.uc.db) application kernels: bfs-uc-db and
qsort-uc-db, plus their Table IV loop-transformed and serial variants.

Both use a worklist whose tail is reserved with an AMO and whose bound
register grows monotonically during the loop (paper Fig 1(e))."""

from __future__ import annotations

from collections import deque

from .base import KernelSpec, Workload, region, rng_for, scale_select

# ---------------------------------------------------------------------------
# bfs-uc-db: breadth-first distances over a tree (deterministic claims)
# wl holds node ids; tail[0] is the shared tail pointer.
# ---------------------------------------------------------------------------

# Publication protocol: the bound may grow (via the shared tail) before
# a concurrently-pushed entry's data store is visible, so worklist slots
# start at the -1 sentinel and a consumer spins until its entry is
# published.  A serial execution never spins (the producing iteration
# always precedes the consuming one).
BFS_DB_SRC = """
void bfs(int* adj_off, int* adj, int* dist, int* wl, int* tail,
         int src) {
    wl[0] = src;
    dist[src] = 0;
    tail[0] = 1;
    int bound = 1;
    #pragma xloops unordered
    for (int i = 0; i < bound; i++) {
        int u = wl[i];
        while (u < 0) { u = wl[i]; }
        int du = dist[u];
        int lo = adj_off[u];
        int hi = adj_off[u+1];
        for (int e = lo; e < hi; e++) {
            int v = adj[e];
            if (dist[v] < 0) {
                dist[v] = du + 1;
                int slot = amo_add(&tail[0], 1);
                wl[slot] = v;
            }
        }
        bound = tail[0];
    }
}
"""

# level-synchronous transformation (Table IV bfs-uc): one uc xloop per
# frontier, two worklists
BFS_UC_SRC = """
void bfs(int* adj_off, int* adj, int* dist, int* wl, int* tail,
         int src) {
    wl[0] = src;
    dist[src] = 0;
    int head = 0;
    int level_end = 1;
    tail[0] = 1;
    while (head < level_end) {
        #pragma xloops unordered
        for (int i = head; i < level_end; i++) {
            int u = wl[i];
            int du = dist[u];
            int lo = adj_off[u];
            int hi = adj_off[u+1];
            for (int e = lo; e < hi; e++) {
                int v = adj[e];
                if (dist[v] < 0) {
                    dist[v] = du + 1;
                    int slot = amo_add(&tail[0], 1);
                    wl[slot] = v;
                }
            }
        }
        head = level_end;
        level_end = tail[0];
    }
}
"""

# serial baseline (no AMOs): plain FIFO queue
BFS_SERIAL_SRC = """
void bfs(int* adj_off, int* adj, int* dist, int* wl, int* tail,
         int src) {
    wl[0] = src;
    dist[src] = 0;
    int bound = 1;
    for (int i = 0; i < bound; i++) {
        int u = wl[i];
        int du = dist[u];
        int lo = adj_off[u];
        int hi = adj_off[u+1];
        for (int e = lo; e < hi; e++) {
            int v = adj[e];
            if (dist[v] < 0) {
                dist[v] = du + 1;
                wl[bound] = v;
                bound = bound + 1;
            }
        }
    }
    tail[0] = bound;
}
"""


def _make_tree(nv, rng):
    """Random tree in CSR form (children only)."""
    parent = [0] * nv
    children = [[] for _ in range(nv)]
    for v in range(1, nv):
        p = rng.randrange(v)
        parent[v] = p
        children[p].append(v)
    off, adj = [0], []
    for v in range(nv):
        adj.extend(children[v])
        off.append(len(adj))
    return off, adj, children


def _bfs_make(scale, seed):
    nv = scale_select(scale, 16, 48, 192)
    rng = rng_for(seed, "bfs")
    off, adj, children = _make_tree(nv, rng)
    oa, aa, da, wa, ta = (region(i) for i in range(5))

    def init(mem):
        mem.write_words(oa, off)
        mem.write_words(aa, adj)
        mem.write_words(da, [0xFFFFFFFF] * nv)
        mem.write_words(wa, [0xFFFFFFFF] * (nv + 4))   # -1 sentinels

    def verify(mem):
        expect = [-1] * nv
        q = deque([0])
        expect[0] = 0
        while q:
            u = q.popleft()
            for v in children[u]:
                if expect[v] < 0:
                    expect[v] = expect[u] + 1
                    q.append(v)
        got = mem.read_words_signed(da, nv)
        assert got == expect
        assert mem.load_word(ta) == nv     # every node visited once

    return Workload(args=[oa, aa, da, wa, ta, 0], init=init,
                    verify=verify)


BFS_DB = KernelSpec(
    name="bfs-uc-db", suite="C", loop_types=("uc", "db"),
    source=BFS_DB_SRC, entry="bfs", make=_bfs_make,
    serial_source=BFS_SERIAL_SRC,
    description="worklist BFS with a dynamically growing bound")

BFS_UC = KernelSpec(
    name="bfs-uc", suite="C", loop_types=("uc",),
    source=BFS_UC_SRC, entry="bfs", make=_bfs_make,
    serial_source=BFS_SERIAL_SRC,
    description="level-synchronous BFS (split-worklist transformation)")

# ---------------------------------------------------------------------------
# qsort-uc-db: quicksort over a worklist of partitions
# ---------------------------------------------------------------------------

# Same publication protocol as bfs: whi is written last by a producer,
# so a consumer spins on the whi sentinel before trusting wlo.
QSORT_DB_SRC = """
void qsort(int* a, int* wlo, int* whi, int* tail) {
    int bound = tail[0];
    #pragma xloops unordered
    for (int i = 0; i < bound; i++) {
        int hi = whi[i];
        while (hi < 0) { hi = whi[i]; }
        int lo = wlo[i];
        if (hi - lo > 1) {
            int pivot = a[hi - 1];
            int mid = lo;
            for (int j = lo; j < hi - 1; j++) {
                if (a[j] < pivot) {
                    int t = a[j];
                    a[j] = a[mid];
                    a[mid] = t;
                    mid = mid + 1;
                }
            }
            int t = a[hi - 1];
            a[hi - 1] = a[mid];
            a[mid] = t;
            int slot = amo_add(&tail[0], 2);
            wlo[slot] = lo;
            whi[slot] = mid;
            wlo[slot + 1] = mid + 1;
            whi[slot + 1] = hi;
        }
        bound = tail[0];
    }
}
"""

# serial baseline: recursive quicksort, no worklist, no AMOs
QSORT_SERIAL_SRC = """
void qsort_rec(int* a, int lo, int hi) {
    if (hi - lo > 1) {
        int pivot = a[hi - 1];
        int mid = lo;
        for (int j = lo; j < hi - 1; j++) {
            if (a[j] < pivot) {
                int t = a[j];
                a[j] = a[mid];
                a[mid] = t;
                mid = mid + 1;
            }
        }
        int t = a[hi - 1];
        a[hi - 1] = a[mid];
        a[mid] = t;
        qsort_rec(a, lo, mid);
        qsort_rec(a, mid + 1, hi);
    }
}

void qsort(int* a, int* wlo, int* whi, int* tail) {
    int lo = wlo[0];
    int hi = whi[0];
    qsort_rec(a, lo, hi);
}
"""

# fixed-bound transformation (Table IV qsort-uc): process the worklist
# in uc rounds, one xloop per round over a snapshot of the tail
QSORT_UC_SRC = """
void qsort(int* a, int* wlo, int* whi, int* tail) {
    int head = 0;
    int snap = tail[0];
    while (head < snap) {
        #pragma xloops unordered
        for (int i = head; i < snap; i++) {
            int lo = wlo[i];
            int hi = whi[i];
            if (hi - lo > 1) {
                int pivot = a[hi - 1];
                int mid = lo;
                for (int j = lo; j < hi - 1; j++) {
                    if (a[j] < pivot) {
                        int t = a[j];
                        a[j] = a[mid];
                        a[mid] = t;
                        mid = mid + 1;
                    }
                }
                int t = a[hi - 1];
                a[hi - 1] = a[mid];
                a[mid] = t;
                int slot = amo_add(&tail[0], 2);
                wlo[slot] = lo;
                whi[slot] = mid;
                wlo[slot + 1] = mid + 1;
                whi[slot + 1] = hi;
            }
        }
        head = snap;
        snap = tail[0];
    }
}
"""


def _qsort_make(scale, seed):
    n = scale_select(scale, 16, 48, 160)
    rng = rng_for(seed, "qsort")
    data = [rng.randrange(1000) for _ in range(n)]
    aa, la, ha, ta = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_words(aa, data)
        # whi slots hold the -1 sentinel until a producer publishes
        mem.write_words(ha, [0xFFFFFFFF] * (2 * n + 4))
        mem.write_words(la, [0])
        mem.store_word(ha, n)
        mem.store_word(ta, 1)

    def verify(mem):
        assert mem.read_words(aa, n) == sorted(data)

    return Workload(args=[aa, la, ha, ta], init=init, verify=verify)


QSORT_DB = KernelSpec(
    name="qsort-uc-db", suite="C", loop_types=("uc", "db"),
    source=QSORT_DB_SRC, entry="qsort", make=_qsort_make,
    serial_source=QSORT_SERIAL_SRC,
    description="quicksort over a dynamically growing partition worklist")

QSORT_UC = KernelSpec(
    name="qsort-uc", suite="C", loop_types=("uc",),
    source=QSORT_UC_SRC, entry="qsort", make=_qsort_make,
    serial_source=QSORT_SERIAL_SRC,
    description="quicksort with round-snapshot worklists")

DB_KERNELS = (BFS_DB, QSORT_DB)
DB_TRANSFORMED = (BFS_UC, QSORT_UC)
