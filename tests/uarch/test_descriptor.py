"""Scan-phase (LMU) loop-analysis tests: CIR detection, last-CIR-write
bits, MIVT construction, and body extraction."""

import pytest

from repro.asm import assemble
from repro.isa import reg_num
from repro.uarch import ScanError, scan_loop


def scan(src, live=None):
    prog = assemble(src)
    xloop = next(i for i in prog.instrs if i.op.is_xloop)
    regs = live or [0] * 32
    return scan_loop(prog, xloop, regs), prog


def test_body_extraction():
    desc, prog = scan("""
main:
    li t0, 0
body:
    addi t1, t1, 1
    addi t0, t0, 1
    xloop.or t0, a0, body
    ret
""")
    assert desc.body_len == 2
    assert desc.body_start_pc == prog.entry("body")
    assert desc.idx_reg == reg_num("t0")
    assert desc.bound_reg == reg_num("a0")
    assert desc.in_body(prog.entry("body"))
    assert not desc.in_body(desc.xloop_pc)


def test_cir_detection_read_then_write():
    desc, _ = scan("""
main:
body:
    add t5, t5, t1      # t5 read then written -> CIR
    add t2, t1, t1      # t2 write only -> temp
    addi t0, t0, 1      # index: excluded
    xloop.or t0, a0, body
    ret
""")
    assert desc.cirs == frozenset({reg_num("t5")})


def test_index_register_not_a_cir():
    desc, _ = scan("""
main:
body:
    slli t1, t0, 2
    addi t0, t0, 1
    xloop.or t0, a0, body
    ret
""")
    assert desc.cirs == frozenset()


def test_write_then_read_is_not_cir():
    desc, _ = scan("""
main:
body:
    li  t3, 4
    add t4, t3, t3      # t3 written then read: plain temp
    addi t0, t0, 1
    xloop.or t0, a0, body
    ret
""")
    assert desc.cirs == frozenset()


def test_read_only_live_in_not_cir():
    desc, _ = scan("""
main:
body:
    add t1, a1, a2      # a1/a2 read-only live-ins
    addi t0, t0, 1
    xloop.or t0, a0, body
    ret
""")
    assert desc.cirs == frozenset()
    assert desc.live_in_reads >= 3  # a1, a2, t0


def test_last_cir_write_bit_on_largest_pc():
    desc, prog = scan("""
main:
body:
    add t5, t5, t1
    add t5, t5, t2      # <- last static write of CIR t5
    addi t0, t0, 1
    xloop.or t0, a0, body
    ret
""")
    t5 = reg_num("t5")
    assert desc.last_cir_write_pc[t5] == prog.entry("body") + 4
    flags = [i.last_cir_write for i in desc.body]
    assert flags == [False, True, False]


def test_mivt_addiu_xi():
    desc, _ = scan("""
main:
body:
    lw  t2, 0(t6)
    addiu.xi t6, t6, 4
    addi t0, t0, 1
    xloop.uc t0, a0, body
    ret
""")
    t6 = reg_num("t6")
    assert t6 in desc.mivt
    assert desc.mivt[t6].increment == 4
    assert desc.cirs == frozenset()   # MIV is not a CIR


def test_mivt_addu_xi_resolves_live_in():
    live = [0] * 32
    live[reg_num("a3")] = 128
    desc, _ = scan("""
main:
body:
    lw  t2, 0(t6)
    addu.xi t6, t6, a3
    addi t0, t0, 1
    xloop.uc t0, a0, body
    ret
""", live=live)
    assert desc.mivt[reg_num("t6")].increment == 128


def test_xi_dst_must_equal_src():
    with pytest.raises(ScanError):
        scan("""
main:
body:
    addiu.xi t5, t6, 4
    addi t0, t0, 1
    xloop.uc t0, a0, body
    ret
""")


def test_duplicate_mivt_entry_rejected():
    with pytest.raises(ScanError):
        scan("""
main:
body:
    addiu.xi t6, t6, 4
    addiu.xi t6, t6, 8
    addi t0, t0, 1
    xloop.uc t0, a0, body
    ret
""")


def test_uc_with_register_dependence_rejected():
    # an accumulator in an unordered-concurrent loop is a race the
    # scan catches (the compiler never generates this)
    with pytest.raises(ScanError):
        scan("""
main:
body:
    add t5, t5, t1
    addi t0, t0, 1
    xloop.uc t0, a0, body
    ret
""")


def test_orm_allows_cirs():
    desc, _ = scan("""
main:
body:
    add t5, t5, t1
    addi t0, t0, 1
    xloop.orm t0, a0, body
    ret
""")
    assert reg_num("t5") in desc.cirs


def test_body_index_mapping():
    desc, prog = scan("""
main:
body:
    addi t1, t1, 1
    addi t2, t2, 1
    addi t0, t0, 1
    xloop.or t0, a0, body
    ret
""")
    base = prog.entry("body")
    assert desc.body_index(base) == 0
    assert desc.body_index(base + 8) == 2
    assert desc.body_index(desc.xloop_pc) == desc.body_len


def test_scan_rejects_non_xloop():
    prog = assemble("main:\n addi t0, t0, 1\n ret\n")
    with pytest.raises(ScanError):
        scan_loop(prog, prog.instrs[0], [0] * 32)
