"""Architectural register model for the XLOOPS base RISC ISA.

The paper targets a 32-bit RISC ISA with *no* branch delay slot and a
**unified** 32-entry register file shared by integer and floating-point
instructions (Section III).  We follow a RISC-V-flavoured calling
convention because it is simple and familiar:

====  =========  =============================================
name  alias      role
====  =========  =============================================
x0    zero       hard-wired zero
x1    ra         return address
x2    sp         stack pointer
x3    gp         global pointer (unused by our compiler)
x4    tp         thread pointer (unused)
x5-7  t0-t2      caller-saved temporaries
x8    s0/fp      callee-saved / frame pointer
x9    s1         callee-saved
x10-17 a0-a7     arguments / return values
x18-27 s2-s11    callee-saved
x28-31 t3-t6     caller-saved temporaries
====  =========  =============================================
"""

from __future__ import annotations

NUM_REGS = 32

#: canonical register names, indexed by register number
REG_NAMES = tuple("x%d" % i for i in range(NUM_REGS))

#: ABI aliases, indexed by register number
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_NUM = {}
for _i, _n in enumerate(REG_NAMES):
    _NAME_TO_NUM[_n] = _i
for _i, _n in enumerate(ABI_NAMES):
    _NAME_TO_NUM[_n] = _i
_NAME_TO_NUM["fp"] = 8

# Register classes used by the compiler's register allocator.
ZERO = 0
RA = 1
SP = 2
ARG_REGS = tuple(range(10, 18))
#: registers the allocator may freely assign inside a function
CALLER_SAVED = (5, 6, 7, 28, 29, 30, 31) + ARG_REGS
CALLEE_SAVED = (8, 9) + tuple(range(18, 28))
ALLOCATABLE = CALLER_SAVED + CALLEE_SAVED


class RegisterError(ValueError):
    """Raised for an unknown register name or out-of-range number."""


def reg_num(name):
    """Map a register name (``x7``, ``t2``, ``a0`` ...) to its number."""
    key = name.strip().lower()
    if key in _NAME_TO_NUM:
        return _NAME_TO_NUM[key]
    raise RegisterError("unknown register %r" % (name,))


def reg_name(num, abi=True):
    """Map a register number back to a printable name."""
    if not 0 <= num < NUM_REGS:
        raise RegisterError("register number %r out of range" % (num,))
    return ABI_NAMES[num] if abi else REG_NAMES[num]


def is_reg(name):
    """Return True when *name* parses as a register."""
    return name.strip().lower() in _NAME_TO_NUM
