"""Shared test fixtures and hypothesis profiles.

The persistent result cache is redirected into a per-session temporary
directory so the suite exercises the disk-cache code paths without
reading or polluting the user's real ``~/.cache/repro``.

Hypothesis profiles: the default stays as each test's own
``@settings``; the nightly CI job selects ``--hypothesis-profile=
thorough`` for a much deeper example budget.
"""

import pytest

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is optional
    pass
else:
    settings.register_profile("thorough", max_examples=300,
                              deadline=None)


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    from repro.eval import diskcache
    diskcache.configure(
        cache_dir=str(tmp_path_factory.mktemp("repro-cache")))
    yield
