"""Unordered-atomic (xloop.ua) application kernels: btree-ua,
hsort-ua, huffman-ua, rsort-ua (+ the rsort-uc loop transformation)."""

from __future__ import annotations

import heapq

from .base import KernelSpec, Workload, region, rng_for, scale_select

# ---------------------------------------------------------------------------
# btree-ua: build a binary search tree from integer keys.  Iterations
# may run in any order but each insertion must appear atomic; the tree
# *shape* is order-dependent, so verification checks the in-order
# traversal (always the sorted keys) and structural invariants.
# ---------------------------------------------------------------------------

BTREE_SRC = """
void btree(int* key, int* left, int* right, int n) {
    #pragma xloops atomic
    for (int i = 1; i < n; i++) {
        int k = key[i];
        int j = 0;
        int done = 0;
        while (done == 0) {
            if (k < key[j]) {
                if (left[j] < 0) { left[j] = i; done = 1; }
                else { j = left[j]; }
            } else {
                if (right[j] < 0) { right[j] = i; done = 1; }
                else { j = right[j]; }
            }
        }
    }
}
"""


def _btree_make(scale, seed):
    n = scale_select(scale, 16, 64, 256)
    rng = rng_for(seed, "btree")
    keys = rng.sample(range(10 * n), n)
    ka, la, ra = region(0), region(1), region(2)

    def init(mem):
        mem.write_words(ka, keys)
        mem.write_words(la, [0xFFFFFFFF] * n)
        mem.write_words(ra, [0xFFFFFFFF] * n)

    def verify(mem):
        left = mem.read_words_signed(la, n)
        right = mem.read_words_signed(ra, n)
        seen = []

        def walk(j):
            if j < 0:
                return
            walk(left[j])
            seen.append(keys[j])
            walk(right[j])

        walk(0)
        assert seen == sorted(keys)   # all nodes linked, BST order

    return Workload(args=[ka, la, ra, n], init=init, verify=verify)


BTREE = KernelSpec(
    name="btree-ua", suite="C", loop_types=("ua", "uc"),
    source=BTREE_SRC, entry="btree", make=_btree_make,
    description="binary-search-tree construction, atomic insertions")

# ---------------------------------------------------------------------------
# hsort-ua: concurrent heap construction (sift-up insertions must be
# atomic), then a serial extraction pass that emits sorted output.
# ---------------------------------------------------------------------------

HSORT_SRC = """
void hsort(int* data, int* heap, int* size, int* out, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) {
        int v = data[i];
        int slot = size[0];
        size[0] = slot + 1;
        heap[slot] = v;
        while (slot > 0) {
            int parent = (slot - 1) / 2;
            if (heap[parent] > heap[slot]) {
                int t = heap[parent];
                heap[parent] = heap[slot];
                heap[slot] = t;
                slot = parent;
            } else {
                slot = 0;
            }
        }
    }
    for (int i = 0; i < n; i++) {
        out[i] = heap[0];
        int last = n - 1 - i;
        heap[0] = heap[last];
        int j = 0;
        int done = 0;
        while (done == 0) {
            int l = 2*j + 1;
            int r = 2*j + 2;
            int m = j;
            if (l <= last - 1 && heap[l] < heap[m]) { m = l; }
            if (r <= last - 1 && heap[r] < heap[m]) { m = r; }
            if (m == j) { done = 1; }
            else {
                int t = heap[m];
                heap[m] = heap[j];
                heap[j] = t;
                j = m;
            }
        }
    }
}
"""


def _hsort_make(scale, seed):
    n = scale_select(scale, 16, 48, 192)
    rng = rng_for(seed, "hsort")
    data = [rng.randrange(1000) for _ in range(n)]
    da, ha, sa, oa = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_words(da, data)
        mem.store_word(sa, 0)

    def verify(mem):
        assert mem.read_words(oa, n) == sorted(data)

    return Workload(args=[da, ha, sa, oa, n], init=init, verify=verify)


HSORT = KernelSpec(
    name="hsort-ua", suite="C", loop_types=("ua",),
    source=HSORT_SRC, entry="hsort", make=_hsort_make,
    description="heap sort: atomic heap insertions + serial drain")

# ---------------------------------------------------------------------------
# huffman-ua: symbol histogram built with atomic updates, then a serial
# Huffman tree construction computing the total encoded length.
# ---------------------------------------------------------------------------

HUFFMAN_SRC = """
void huffman(char* text, int* freq, int* node_f, int* alive, int* out,
             int n, int nsym) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) {
        int s = text[i];
        freq[s] = freq[s] + 1;
    }
    int count = 0;
    for (int s = 0; s < nsym; s++) {
        if (freq[s] > 0) {
            node_f[count] = freq[s];
            alive[count] = 1;
            count = count + 1;
        }
    }
    int total = 0;
    int live = count;
    while (live > 1) {
        int a = -1;
        int b = -1;
        for (int j = 0; j < count; j++) {
            if (alive[j]) {
                if (a < 0 || node_f[j] < node_f[a]) { b = a; a = j; }
                else { if (b < 0 || node_f[j] < node_f[b]) { b = j; } }
            }
        }
        int merged = node_f[a] + node_f[b];
        total = total + merged;
        node_f[a] = merged;
        alive[b] = 0;
        live = live - 1;
    }
    out[0] = total;
}
"""


def _huffman_make(scale, seed):
    n = scale_select(scale, 48, 192, 768)
    nsym = 16
    rng = rng_for(seed, "huffman")
    text = [min(nsym - 1, int(rng.expovariate(0.4))) for _ in range(n)]
    ta, fa, nfa, ava, oa = (region(i) for i in range(5))

    def golden_total(freqs):
        # mirrors the kernel's deterministic lowest-two selection
        node_f = [f for f in freqs if f > 0]
        alive = [True] * len(node_f)
        total = 0
        live = len(node_f)
        while live > 1:
            a = b = -1
            for j in range(len(node_f)):
                if not alive[j]:
                    continue
                if a < 0 or node_f[j] < node_f[a]:
                    b = a
                    a = j
                elif b < 0 or node_f[j] < node_f[b]:
                    b = j
            merged = node_f[a] + node_f[b]
            total += merged
            node_f[a] = merged
            alive[b] = False
            live -= 1
        return total

    def init(mem):
        mem.write_bytes(ta, text)

    def verify(mem):
        freqs = [0] * nsym
        for s in text:
            freqs[s] += 1
        assert mem.read_words(fa, nsym) == freqs
        assert mem.load_word(oa) == golden_total(freqs)

    return Workload(args=[ta, fa, nfa, ava, oa, n, nsym],
                    init=init, verify=verify)


HUFFMAN = KernelSpec(
    name="huffman-ua", suite="C", loop_types=("ua",),
    source=HUFFMAN_SRC, entry="huffman", make=_huffman_make,
    description="Huffman coding: atomic histogram + serial tree build")

# ---------------------------------------------------------------------------
# rsort-ua: counting/radix sort over 8-bit keys.  Histogram updates are
# atomic iterations; the scatter phase claims slots with AMOs.
# ---------------------------------------------------------------------------

RSORT_UA_SRC = """
void rsort(int* data, int* hist, int* cursor, int* out, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) {
        int d = data[i] & 255;
        hist[d] = hist[d] + 1;
    }
    int acc = 0;
    #pragma xloops ordered
    for (int b = 0; b < 256; b++) {
        cursor[b] = acc;
        acc = acc + hist[b];
    }
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int d = data[i] & 255;
        int slot = amo_add(&cursor[d], 1);
        out[slot] = data[i];
    }
}
"""

# loop transformation (Table IV): histogram via AMOs -> plain uc
RSORT_UC_SRC = """
void rsort(int* data, int* hist, int* cursor, int* out, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int d = data[i] & 255;
        int old = amo_add(&hist[d], 1);
    }
    int acc = 0;
    #pragma xloops ordered
    for (int b = 0; b < 256; b++) {
        cursor[b] = acc;
        acc = acc + hist[b];
    }
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int d = data[i] & 255;
        int slot = amo_add(&cursor[d], 1);
        out[slot] = data[i];
    }
}
"""

RSORT_SERIAL_SRC = """
void rsort(int* data, int* hist, int* cursor, int* out, int n) {
    for (int i = 0; i < n; i++) {
        int d = data[i] & 255;
        hist[d] = hist[d] + 1;
    }
    int acc = 0;
    for (int b = 0; b < 256; b++) {
        cursor[b] = acc;
        acc = acc + hist[b];
    }
    for (int i = 0; i < n; i++) {
        int d = data[i] & 255;
        int slot = cursor[d];
        cursor[d] = slot + 1;
        out[slot] = data[i];
    }
}
"""


def _rsort_make(scale, seed):
    n = scale_select(scale, 24, 96, 384)
    rng = rng_for(seed, "rsort")
    data = [rng.randrange(256) for _ in range(n)]
    da, ha, ca, oa = region(0), region(1), region(2), region(3)

    def init(mem):
        mem.write_words(da, data)

    def verify(mem):
        # keys equal their values here, so any stable/unstable scatter
        # yields exactly the sorted sequence
        assert mem.read_words(oa, n) == sorted(data)

    return Workload(args=[da, ha, ca, oa, n], init=init, verify=verify)


RSORT_UA = KernelSpec(
    name="rsort-ua", suite="C", loop_types=("ua", "or", "uc"),
    source=RSORT_UA_SRC, entry="rsort", make=_rsort_make,
    serial_source=RSORT_SERIAL_SRC,
    description="radix/counting sort: atomic histogram, AMO scatter")

RSORT_UC = KernelSpec(
    name="rsort-uc", suite="C", loop_types=("uc", "or"),
    source=RSORT_UC_SRC, entry="rsort", make=_rsort_make,
    serial_source=RSORT_SERIAL_SRC,
    description="radix sort transformed to AMO histogram updates")

UA_KERNELS = (BTREE, HSORT, HUFFMAN, RSORT_UA)
UA_TRANSFORMED = (RSORT_UC,)
