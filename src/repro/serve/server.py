"""The sweep server: an asyncio result service over the shared cache.

``repro serve`` runs one :class:`SweepServer` per host.  Many clients
connect (unix socket or TCP) and submit sweep point batches; the
server answers each point from the cheapest tier that has it and
streams results back as they complete:

1. **cache** -- the in-process memo, the decoded-record hot tier, or
   the sharded disk store (:func:`repro.eval.runner.cached_result`);
   nothing is simulated.  This is the production path: the cache *is*
   the product, and a warm sweep is served entirely from here.
2. **inflight** -- some other client (or an earlier point of the same
   submission) is already simulating this exact point; the request
   joins that computation's future instead of forking a duplicate.
   One simulation fans out to every waiter.
3. **sim** -- a true miss.  The point is scheduled on a bounded
   worker pool; each slot runs :func:`repro.eval.hardening.execute_one`
   -- the same process-per-point isolation, wall-clock watchdog,
   retry-with-backoff, and quarantine ladder a parallel sweep gets.
   A quarantined point becomes a structured failure frame for every
   waiter; it never stalls other points or other clients.

Results cross the wire as pickled records (see
:mod:`repro.serve.protocol`), so a server-routed sweep is bit-identical
to a direct ``runner.run`` -- the conformance tests assert it.

Concurrency model: the asyncio loop owns all bookkeeping (in-flight
table, counters, frame writes); simulations run on a thread pool whose
threads merely block on the hardened engine's worker pipes, so the GIL
is never contended by simulation work -- the simulating processes are
forked children.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from .. import __version__
from ..eval import diskcache, runner
from ..eval.hardening import HardeningPolicy, execute_one
from . import protocol


class SweepServer:
    """One result-serving process; see the module docstring.

    Parameters mirror the sweep executor's hardening knobs: *jobs*
    bounds concurrent simulations, *timeout*/*retries*/*backoff* are
    per-point, *idle_exit* stops the server after that many seconds
    with no client activity and nothing in flight (0 = run forever).
    """

    def __init__(self, jobs=None, timeout=0.0, retries=3, backoff=0.25,
                 idle_exit=0.0):
        self.jobs = max(1, int(jobs) if jobs else (os.cpu_count() or 2))
        self.policy = HardeningPolicy(
            timeout=float(timeout or 0.0), retries=max(1, int(retries)),
            backoff=max(0.0, float(backoff)))
        self.idle_exit = float(idle_exit or 0.0)
        self.counters = {
            "connections": 0, "submissions": 0, "points": 0,
            "served_cache": 0, "served_inflight": 0, "simulated": 0,
            "failed": 0, "retried": 0}
        #: memo-key -> asyncio.Task computing that point right now
        self._inflight = {}
        self._sem = None
        self._pool = None
        self._stop_event = None
        self._active_connections = 0
        self._last_activity = 0.0
        #: "host:port" or the unix socket path, set once listening
        self.bound = None

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self):
        """Ask the serve loop to wind down (threadsafe only via
        ``loop.call_soon_threadsafe``)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve(self, path=None, host=None, port=None, ready=None,
                    announce=None):
        """Listen and serve until a ``shutdown`` op or idle-exit.

        *path* selects a unix socket; otherwise *host*/*port* TCP
        (port 0 picks a free port -- :attr:`bound` reports it).
        *ready*, when given, is a :class:`threading.Event` set once
        listening; *announce* a callable handed one human line.
        """
        loop = asyncio.get_running_loop()
        self._sem = asyncio.Semaphore(self.jobs)
        self._stop_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve")
        self._last_activity = loop.time()
        if path:
            if os.path.exists(path):
                os.unlink(path)   # stale socket from a dead server
            server = await asyncio.start_unix_server(
                self._handle_connection, path=path)
            self.bound = path
        else:
            server = await asyncio.start_server(
                self._handle_connection, host or "127.0.0.1",
                protocol.DEFAULT_PORT if port is None else port)
            sock = server.sockets[0].getsockname()
            self.bound = "%s:%d" % (sock[0], sock[1])
        if announce:
            announce("serving on %s (jobs=%d, cache=%s)"
                     % (self.bound, self.jobs,
                        diskcache.cache_dir()
                        if diskcache.enabled() else "disabled"))
        if ready is not None:
            ready.set()
        watchdog = (asyncio.ensure_future(self._idle_watchdog())
                    if self.idle_exit else None)
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            if watchdog is not None:
                watchdog.cancel()
            self._pool.shutdown(wait=False)
            if path and os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    async def _idle_watchdog(self):
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(min(self.idle_exit, 5.0))
            idle = loop.time() - self._last_activity
            if (idle >= self.idle_exit and not self._inflight
                    and self._active_connections == 0):
                self._stop_event.set()
                return

    def _touch(self):
        self._last_activity = asyncio.get_running_loop().time()

    # -- per-connection ----------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self.counters["connections"] += 1
        self._active_connections += 1
        self._touch()
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    msg = await protocol.read_frame(reader)
                except protocol.ProtocolError:
                    break       # a garbled client gets hung up on
                if msg is None:
                    break
                self._touch()
                op = msg.get("op")
                if op == "ping":
                    await protocol.write_frame(writer, {
                        "ok": True, "version": __version__,
                        "protocol": protocol.PROTOCOL_VERSION})
                elif op == "stats":
                    await protocol.write_frame(writer,
                                               self.stats_payload())
                elif op == "shutdown":
                    await protocol.write_frame(writer, {"ok": True})
                    self._stop_event.set()
                    break
                elif op == "submit":
                    await self._handle_submit(msg, writer, write_lock)
                else:
                    await protocol.write_frame(writer, {
                        "error": "unknown op %r" % (op,)})
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass                # client went away; in-flight sims live on
        finally:
            self._active_connections -= 1
            self._touch()
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass        # server tearing down under us is fine

    async def _handle_submit(self, msg, writer, write_lock):
        self.counters["submissions"] += 1
        raw = msg.get("points")
        if not isinstance(raw, list):
            await protocol.write_frame(writer, {
                "error": "submit without a points list"})
            return
        totals = {"points": 0, "simulated": 0, "failed": 0}

        async def one(i, data):
            frame = await self._point_frame(i, data)
            totals["points"] += 1
            totals["simulated"] += bool(frame.get("simulated"))
            totals["failed"] += frame["type"] == "failure"
            async with write_lock:
                await protocol.write_frame(writer, frame)

        self.counters["points"] += len(raw)
        await asyncio.gather(*(one(i, d) for i, d in enumerate(raw)))
        self._touch()
        async with write_lock:
            await protocol.write_frame(writer, {
                "type": "done", "jobs": self.jobs, **totals})

    async def _point_frame(self, i, data):
        """Resolve one wire point into its response frame."""
        try:
            pt = protocol.point_from_wire(data)
            source, record, failure, wall, simulated = \
                await self._resolve(pt)
            label = pt.label()
        except protocol.ProtocolError as exc:
            return {"type": "failure", "i": i, "label": repr(data),
                    "kind": "protocol", "error": str(exc),
                    "attempts": 0}
        except Exception as exc:  # noqa: BLE001 - a bad point must not kill the server
            self.counters["failed"] += 1
            return {"type": "failure", "i": i, "label": repr(data),
                    "kind": "error",
                    "error": "%s: %s" % (type(exc).__name__, exc),
                    "attempts": 0}
        if failure is not None:
            return {"type": "failure", "i": i, "label": label,
                    "kind": failure.kind, "error": failure.error,
                    "attempts": failure.attempts}
        return {"type": "result", "i": i, "label": label,
                "source": source, "simulated": bool(simulated),
                "wall": round(wall, 6),
                "record": protocol.pack_record(record)}

    # -- point resolution --------------------------------------------------

    async def _resolve(self, pt):
        """``(source, record, failure, wall, simulated)`` for one
        point: cache probe, then join an in-flight computation, then
        schedule a hardened simulation."""
        cached = runner.cached_result(pt.kernel, pt.config,
                                      **pt.run_kwargs())
        if cached is not None:
            self.counters["served_cache"] += 1
            return ("cache", cached, None, 0.0, False)
        key = pt.memo_key()
        task = self._inflight.get(key)
        if task is not None:
            # global dedup: join the computation another waiter
            # started; shield() keeps it alive if *we* are cancelled
            # (our client hung up) -- the other waiters still want it
            record, failure, wall, _simulated = \
                await asyncio.shield(task)
            self.counters["served_inflight"] += 1
            return ("inflight", record, failure, wall, False)
        task = asyncio.ensure_future(self._compute(key, pt))
        self._inflight[key] = task
        record, failure, wall, simulated = await asyncio.shield(task)
        return ("sim" if simulated else "cache", record, failure,
                wall, simulated)

    async def _compute(self, key, pt):
        """Run one miss on the bounded hardened pool; exactly one of
        these exists per in-flight memo key."""
        loop = asyncio.get_running_loop()
        try:
            async with self._sem:
                outcome = await loop.run_in_executor(
                    self._pool, execute_one, pt, self.policy)
        finally:
            self._inflight.pop(key, None)
        self.counters["retried"] += outcome.retries
        if outcome.failure is not None:
            self.counters["failed"] += 1
        elif outcome.simulated:
            self.counters["simulated"] += 1
        else:
            # a sibling process (another server, a CLI sweep) filled
            # the shared disk cache while we queued
            self.counters["served_cache"] += 1
        return (outcome.result, outcome.failure, outcome.wall,
                outcome.simulated)

    # -- introspection -----------------------------------------------------

    def stats_payload(self):
        return {"ok": True, "version": __version__,
                "protocol": protocol.PROTOCOL_VERSION,
                "jobs": self.jobs, "inflight": len(self._inflight),
                "counters": dict(self.counters),
                "cache": {"process": dict(diskcache.stats),
                          "hot": diskcache.hot_stats(),
                          "disk": diskcache.disk_stats()}}


class ServerThread:
    """A :class:`SweepServer` on a background thread -- the harness
    tests, the speed bench, and interactive experiments drive a real
    client against a real socket without a second process.

    Prefers a unix socket under *socket_dir* (a fresh temp dir by
    default); hosts without ``AF_UNIX`` fall back to TCP on a free
    port.  Use as a context manager, or ``start()``/``stop()``.
    """

    def __init__(self, jobs=2, timeout=0.0, retries=3, backoff=0.25,
                 idle_exit=0.0, socket_dir=None):
        self.server = SweepServer(jobs=jobs, timeout=timeout,
                                  retries=retries, backoff=backoff,
                                  idle_exit=idle_exit)
        self._socket_dir = socket_dir
        self._owns_dir = None
        self._thread = None
        self._ready = threading.Event()
        self._loop = None

    @property
    def address(self):
        return self.server.bound

    def start(self):
        import socket as socket_mod
        path = None
        if hasattr(socket_mod, "AF_UNIX"):
            if self._socket_dir is None:
                import tempfile
                self._owns_dir = tempfile.mkdtemp(prefix="repro-serve-")
                self._socket_dir = self._owns_dir
            path = os.path.join(self._socket_dir, "serve.sock")

        async def main():
            self._loop = asyncio.get_running_loop()
            await self.server.serve(path=path, port=0,
                                    ready=self._ready)

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("sweep server failed to start")
        # serve() sets bound before ready; give it one more instant if
        # the scheduler interleaved oddly
        deadline = time.time() + 5
        while self.server.bound is None and time.time() < deadline:
            time.sleep(0.01)
        return self

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        if self._owns_dir:
            import shutil
            shutil.rmtree(self._owns_dir, ignore_errors=True)

    def __enter__(self):
        return self.start()

    def __exit__(self, *_exc):
        self.stop()
        return False
