"""Linear-scan register allocation for the MiniC code generator.

Design notes
------------
* The allocatable pool deliberately excludes the argument registers
  (``a0-a7`` are only touched by ABI moves the codegen pins itself) and
  two scratch registers (``t5``/``t6``) reserved for spill reloads.
* Live intervals are conservative: an interval that is live into a loop
  (defined before it, or whose first access inside the loop is a read)
  is extended to cover the whole loop, which makes loop-carried values
  safe under a single-pass linear scan.
* Intervals that cross a call site are restricted to callee-saved
  registers.
* Spill slots live in the function frame.  A spill inside an
  ``xloop`` body is a compile error: lanes of the LPSU would race on
  the shared stack slot, so kernels must keep xloop bodies within the
  physical register budget (the paper's kernels all do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .lexer import CompileError
from .vasm import VInstr

#: x5, x6, x7, x28, x29  (t0-t4)
CALLER_POOL = (5, 6, 7, 28, 29)
#: x8, x9, x18..x27      (s0-s11)
CALLEE_POOL = (8, 9) + tuple(range(18, 28))
#: a0-a7: usable in call-free functions, subject to ABI pinning rules
ARG_POOL = tuple(range(10, 18))
#: spill scratch registers (never allocated)
SCRATCH = (30, 31)

SP = 2


@dataclass
class Interval:
    vreg: int
    start: int
    end: int
    crosses_call: bool = False
    reg: Optional[int] = None
    spilled: bool = False
    accesses: Tuple[int, ...] = ()   # def/use positions (spill checks)


@dataclass
class AllocationResult:
    mapping: Dict[int, int]
    instrs: List[VInstr]
    spill_slots: Dict[int, int]
    used_callee_saved: Tuple[int, ...]
    spill_bytes: int


def _accesses(instrs):
    """Per-vreg ordered (position, is_def) access lists."""
    acc: Dict[int, List[Tuple[int, bool]]] = {}
    for pos, ins in enumerate(instrs):
        for kind, num in ins.uses():
            if kind == "v":
                acc.setdefault(num, []).append((pos, False))
        for kind, num in ins.defs():
            if kind == "v":
                acc.setdefault(num, []).append((pos, True))
    return acc


def _build_intervals(instrs, call_positions, loop_regions):
    acc = _accesses(instrs)
    intervals = {}
    for v, events in acc.items():
        start = min(p for p, _ in events)
        end = max(p for p, _ in events)
        intervals[v] = Interval(v, start, end,
                                accesses=tuple(p for p, _ in events))

    # loop-carried extension to a fixpoint (nested regions interact)
    regions = sorted(loop_regions)
    changed = True
    while changed:
        changed = False
        for v, itv in intervals.items():
            events = acc[v]
            for lo, hi in regions:
                inside = [(p, d) for p, d in events if lo <= p <= hi]
                if not inside:
                    continue
                first_inside_is_use = not inside[0][1]
                if itv.start < lo or first_inside_is_use:
                    new_start = min(itv.start, lo)
                    new_end = max(itv.end, hi)
                    if (new_start, new_end) != (itv.start, itv.end):
                        itv.start, itv.end = new_start, new_end
                        changed = True

    for itv in intervals.values():
        itv.crosses_call = any(itv.start < c < itv.end
                               for c in call_positions)
    return intervals


def allocate(instrs, call_positions=(), loop_regions=(),
             xloop_regions=(), spill_base=0, num_params=0,
             return_positions=()):
    """Run linear scan; returns an :class:`AllocationResult`.

    In call-free functions the argument registers join the caller-saved
    pool, subject to ABI pinning: ``aK`` (K < num_params) only for
    intervals starting after the entry parameter moves, and ``a0``
    never across a return-value move."""
    intervals = _build_intervals(instrs, call_positions, loop_regions)
    order = sorted(intervals.values(), key=lambda i: (i.start, i.end))

    free_caller = list(CALLER_POOL)
    if not call_positions:
        free_caller += list(ARG_POOL)
    free_callee = list(CALLEE_POOL)
    active: List[Interval] = []
    used_callee = set()
    callee_set = frozenset(CALLEE_POOL)

    def eligible(reg, itv):
        if reg in ARG_POOL:
            k = reg - 10
            if k < num_params and itv.start < num_params:
                return False   # original aK still holds the parameter
            if reg == 10 and any(itv.start < p < itv.end
                                 for p in return_positions):
                return False   # a0 is written by a return-value move
        return True

    def expire(now):
        for itv in list(active):
            if itv.end < now:
                active.remove(itv)
                (free_callee if itv.reg in callee_set
                 else free_caller).append(itv.reg)

    def take(itv):
        pools = [free_callee] if itv.crosses_call else [free_caller,
                                                        free_callee]
        for pool in pools:
            for i, reg in enumerate(pool):
                if eligible(reg, itv):
                    itv.reg = pool.pop(i)
                    if itv.reg in callee_set:
                        used_callee.add(itv.reg)
                    active.append(itv)
                    return True
        return False

    def accesses_xloop(itv):
        return any(lo <= p <= hi for lo, hi in xloop_regions
                   for p in itv.accesses)

    spilled: List[Interval] = []
    for itv in order:
        expire(itv.start)
        if take(itv):
            continue
        # steal a register: prefer victims not touched inside an xloop
        # body (their spill code stays outside the body), then the one
        # ending last
        candidates = [a for a in active
                      if a.end > itv.end
                      and (not itv.crosses_call or a.reg in callee_set)
                      and eligible(a.reg, itv)]
        if candidates:
            victim = max(candidates,
                         key=lambda a: (not accesses_xloop(a), a.end))
            itv.reg = victim.reg
            victim.reg = None
            victim.spilled = True
            spilled.append(victim)
            active.remove(victim)
            active.append(itv)
        else:
            itv.spilled = True
            spilled.append(itv)

    # -- spill legality + slot assignment ---------------------------------
    spill_slots: Dict[int, int] = {}
    offset = spill_base
    for itv in spilled:
        for lo, hi in xloop_regions:
            if any(lo <= p <= hi for p in itv.accesses):
                raise CompileError(
                    "register pressure too high inside an xloop body "
                    "(virtual register v%d would spill; simplify the "
                    "loop body)" % itv.vreg)
        spill_slots[itv.vreg] = offset
        offset += 4

    mapping = {itv.vreg: itv.reg for itv in intervals.values()
               if not itv.spilled}

    out = _rewrite_spills(instrs, spill_slots) if spill_slots else instrs
    return AllocationResult(mapping=mapping, instrs=out,
                            spill_slots=spill_slots,
                            used_callee_saved=tuple(sorted(used_callee)),
                            spill_bytes=offset - spill_base)


def _rewrite_spills(instrs, slots):
    """Replace spilled vreg operands with scratch-register load/store
    sequences around each instruction."""
    out: List[VInstr] = []
    for ins in instrs:
        if ins.is_label:
            out.append(ins)
            continue
        use_map = {}
        scratch_iter = iter(SCRATCH)
        pre: List[VInstr] = []
        post: List[VInstr] = []
        for operand in ins.uses():
            kind, num = operand
            if kind == "v" and num in slots and num not in use_map:
                reg = ("p", next(scratch_iter))
                use_map[num] = reg
                pre.append(VInstr("lw", rd=reg, rs1=("p", SP),
                                  imm=slots[num],
                                  comment="reload v%d" % num))
        def_map = {}
        for operand in ins.defs():
            kind, num = operand
            if kind == "v" and num in slots:
                reg = use_map.get(num) or ("p", SCRATCH[0])
                def_map[num] = reg
                post.append(VInstr("sw", rs2=reg, rs1=("p", SP),
                                   imm=slots[num],
                                   comment="spill v%d" % num))

        def sub(operand):
            if operand is None:
                return None
            kind, num = operand
            if kind == "v" and num in slots:
                return def_map.get(num) or use_map[num]
            return operand

        new = VInstr(ins.mn, rd=sub(ins.rd), rs1=sub(ins.rs1),
                     rs2=sub(ins.rs2), imm=ins.imm, label=ins.label,
                     comment=ins.comment)
        out.extend(pre)
        out.append(new)
        out.extend(post)
    return out
