"""Vector backend: numpy whole-block iteration batching for branchy
``xloop.uc`` loops (the fourth rung of :mod:`repro.sim.backends`).

The turbo tier replays *recorded* steady-state schedule segments, so it
only pays off when consecutive iterations repeat the same schedule.  On
branchy/aperiodic loops the segment memo goes dead and those points
fall back to the fused stepper.  This module batches exactly those
loops instead: it never records a schedule, it *reconstructs* one.

Execution is split into two decoupled phases per specialized
invocation:

**Phase 1 — block functional execution.**  The loop body is compiled
once into per-slot numpy emitters.  A block of iterations executes at
once: every architectural register becomes a ``(block,)`` uint32
ndarray, the per-iteration program counters form an active-mask
wavefront (always stepping the minimum live slot, so divergent
iterations re-converge), and load/store subscripts become gather/
scatter index vectors against ``np.frombuffer`` views of the sparse
memory's backing pages.  Stores apply immediately under an undo log.
This is serial-equivalent because engagement is restricted to plain
``uc`` loops: the pattern contract (machine-checked repo-wide by the
PR 7 dependence prover) forbids cross-iteration memory conflicts, and
a static may-read-before-write analysis over the body CFG rejects any
loop whose lanes could observe stale per-lane register state.

**Phase 2 — exact schedule reconstruction.**  Phase 1 leaves behind,
per iteration, the branch outcomes and memory addresses in program
order.  A compressed event replay then reproduces the LPSU's per-cycle
loop bit-exactly from the static per-instruction meta table: runs of
single-cycle compute ops collapse into closed-form time advances
(their RAW hazards can only come from load/LLFU destinations, which a
tiny per-lane scoreboard tracks), while shared-resource events --
memory-port arbitration, live d-cache LRU lookups, LLFU occupancy,
taken-branch bubbles, iteration begin/retire -- are stepped
individually in the same ``(not active, k)`` issue order the
interpreted stepper uses.  Cycles, stall/energy totals, cache state
and final memory are bit-identical to ``interp``; ``repro verify
--ladder`` enforces it.

Any refusal -- statically ineligible body, excessive divergence (mean
active-mask fraction under ``REPRO_VECTOR_MIN_UTIL``), a conversion
the scalar semantics would fault on -- rolls the undo log back and
falls through to the turbo/fused path, marking the loop vector-dead so
later invocations skip the attempt.
"""

from __future__ import annotations

import os
import sys

try:
    import numpy as np
    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised via stubbed imports
    np = None
    HAS_NUMPY = False

from ..isa.instructions import FU, Fmt
from .memory import MASK32, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE

_QNAN = 0x7FC00000
_LOAD_SIZE = {"lw": (4, True), "lh": (2, True), "lhu": (2, False),
              "lb": (1, True), "lbu": (1, False)}
_STORE_SIZE = {"sw": 4, "sh": 2, "sb": 1}

#: iterations per phase-1 block
BLOCK = int(os.environ.get("REPRO_VECTOR_BLOCK", "256") or 256)
#: refuse a block whose mean active-mask fraction falls below this
MIN_UTIL = float(os.environ.get("REPRO_VECTOR_MIN_UTIL", "0.0625")
                 or 0.0625)
#: skip invocations with fewer iterations than this -- block setup and
#: schedule reconstruction cannot amortize on short trips, where the
#: fused/turbo stepper is already fast (per-invocation, not per-loop:
#: the same static loop batches again when called with a long trip)
MIN_TRIP = int(os.environ.get("REPRO_VECTOR_MIN_TRIP", "64") or 64)

# issue classes (phase 2)
_ALU, _MEM, _LLFU, _BR, _JMP = 0, 1, 2, 3, 4


class _Refuse(Exception):
    """Internal: this invocation cannot run batched; fall back."""


# ---------------------------------------------------------------------------
# phase-1 numpy emitters
# ---------------------------------------------------------------------------

def _np_alu_r(m):
    i32, u32 = np.int32, np.uint32
    if m in ("add", "addu.xi"):
        return lambda a, b: a + b
    if m == "sub":
        return lambda a, b: a - b
    if m == "and":
        return lambda a, b: a & b
    if m == "or":
        return lambda a, b: a | b
    if m == "xor":
        return lambda a, b: a ^ b
    if m == "sll":
        return lambda a, b: a << (b & u32(31))
    if m == "srl":
        return lambda a, b: a >> (b & u32(31))
    if m == "sra":
        return lambda a, b: (a.view(i32)
                             >> (b & u32(31)).astype(i32)).view(u32)
    if m == "slt":
        return lambda a, b: (a.view(i32) < b.view(i32)).astype(u32)
    if m == "sltu":
        return lambda a, b: (a < b).astype(u32)
    return None


def _np_muldiv(m):
    i32, i64, u32 = np.int32, np.int64, np.uint32

    def _signed_quot(sa, sb):
        q = np.abs(sa) // np.abs(sb)
        return np.where((sa < 0) != (sb < 0), -q, q)

    if m == "mul":
        return lambda a, b: a * b
    if m == "mulh":
        return lambda a, b: (((a.view(i32).astype(i64)
                               * b.view(i32).astype(i64)) >> 32)
                             & MASK32).astype(u32)
    if m == "div":
        def fn(a, b):
            sa = a.view(i32).astype(i64)
            sb = b.view(i32).astype(i64)
            zero = sb == 0
            den = np.where(zero, 1, sb)
            q = _signed_quot(sa, den)
            return np.where(zero, i64(MASK32), q & MASK32).astype(u32)
        return fn
    if m == "divu":
        def fn(a, b):
            zero = b == 0
            den = np.where(zero, u32(1), b)
            return np.where(zero, u32(MASK32), a // den)
        return fn
    if m == "rem":
        def fn(a, b):
            sa = a.view(i32).astype(i64)
            sb = b.view(i32).astype(i64)
            zero = sb == 0
            den = np.where(zero, 1, sb)
            r = sa - _signed_quot(sa, den) * den
            return (np.where(zero, sa, r) & i64(MASK32)).astype(u32)
        return fn
    if m == "remu":
        def fn(a, b):
            zero = b == 0
            den = np.where(zero, u32(1), b)
            return np.where(zero, a, a % den)
        return fn
    return None


def _np_fp_r(m):
    """Mirror the scalar path exactly: widen f32 bits to float64,
    compute in double precision (like the struct-based handlers), round
    once back to float32."""
    f32, f64, u32 = np.float32, np.float64, np.uint32

    def wide(x):
        return x.view(f32).astype(f64)

    def bits(v):
        return v.astype(f32).view(u32)

    if m == "fadd.s":
        return lambda a, b: bits(wide(a) + wide(b))
    if m == "fsub.s":
        return lambda a, b: bits(wide(a) - wide(b))
    if m == "fmul.s":
        return lambda a, b: bits(wide(a) * wide(b))
    if m == "fdiv.s":
        def fn(a, b):
            fb = wide(b)
            zero = fb == 0.0
            v = bits(wide(a) / np.where(zero, 1.0, fb))
            return np.where(zero, u32(_QNAN), v)
        return fn
    if m == "fmin.s":   # min(fa, fb) returns fa unless fb < fa
        return lambda a, b: np.where(wide(b) < wide(a), b, a)
    if m == "fmax.s":
        return lambda a, b: np.where(wide(b) > wide(a), b, a)
    if m == "flt.s":
        return lambda a, b: (wide(a) < wide(b)).astype(u32)
    if m == "fle.s":
        return lambda a, b: (wide(a) <= wide(b)).astype(u32)
    if m == "feq.s":
        return lambda a, b: (wide(a) == wide(b)).astype(u32)
    return None


_NP_BRANCH = None


def _np_branch(m):
    global _NP_BRANCH
    if _NP_BRANCH is None:
        i32 = np.int32
        _NP_BRANCH = {
            "beq": lambda a, b: a == b,
            "bne": lambda a, b: a != b,
            "blt": lambda a, b: a.view(i32) < b.view(i32),
            "bge": lambda a, b: a.view(i32) >= b.view(i32),
            "bltu": lambda a, b: a < b,
            "bgeu": lambda a, b: a >= b,
        }
    return _NP_BRANCH.get(m)


# ---------------------------------------------------------------------------
# phase-1 run state: block register file + paged gather/scatter
# ---------------------------------------------------------------------------

class _BlockState:
    """Mutable state for one block's functional wavefront."""

    __slots__ = ("regs", "mem", "views", "undo", "recs", "pcs")

    def __init__(self, mem, views, undo):
        self.mem = mem
        self.views = views   # page key -> writable np.uint8 view
        self.undo = undo     # shared across blocks for whole-run rollback
        self.regs = None
        self.recs = []       # (sel, slot, payload u32) per event occurrence
        self.pcs = None

    def view(self, key):
        v = self.views.get(key)
        if v is None:
            page = self.mem._pages.get(key)
            if page is None:
                page = self.mem._page(key << PAGE_SHIFT)
            v = self.views[key] = np.frombuffer(page, dtype=np.uint8)
        return v

    def gather(self, addrs, size, signed):
        out = np.zeros(len(addrs), np.uint32)
        keys = addrs >> np.uint32(PAGE_SHIFT)
        offs = (addrs & np.uint32(PAGE_MASK)).astype(np.int64)
        for key in np.unique(keys):
            m = keys == key
            page = self.view(int(key))
            o = offs[m]
            safe = o <= PAGE_SIZE - size
            if not safe.all():
                # page-crossing lanes: scalar fall-back (rare)
                v = np.zeros(len(o), np.uint32)
                load = self.mem.load
                base = int(key) << PAGE_SHIFT
                for j in np.nonzero(~safe)[0]:
                    v[j] = load(base + int(o[j]), size, False)
                os_ = o[safe]
                w = page[os_].astype(np.uint32)
                for b in range(1, size):
                    w |= page[os_ + b].astype(np.uint32) << (8 * b)
                v[safe] = w
            else:
                v = page[o].astype(np.uint32)
                for b in range(1, size):
                    v |= page[o + b].astype(np.uint32) << (8 * b)
            out[m] = v
        if signed and size < 4:
            sign = np.uint32(1 << (8 * size - 1))
            ext = np.uint32(MASK32 ^ ((1 << (8 * size)) - 1))
            out = np.where(out & sign, out | ext, out)
        return out

    def scatter(self, addrs, size, values):
        keys = addrs >> np.uint32(PAGE_SHIFT)
        offs = (addrs & np.uint32(PAGE_MASK)).astype(np.int64)
        undo = self.undo
        for key in np.unique(keys):
            m = keys == key
            page = self.view(int(key))
            o = offs[m]
            v = values[m]
            safe = o <= PAGE_SIZE - size
            if not safe.all():
                base = int(key) << PAGE_SHIFT
                for j in np.nonzero(~safe)[0]:
                    addr = base + int(o[j])
                    undo.append((None, addr, self.mem.read(addr, size)))
                    self.mem.store(addr, size, int(v[j]))
                o = o[safe]
                v = v[safe]
                if not len(o):
                    continue
            for b in range(size):
                col = o + b
                undo.append((page, col, page[col].copy()))
                page[col] = ((v >> np.uint32(8 * b))
                             & np.uint32(0xFF)).astype(np.uint8)


def _rollback(mem, undo):
    for page, where, old in reversed(undo):
        if page is None:
            mem.write(where, old)
        else:
            page[where] = old
    undo.clear()


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class VectorEngine:
    """Compiled whole-block executor for one static xloop body.

    Content-cached process-wide (like the turbo memos and the fused
    LPSU engines); holds only static tables plus engagement counters,
    so one engine serves every invocation of content-identical loops.
    """

    def __init__(self, descriptor, lpsu_cfg, gpp_cfg):
        self.d = descriptor
        self.cfg = lpsu_cfg
        self.lat = gpp_cfg.latencies
        self.dead = False
        self.invocations = 0
        self.batched_iterations = 0
        self.refusals = 0
        self.usable = False
        self.divergent = False
        self._analyze(descriptor, lpsu_cfg, gpp_cfg)

    # -- static analysis -------------------------------------------------

    def _analyze(self, d, cfg, gpp_cfg):
        if not HAS_NUMPY or sys.byteorder != "little":
            return
        kind = d.kind
        if (kind.data.needs_memory_disambiguation
                or kind.data.ordered_through_registers
                or kind.control.value in ("de", "db")
                or d.cirs or d.has_exit
                or cfg.threads_per_lane != 1
                or not d.body):
            return
        body_n = d.body_len
        cls = []
        emit = []
        # hazardable registers: only load/LLFU destinations can make a
        # RAW check stall (every other producer has latency 1)
        hazard = set()
        for ins in d.body:
            op = ins.op
            if op.is_llfu or (op.is_load and ins.rd):
                if ins.dst_reg() is not None:
                    hazard.add(ins.dst_reg())
        for i, ins in enumerate(d.body):
            op = ins.op
            if (op.is_amo or op.is_xloop or op.is_xbreak
                    or op.fmt == Fmt.JALR):
                return
            if op.is_mem and not op.is_fence:
                c = _MEM
            elif op.is_llfu:
                c = _LLFU
            elif op.is_branch:
                c = _BR
            elif op.is_jump:
                c = _JMP
            else:
                c = _ALU
            e = self._emit(ins, i, c)
            if e is None:
                return
            cls.append(c)
            emit.append(e)
            if op.is_branch or op.is_jump:
                tgt = (ins.pc + ins.imm - d.body_start_pc) >> 2
                if not 0 <= tgt <= body_n:
                    return
        if self._maybe_uninitialized_read(d, cls):
            return
        self._cls = cls
        self._emitters = emit
        self._body_n = body_n
        self._build_walk_tables(d, cls, hazard)
        self.divergent = any(c == _BR for c in cls)
        self.usable = True

    def _maybe_uninitialized_read(self, d, cls):
        """Reject bodies where some path reads a body-written register
        before writing it this iteration: the machine's lanes would see
        stale per-lane values there, which block execution (fresh
        live-in registers per iteration) cannot reproduce."""
        body_n = d.body_len
        defined_entry = {0, d.idx_reg} | {m.reg for m in d.mivt.values()}
        written = {ins.dst_reg() for ins in d.body
                   if ins.dst_reg() is not None}
        # regs never written in the body hold their live-in value on
        # every lane forever, so reading them is always safe
        tracked = written - defined_entry
        if not tracked:
            return False
        # forward dataflow: per slot, the set of tracked regs certainly
        # written on *every* path reaching it
        full = frozenset(tracked)
        avail = [None] * (body_n + 1)
        avail[0] = frozenset()
        work = [0]
        bad = False
        while work:
            s = work.pop()
            if s >= body_n:
                continue
            ins = d.body[s]
            cur = avail[s]
            for r in ins.src_regs():
                if r in tracked and r not in cur:
                    bad = True
            dst = ins.dst_reg()
            nxt = cur if dst not in tracked else cur | {dst}
            succs = [s + 1]
            if cls[s] == _JMP:
                succs = [(ins.pc + ins.imm - d.body_start_pc) >> 2]
            elif cls[s] == _BR:
                succs = [s + 1, (ins.pc + ins.imm - d.body_start_pc) >> 2]
            for t in succs:
                if t > body_n:
                    continue
                old = avail[t]
                new = nxt if old is None else (old & nxt)
                if old is None or new != old:
                    avail[t] = new
                    if t < body_n:
                        work.append(t)
            if bad:
                return True
        _ = full
        return bad

    def _build_walk_tables(self, d, cls, hazard):
        """Phase-2 statics: per slot, the closed-form ALU run reaching
        the next shared-resource/branch event, plus per-event operand
        facts."""
        body_n = d.body_len
        lat = self.lat
        runs = [None] * (body_n + 1)
        info = [None] * body_n
        for i, ins in enumerate(d.body):
            op = ins.op
            srcs = tuple(s for s in set(ins.src_regs()) if s in hazard)
            dst = ins.dst_reg()
            if cls[i] == _MEM:
                rd = ins.rd if op.is_load else 0
                info[i] = (srcs, rd, op.is_store)
            elif cls[i] == _LLFU:
                latency = lat.for_fu(op.fu)
                occupy = latency if op.fu in (FU.DIV, FU.FDIV) else 1
                info[i] = (srcs, dst, latency, occupy)
            elif cls[i] == _BR:
                tgt = (ins.pc + ins.imm - d.body_start_pc) >> 2
                info[i] = (srcs, tgt)
            elif cls[i] == _JMP:
                tgt = (ins.pc + ins.imm - d.body_start_pc) >> 2
                info[i] = (dst if dst in hazard else None, tgt)
        for s in range(body_n + 1):
            n = 0
            hz = []
            cur = s
            while cur < body_n and cls[cur] == _ALU:
                ins = d.body[cur]
                reads = tuple(r for r in set(ins.src_regs())
                              if r in hazard)
                if reads:
                    hz.append((n, reads, None))
                dst = ins.dst_reg()
                if dst in hazard:
                    hz.append((n, None, dst))
                n += 1
                cur += 1
            runs[s] = (n, tuple(hz), cur)
        self._runs = runs
        self._info = info

    # -- phase-1 emitters -------------------------------------------------

    def _emit(self, ins, slot, c):
        op = ins.op
        m = op.mnemonic
        fmt = op.fmt
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        imm = ins.imm
        u32 = np.uint32

        if fmt in (Fmt.R, Fmt.XI_R):
            fn = _np_alu_r(m) or _np_muldiv(m) or _np_fp_r(m)
            if fn is None:
                return None

            def h(st, sel):
                if rd:
                    st.regs[rd][sel] = fn(st.regs[rs1][sel],
                                          st.regs[rs2][sel])
                return None
            return h
        if fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I):
            i32 = np.int32
            if m in ("addi", "addiu.xi"):
                k = u32(imm & MASK32)
                fn = lambda a: a + k
            elif m == "andi":
                k = u32(imm & MASK32)
                fn = lambda a: a & k
            elif m == "ori":
                k = u32(imm & MASK32)
                fn = lambda a: a | k
            elif m == "xori":
                k = u32(imm & MASK32)
                fn = lambda a: a ^ k
            elif m == "slti":
                k = np.int32(imm)
                fn = lambda a: (a.view(i32) < k).astype(u32)
            elif m == "sltiu":
                k = u32(imm & MASK32)
                fn = lambda a: (a < k).astype(u32)
            elif m == "slli":
                k = imm & 31
                fn = lambda a: a << u32(k)
            elif m == "srli":
                k = imm & 31
                fn = lambda a: a >> u32(k)
            elif m == "srai":
                k = imm & 31
                fn = lambda a: (a.view(i32) >> i32(k)).view(u32)
            else:
                return None

            def h(st, sel):
                if rd:
                    st.regs[rd][sel] = fn(st.regs[rs1][sel])
                return None
            return h
        if fmt == Fmt.R2:
            if m == "fcvt.s.w":
                def h(st, sel):
                    if rd:
                        st.regs[rd][sel] = (st.regs[rs1][sel]
                                            .view(np.int32)
                                            .astype(np.float64)
                                            .astype(np.float32)
                                            .view(u32))
                    return None
                return h
            if m == "fcvt.w.s":
                def h(st, sel):
                    fa = (st.regs[rs1][sel].view(np.float32)
                          .astype(np.float64))
                    if not np.isfinite(fa).all():
                        # int(nan/inf) raises on the scalar path: fall
                        # back so the reference semantics surface it
                        raise _Refuse("fcvt.w.s of non-finite value")
                    t = np.trunc(fa)
                    big = np.abs(t) >= 2.0 ** 62
                    v = (t.astype(np.int64) & np.int64(MASK32)) \
                        .astype(u32)
                    if big.any():
                        for j in np.nonzero(big)[0]:
                            v[j] = int(t[j]) & MASK32
                    if rd:
                        st.regs[rd][sel] = v
                    return None
                return h
            if m == "fsqrt.s":
                def h(st, sel):
                    fa = (st.regs[rs1][sel].view(np.float32)
                          .astype(np.float64))
                    ok = fa >= 0.0
                    v = (np.sqrt(np.where(ok, fa, 1.0))
                         .astype(np.float32).view(u32))
                    if rd:
                        st.regs[rd][sel] = np.where(ok, v, u32(_QNAN))
                    return None
                return h
            return None
        if fmt == Fmt.LUI:
            val = u32((imm << 12) & MASK32)

            def h(st, sel):
                if rd:
                    st.regs[rd][sel] = val
                return None
            return h
        if fmt == Fmt.NONE:     # fence: ALU-class no-op in the LPSU
            return lambda st, sel: None
        if fmt == Fmt.BRANCH:
            cond = _np_branch(m)
            if cond is None:
                return None
            tgt = np.int64((ins.pc + imm - self.d.body_start_pc) >> 2)
            nxt = np.int64(slot + 1)

            def h(st, sel):
                taken = cond(st.regs[rs1][sel], st.regs[rs2][sel])
                st.recs.append((sel, slot, taken.astype(u32)))
                return np.where(taken, tgt, nxt)
            return h
        if fmt == Fmt.JAL:
            tgt = np.int64((ins.pc + imm - self.d.body_start_pc) >> 2)
            link = u32((ins.pc + 4) & MASK32)

            def h(st, sel):
                if rd:
                    st.regs[rd][sel] = link
                return np.full(len(sel), tgt)
            return h
        if fmt == Fmt.LOAD:
            size, signed = _LOAD_SIZE[m]
            k = u32(imm & MASK32)

            def h(st, sel):
                addrs = st.regs[rs1][sel] + k
                st.recs.append((sel, slot, addrs))
                v = st.gather(addrs, size, signed)
                if rd:
                    st.regs[rd][sel] = v
                return None
            return h
        if fmt == Fmt.STORE:
            size = _STORE_SIZE[m]
            k = u32(imm & MASK32)

            def h(st, sel):
                addrs = st.regs[rs1][sel] + k
                st.recs.append((sel, slot, addrs))
                st.scatter(addrs, size, st.regs[rs2][sel])
                return None
            return h
        return None

    # -- public entry ------------------------------------------------------

    def execute(self, lpsu):
        """Run the whole specialized phase batched.  Returns the exact
        exec-phase cycle count, or None (state untouched) when this
        invocation cannot engage."""
        if self.dead or not self.usable:
            return None
        if (not lpsu.fast or not lpsu._fuse or lpsu.events is None
                or lpsu.monitor is not None or lpsu.trace is not None
                or lpsu._max_iters is not None):
            return None
        n_total = lpsu.bound - lpsu.start_idx
        if n_total < max(MIN_TRIP, 1):
            return None
        self.invocations += 1
        undo = []
        try:
            with np.errstate(all="ignore"):
                blocks, counts = self._run_functional(lpsu, n_total,
                                                      undo)
                # merge the per-slot execution counts only now that
                # phase 1 ran to completion: a refusal must leave the
                # energy accounting as untouched as the memory image
                ec = lpsu._exec_counts
                for s, c in enumerate(counts):
                    ec[s] += c
                cycles = self._replay(lpsu, n_total, blocks)
        except _Refuse:
            _rollback(lpsu.mem, undo)
            self.refusals += 1
            self.dead = True
            return None
        undo.clear()
        self.batched_iterations += n_total
        return cycles

    # -- phase 1 -----------------------------------------------------------

    def _run_functional(self, lpsu, n_total, undo):
        d = self.d
        body_n = self._body_n
        emit = self._emitters
        live_in = lpsu.live_in
        start = lpsu.start_idx
        mivs = list(d.mivt.values())
        # local accumulator: merged into lpsu._exec_counts by the
        # caller only if no refusal fires
        counts = [0] * body_n
        views = {}
        blocks = []
        step_cap = 10_000_000
        warmup = 8 * (body_n + 4)
        for base in range(0, n_total, BLOCK):
            nb = min(BLOCK, n_total - base)
            st = _BlockState(lpsu.mem, views, undo)
            ks = np.arange(base, base + nb, dtype=np.int64)
            regs = [None] * 32
            zero = np.zeros(nb, np.uint32)
            for r in range(32):
                v = live_in[r]
                regs[r] = zero.copy() if v == 0 else np.full(
                    nb, v, np.uint32)
            regs[0] = zero
            regs[d.idx_reg] = ((start + ks) & MASK32).astype(np.uint32)
            for miv in mivs:
                regs[miv.reg] = ((live_in[miv.reg] + miv.increment * ks)
                                 & MASK32).astype(np.uint32)
            st.regs = regs
            pcs = np.zeros(nb, np.int64)
            steps = 0
            executed = 0
            while True:
                live = pcs < body_n
                if not live.any():
                    break
                s = int(pcs.min(where=live, initial=body_n))
                selmask = pcs == s
                sel = np.nonzero(selmask)[0]
                nxt = emit[s](st, sel)
                counts[s] += len(sel)
                executed += len(sel)
                steps += 1
                pcs[sel] = s + 1 if nxt is None else nxt
                if steps > step_cap:
                    raise _Refuse("wavefront step cap")
                if (steps > warmup
                        and executed < MIN_UTIL * steps * nb):
                    raise _Refuse("divergence: mask fraction below "
                                  "threshold")
            blocks.append(self._transpose(st, base, nb))
        return blocks, counts

    @staticmethod
    def _transpose(st, base, nb):
        """Per-occurrence event records -> per-iteration program-order
        streams (slot + payload arrays, indexed by block offsets)."""
        recs = st.recs
        if not recs:
            return (base, nb, [], [], [0] * (nb + 1))
        lanes = np.concatenate([r[0] for r in recs])
        seqs = np.concatenate([np.full(len(r[0]), i, np.int64)
                               for i, r in enumerate(recs)])
        slots = np.concatenate([np.full(len(r[0]), r[1], np.int32)
                                for r in recs])
        pays = np.concatenate([r[2] for r in recs])
        order = np.lexsort((seqs, lanes))
        counts = np.bincount(lanes, minlength=nb)
        starts = np.zeros(nb + 1, np.int64)
        np.cumsum(counts, out=starts[1:])
        # plain lists: the replay loop indexes these per event, and
        # python-int indexing is several times cheaper than ndarray
        # scalar access there
        return (base, nb, slots[order].tolist(), pays[order].tolist(),
                starts.tolist())

    # -- phase 2 -----------------------------------------------------------

    def _replay(self, lpsu, n_total, blocks):
        cfg = lpsu.cfg
        cache = lpsu.cache
        hit_lat = cache.config.hit_latency
        # inline the L1 LRU model (same trick as the turbo walker):
        # per-access method-call overhead dominates otherwise, and the
        # streaming common case is an MRU hit that needs no reordering
        miss_lat = hit_lat + cache.config.miss_latency
        line_shift = cache._line_shift
        set_mask = cache.num_sets - 1
        tag_shift = cache.num_sets.bit_length() - 1
        nways = cache.config.ways
        csets = cache._sets
        c_hits = c_miss = 0
        pen = cfg.branch_penalty
        ports = cfg.mem_ports
        runs = self._runs
        info = self._info
        cls = self._cls
        body_n = self._body_n
        n_mivs = len(self.d.mivt)
        FARC = 1 << 60

        n_lanes = cfg.lanes
        # lane state: [k, active, ready_at, pending_slot, ev_slots,
        # ev_pays, ptr, end, sb]; pending_slot -1 = retire pending
        lanes = [[-1, False, 0, 0, None, None, 0, 0, {}]
                 for _ in range(n_lanes)]
        next_k = 0
        active_count = 0
        iterations = 0
        stall_raw = stall_memport = stall_llfu = stall_branch = 0
        dc_access = dc_miss = 0
        llfu_free = [0] * cfg.llfus
        grants = 0

        def walk(ln, slot, t):
            """Advance through compute runs to the next shared event;
            leaves the lane parked with ``pending_slot`` + ready_at."""
            nonlocal stall_raw, stall_branch
            sb = ln[8]
            while True:
                n, hz, stop = runs[slot]
                if n:
                    if hz and sb:
                        shift = 0
                        for off, reads, wr in hz:
                            at = t + off + shift
                            if reads is None:
                                sb.pop(wr, None)
                                continue
                            m = at
                            for r in reads:
                                v = sb.get(r, 0)
                                if v > m:
                                    m = v
                            if m > at:
                                stall_raw += m - at
                                shift += m - at
                        t += n + shift
                    else:
                        t += n
                    slot = stop
                    continue
                if slot >= body_n:
                    ln[3] = -1
                    ln[2] = t
                    return
                c = cls[slot]
                if c == _BR:
                    srcs, tgt = info[slot]
                    if srcs and sb:
                        m = t
                        for r in srcs:
                            v = sb.get(r, 0)
                            if v > m:
                                m = v
                        if m > t:
                            stall_raw += m - t
                            t = m
                    p = ln[6]
                    if ln[4][p] != slot:
                        raise RuntimeError(
                            "vector replay desync at slot %d" % slot)
                    taken = ln[5][p]
                    ln[6] = p + 1
                    t += 1
                    if taken:
                        stall_branch += pen
                        t += pen
                        slot = tgt
                    else:
                        slot += 1
                    continue
                if c == _JMP:
                    wr, tgt = info[slot]
                    if wr is not None:
                        sb.pop(wr, None)
                    t += 1
                    stall_branch += pen
                    t += pen
                    slot = tgt
                    continue
                # shared-resource event (mem or LLFU): RAW settles
                # first, then the issue attempt happens at a visit
                srcs = info[slot][0]
                if srcs and sb:
                    m = t
                    for r in srcs:
                        v = sb.get(r, 0)
                        if v > m:
                            m = v
                    if m > t:
                        stall_raw += m - t
                        t = m
                ln[3] = slot
                ln[2] = t
                return

        def visit(ln, cycle):
            nonlocal grants, stall_memport, stall_llfu
            nonlocal dc_access, dc_miss, next_k, active_count
            nonlocal iterations, order_dirty, idq_ops, c_hits, c_miss
            if not ln[1]:
                # begin: pull the next iteration off the IDQ; the first
                # op executes this same cycle, after older lanes
                k = next_k
                next_k += 1
                ln[0] = k
                ln[1] = True
                active_count += 1
                for i, x in enumerate(inact):
                    if x is ln:
                        del inact[i]
                        break
                act.append(ln)
                order_dirty = True
                blk = blocks[k // BLOCK]
                i = k - blk[0]
                ln[4] = blk[2]
                ln[5] = blk[3]
                ln[6] = blk[4][i]
                ln[7] = blk[4][i + 1]
                idq_ops += 1
                walk(ln, 0, cycle)
                if ln[2] > cycle or ln[3] == -1:
                    return
            slot = ln[3]
            if slot == -1:
                # retire visit
                if ln[6] != ln[7]:
                    raise RuntimeError("vector replay: %d unconsumed "
                                       "events" % (ln[7] - ln[6]))
                iterations += 1
                ln[1] = False
                active_count -= 1
                for i, x in enumerate(act):
                    if x is ln:
                        del act[i]
                        break
                # idle lanes stay k-ascending (retires may complete
                # out of order when a younger iteration runs shorter)
                j = len(inact)
                k = ln[0]
                while j and inact[j - 1][0] > k:
                    j -= 1
                inact.insert(j, ln)
                order_dirty = True
                ln[2] = cycle + 1
                return
            if cls[slot] == _MEM:
                if grants >= ports:
                    stall_memport += 1
                    ln[2] = cycle + 1
                    return
                grants += 1
                p = ln[6]
                if ln[4][p] != slot:
                    raise RuntimeError(
                        "vector replay desync at slot %d" % slot)
                addr = ln[5][p]
                ln[6] = p + 1
                _s, rd, is_store = info[slot]
                line = addr >> line_shift
                tag = line >> tag_shift
                ways = csets[line & set_mask]
                if ways and ways[0] == tag:
                    c_hits += 1
                    a = hit_lat
                elif tag in ways:
                    ways.remove(tag)
                    ways.insert(0, tag)
                    c_hits += 1
                    a = hit_lat
                else:
                    c_miss += 1
                    ways.insert(0, tag)
                    if len(ways) > nways:
                        ways.pop()
                    a = miss_lat
                dc_access += 1
                if a > hit_lat:
                    dc_miss += 1
                if rd:
                    ln[8][rd] = cycle + a
                walk(ln, slot + 1, cycle + 1)
                return
            # LLFU
            _s, dst, latency, occupy = info[slot]
            unit = -1
            for u in range(len(llfu_free)):
                if llfu_free[u] <= cycle:
                    unit = u
                    break
            if unit < 0:
                stall_llfu += 1
                ln[2] = cycle + 1
                return
            llfu_free[unit] = cycle + occupy
            if dst is not None:
                ln[8][dst] = cycle + latency
            walk(ln, slot + 1, cycle + 1)

        events = lpsu.events
        cycle = 0
        guard = 0
        idq_ops = 0
        # issue order is (active, k) ascending -- like the LPSU's
        # _order it changes solely at begin/retire, and since k
        # assignment follows visit order both halves stay sorted under
        # append-only maintenance: no comparison sort needed
        act = []
        inact = list(lanes)
        order = list(lanes)
        order_dirty = False
        while active_count or next_k < n_total:
            grants = 0
            if order_dirty:
                order = act + inact
                order_dirty = False
            for ln in order:
                if ln[1]:
                    if ln[2] > cycle:
                        continue
                elif next_k >= n_total:
                    continue
                visit(ln, cycle)
            cycle += 1
            if active_count == n_lanes or next_k >= n_total:
                nxt = FARC
                for ln in act:
                    if ln[2] < nxt:
                        nxt = ln[2]
                if cycle < nxt < FARC:
                    cycle = nxt
            guard += 1
            if guard > 200_000_000:  # pragma: no cover
                raise RuntimeError("vector replay livelock")

        stats = lpsu.stats
        total_ops = sum(lpsu._exec_counts)
        stats.iterations += iterations
        stats.instrs += total_ops
        stats.busy += total_ops
        stats.stall_raw += stall_raw
        stats.stall_memport += stall_memport
        stats.stall_llfu += stall_llfu
        stats.stall_branch += stall_branch
        events.idq_op += idq_ops
        events.miv_mul += idq_ops * n_mivs
        events.dc_access += dc_access
        events.dc_miss += dc_miss
        cache.hits += c_hits
        cache.misses += c_miss
        lpsu._next_k = n_total
        return cycle


# ---------------------------------------------------------------------------
# process-wide content-keyed engine cache
# ---------------------------------------------------------------------------

_ENGINES = {}
_MAX_ENGINES = 64


def vector_content_key(descriptor, lpsu_cfg, gpp_cfg):
    """Everything the compiled engine's static tables depend on (MIV
    increments resolve per invocation, so they stay out of the key)."""
    from .fusion import _lpsu_content_key
    return (_lpsu_content_key(descriptor, lpsu_cfg, gpp_cfg),
            descriptor.idx_reg,
            tuple(sorted(m.reg for m in descriptor.mivt.values())))


def vector_engine(descriptor, lpsu_cfg, gpp_cfg):
    """Shared :class:`VectorEngine` for this loop, or None when the
    body is statically ineligible (the LPSU then runs exactly as on
    the turbo tier)."""
    if not HAS_NUMPY:
        return None
    key = vector_content_key(descriptor, lpsu_cfg, gpp_cfg)
    eng = _ENGINES.get(key)
    if eng is None:
        if len(_ENGINES) >= _MAX_ENGINES:
            _ENGINES.clear()
        eng = _ENGINES[key] = VectorEngine(descriptor, lpsu_cfg,
                                           gpp_cfg)
    return eng if eng.usable else None


def clear():
    """Drop every cached engine (test isolation / ``clear_cache``)."""
    _ENGINES.clear()
