"""Named platform configurations for the evaluation (paper Table III
plus the Fig 9 design-space variants)."""

from __future__ import annotations

from dataclasses import replace

from ..uarch.params import (IO, OOO2, OOO4, AdaptiveConfig, LPSUConfig,
                            SystemConfig)

#: the primary LPSU: 4 lanes, 128-entry IBs, 8+8 LSQs, shared port+LLFU
PRIMARY_LPSU = LPSUConfig()

#: paper Section IV-D uses 256 iterations / 2000 cycles.  Our datasets
#: are scaled ~8x smaller than the paper's (to keep the pure-Python
#: cycle simulation fast), so the profiling thresholds scale down by
#: the same factor -- otherwise profiling would consume entire loops.
ADAPTIVE = AdaptiveConfig(profile_iters=32, profile_cycles=400)


def _sys(name, gpp, lpsu=None):
    return SystemConfig(name=name, gpp=gpp, lpsu=lpsu, adaptive=ADAPTIVE)


CONFIGS = {
    # baselines
    "io": _sys("io", IO),
    "ooo/2": _sys("ooo/2", OOO2),
    "ooo/4": _sys("ooo/4", OOO4),
    # XLOOPS platforms
    "io+x": _sys("io+x", IO, PRIMARY_LPSU),
    "ooo/2+x": _sys("ooo/2+x", OOO2, PRIMARY_LPSU),
    "ooo/4+x": _sys("ooo/4+x", OOO4, PRIMARY_LPSU),
    # Fig 9 design space (all on the ooo/4 host)
    "ooo/4+x4+t": _sys("ooo/4+x4+t", OOO4,
                       replace(PRIMARY_LPSU, threads_per_lane=2)),
    "ooo/4+x8": _sys("ooo/4+x8", OOO4,
                     replace(PRIMARY_LPSU, lanes=8)),
    "ooo/4+x8+r": _sys("ooo/4+x8+r", OOO4,
                       replace(PRIMARY_LPSU, lanes=8, mem_ports=2,
                               llfus=2)),
    "ooo/4+x8+r+m": _sys("ooo/4+x8+r+m", OOO4,
                         replace(PRIMARY_LPSU, lanes=8, mem_ports=2,
                                 llfus=2, lsq_loads=16, lsq_stores=16)),
}

#: baseline GPP serving as the denominator for each platform
BASELINE_OF = {
    "io": "io", "io+x": "io",
    "ooo/2": "ooo/2", "ooo/2+x": "ooo/2",
    "ooo/4": "ooo/4", "ooo/4+x": "ooo/4",
    "ooo/4+x4+t": "ooo/4", "ooo/4+x8": "ooo/4",
    "ooo/4+x8+r": "ooo/4", "ooo/4+x8+r+m": "ooo/4",
}

GPP_NAMES = ("io", "ooo/2", "ooo/4")
XLOOPS_NAMES = ("io+x", "ooo/2+x", "ooo/4+x")
DESIGN_SPACE_NAMES = ("ooo/4+x", "ooo/4+x4+t", "ooo/4+x8", "ooo/4+x8+r",
                      "ooo/4+x8+r+m")


def config(name):
    try:
        return CONFIGS[name]
    except KeyError:
        raise KeyError("unknown config %r (known: %s)"
                       % (name, ", ".join(sorted(CONFIGS))))
