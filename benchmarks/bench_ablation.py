"""Ablation benches for the design choices DESIGN.md calls out:

* LSQ capacity 8 vs 16 (structural hazards on om/ua kernels)
* lane count 2/4/8 (cross-check of Table V / Fig 9)
* shared vs doubled memory port + LLFU
* xi enabled vs disabled (Fig 10's sgemm observation)
* adaptive profiling thresholds
"""

from dataclasses import replace

from conftest import run_once

from repro.eval import render_table
from repro.eval.configs import ADAPTIVE, CONFIGS, PRIMARY_LPSU
from repro.eval.runner import run, speedup
from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, SystemConfig, SystemSimulator
from repro.uarch.params import AdaptiveConfig


def _spec_cycles(kernel, lpsu, xi_enabled=True, scale="small"):
    spec = get_kernel(kernel)
    cp = compile_source(spec.source, xi_enabled=xi_enabled)
    wl = spec.workload(scale)
    mem = Memory()
    args = wl.apply(mem)
    cfg = SystemConfig("ablate", IO, lpsu=lpsu, adaptive=ADAPTIVE)
    sim = SystemSimulator(cp.program, cfg, mem=mem)
    r = sim.run(entry=spec.entry, args=args, mode="specialized")
    wl.check(mem)
    return r


def _sweep():
    rows = []

    # LSQ capacity (om/ua kernels)
    for kernel in ("dynprog-om", "btree-ua"):
        small = _spec_cycles(kernel, replace(PRIMARY_LPSU, lsq_loads=4,
                                             lsq_stores=4)).cycles
        default = _spec_cycles(kernel, PRIMARY_LPSU).cycles
        big = _spec_cycles(kernel, replace(PRIMARY_LPSU, lsq_loads=16,
                                           lsq_stores=16)).cycles
        rows.append(["lsq 4/8/16", kernel,
                     "%d / %d / %d" % (small, default, big)])
        assert big <= default <= small * 1.05

    # lanes
    for kernel in ("rgb2cmyk-uc", "covar-or"):
        cyc = [
            _spec_cycles(kernel, replace(PRIMARY_LPSU, lanes=k)).cycles
            for k in (2, 4, 8)]
        rows.append(["lanes 2/4/8", kernel,
                     "%d / %d / %d" % tuple(cyc)])
    # uc kernels scale with lanes; CIR-bound kernels do not
    uc = [_spec_cycles("rgb2cmyk-uc",
                       replace(PRIMARY_LPSU, lanes=k,
                               mem_ports=2)).cycles for k in (2, 8)]
    assert uc[1] < uc[0]

    # memory port / LLFU bandwidth
    for kernel in ("viterbi-uc", "sgemm-uc"):
        shared = _spec_cycles(kernel, PRIMARY_LPSU).cycles
        doubled = _spec_cycles(kernel, replace(PRIMARY_LPSU, mem_ports=2,
                                               llfus=2)).cycles
        rows.append(["ports+llfus x2", kernel,
                     "%d -> %d" % (shared, doubled)])
        assert doubled <= shared

    # xi encoding -- matters for kernels whose xloop body indexes
    # arrays by the induction variable directly (note: unlike the
    # paper's sgemm, our sgemm is insensitive because its induction
    # pointers live in *inner* plain loops, which legally strength-
    # reduce with plain adds whether or not xi exists)
    for kernel in ("rgb2cmyk-uc", "adpcm-or"):
        with_xi = _spec_cycles(kernel, PRIMARY_LPSU, xi_enabled=True)
        without = _spec_cycles(kernel, PRIMARY_LPSU, xi_enabled=False)
        rows.append(["xi on/off", kernel, "%d -> %d (instrs %d -> %d)"
                     % (with_xi.cycles, without.cycles,
                        with_xi.gpp_instrs + with_xi.lpsu_instrs,
                        without.gpp_instrs + without.lpsu_instrs)])
        assert (without.gpp_instrs + without.lpsu_instrs
                > with_xi.gpp_instrs + with_xi.lpsu_instrs)

    # automatic CIR scheduling (Section IV-G automated): dither must
    # recover the full hand-optimized gain
    for kernel, hand in (("dither-or", "dither-or-opt"),
                         ("sha-or", "sha-or-opt")):
        base = _spec_cycles(kernel, PRIMARY_LPSU).cycles
        spec = get_kernel(kernel)
        cp = compile_source(spec.source, schedule_cirs=True)
        wl = spec.workload("small")
        mem = Memory()
        wargs = wl.apply(mem)
        cfg = SystemConfig("sched", IO, lpsu=PRIMARY_LPSU,
                           adaptive=ADAPTIVE)
        r = SystemSimulator(cp.program, cfg, mem=mem).run(
            entry=spec.entry, args=wargs, mode="specialized")
        wl.check(mem)
        handc = _spec_cycles(hand, PRIMARY_LPSU).cycles
        rows.append(["auto-schedule", kernel,
                     "base %d -> auto %d (hand %d)"
                     % (base, r.cycles, handc)])
        assert r.cycles <= base

    # inter-lane store-load forwarding: never hurts, architecturally
    # identical (the window rarely opens at this scale -- commits
    # drain fast; see tests/uarch/test_extensions.py for a case where
    # it fires)
    for kernel in ("dynprog-om", "ksack-sm-om"):
        plain = _spec_cycles(kernel, PRIMARY_LPSU).cycles
        fwd = _spec_cycles(kernel, replace(
            PRIMARY_LPSU, inter_lane_forwarding=True)).cycles
        rows.append(["inter-lane fwd", kernel,
                     "%d -> %d" % (plain, fwd)])
        assert fwd <= plain * 1.05

    # adaptive profiling thresholds (sha-or on ooo/4+x: migrate back)
    from repro.eval.runner import clear_cache
    from repro.uarch import OOO4
    spec = get_kernel("sha-or")
    cp = compile_source(spec.source)
    for iters, cycles_thr in ((8, 100), (32, 400), (128, 1600)):
        wl = spec.workload("small")
        mem = Memory()
        args = wl.apply(mem)
        cfg = SystemConfig("a", OOO4, lpsu=PRIMARY_LPSU,
                           adaptive=AdaptiveConfig(
                               profile_iters=iters,
                               profile_cycles=cycles_thr))
        sim = SystemSimulator(cp.program, cfg, mem=mem)
        r = sim.run(entry=spec.entry, args=args, mode="adaptive")
        wl.check(mem)
        rows.append(["adaptive %d/%d" % (iters, cycles_thr), "sha-or",
                     "%d cycles" % r.cycles])
    return rows


def test_ablations(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(render_table(["Ablation", "Kernel", "Result"], rows,
                       title="Design-choice ablations"))
