"""Parallel sweep executor: fan simulation points across a process
pool, backed by the persistent result cache.

A *point* is one ``(kernel, config, mode, binary, xi, scale, seed)``
simulation -- exactly the argument tuple of
:func:`repro.eval.runner.run`.  The executor:

* deduplicates the submitted points,
* serves what it can from the in-process memo and the disk cache,
* fans the rest across ``--jobs`` worker processes (each worker runs
  :func:`runner.run`, which writes its result to the shared disk
  cache),
* installs every result into the parent's memo, so the table/figure
  assembly code that follows hits the memo and never simulates,
* reports per-point wall time and cache hit/miss counts.

With ``jobs <= 1`` everything runs in-process (no pool), which is
also the fallback when :mod:`multiprocessing` cannot provide a
working context.  Results are bit-identical either way: each point is
an independent deterministic simulation, and the executor only moves
*where* it runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from ..kernels import TABLE2_KERNELS, TABLE4_KERNELS, get_kernel
from . import runner
from .configs import (BASELINE_OF, DESIGN_SPACE_NAMES, GPP_NAMES,
                      XLOOPS_NAMES)
from .report import render_table

#: (mode letter, mode) pairs used by the Table II sweep
_TABLE2_MODES = (("T", "traditional"), ("S", "specialized"),
                 ("A", "adaptive"))


@dataclass(frozen=True)
class SweepPoint:
    """One simulation point (the argument tuple of ``runner.run``)."""

    kernel: str
    config: object                 # name or SystemConfig
    mode: str = "traditional"
    binary: str = "xloops"
    xi_enabled: bool = True
    scale: str = "small"
    seed: int = 0
    schedule_cirs: bool = False

    def run_kwargs(self):
        return dict(mode=self.mode, binary=self.binary,
                    xi_enabled=self.xi_enabled, scale=self.scale,
                    seed=self.seed, schedule_cirs=self.schedule_cirs)

    def memo_key(self):
        return runner.memo_key(self.kernel, self.config,
                               **self.run_kwargs())

    def label(self):
        cfg = self.config if isinstance(self.config, str) \
            else getattr(self.config, "name", "<config>")
        return "%s/%s/%s/%s/%s" % (self.kernel, cfg, self.mode,
                                   self.binary, self.scale)


@dataclass
class PointOutcome:
    """Per-point record in a sweep summary."""

    point: SweepPoint
    wall_time: float
    simulated: bool                # False -> served from a cache


@dataclass
class SweepSummary:
    """What one executor invocation did, and how long it took.

    Beyond the outcome list, the summary carries the hardened
    runtime's structured records: per-attempt :class:`RetryEvent`\\ s,
    quarantined :class:`PointFailure`\\ s (points whose every attempt
    failed -- the sweep completes without them instead of aborting),
    and :class:`~repro.eval.runner.Incident`\\ s (degradations the
    runtime absorbed, like fast-path fallbacks or a parallel-to-serial
    downgrade, flagged by :attr:`degraded`)."""

    outcomes: List[PointOutcome] = field(default_factory=list)
    wall_time: float = 0.0
    jobs: int = 1
    failures: List = field(default_factory=list)   # PointFailure
    retries: List = field(default_factory=list)    # RetryEvent
    incidents: List = field(default_factory=list)  # runner.Incident
    degraded: bool = False     # parallel execution fell back to serial

    @property
    def points(self):
        return len(self.outcomes)

    @property
    def misses(self):
        """Points that actually ran the simulator."""
        return sum(1 for o in self.outcomes if o.simulated)

    @property
    def hits(self):
        """Points served from the memo or the disk cache."""
        return sum(1 for o in self.outcomes if not o.simulated)

    @property
    def ok(self):
        """No point was quarantined (retried-and-recovered is ok)."""
        return not self.failures

    def render(self, per_point=False):
        lines = ["sweep: %d points in %.2fs (%d jobs): "
                 "%d simulated, %d cached"
                 % (self.points, self.wall_time, self.jobs,
                    self.misses, self.hits)]
        if self.retries:
            lines.append("retries: %d" % len(self.retries))
            for ev in self.retries:
                lines.append("  retry %s attempt %d (%s): %s"
                             % (ev.label, ev.attempt, ev.kind,
                                ev.error))
        if self.failures:
            lines.append("QUARANTINED %d point(s):" % len(self.failures))
            for fl in self.failures:
                lines.append("  %s after %d attempts (%s): %s"
                             % (fl.label, fl.attempts, fl.kind,
                                fl.error))
        if self.degraded:
            lines.append("DEGRADED: parallel execution fell back to "
                         "serial")
        for inc in self.incidents:
            lines.append("incident [%s] %s: %s"
                         % (inc.kind, inc.context, inc.detail))
        if per_point:
            rows = [[o.point.label(),
                     "%.3f" % o.wall_time,
                     "sim" if o.simulated else "cache"]
                    for o in sorted(self.outcomes,
                                    key=lambda o: -o.wall_time)]
            lines.append(render_table(["Point", "Wall (s)", "Source"],
                                      rows, title="Per-point wall time"))
        return "\n".join(lines)


class SweepExecutor:
    """Executes batches of sweep points, optionally in parallel.

    Execution is delegated to the hardened engine in
    :mod:`repro.eval.hardening`: each point runs in its own forked
    worker under a wall-clock watchdog, crashes and hangs are isolated
    and retried with exponential backoff, exhausted points are
    quarantined instead of aborting the sweep, and worker-spawn
    failure degrades to serial in-process execution.

    Parameters
    ----------
    jobs
        Worker process count; ``None`` or ``1`` runs in-process.
    cache_dir
        Override the disk-cache directory (propagates to workers via
        ``REPRO_CACHE_DIR``).
    use_cache
        ``False`` disables the disk cache for this process and its
        workers (``REPRO_NO_CACHE``); the in-process memo still
        applies.
    timeout
        Per-point wall-clock bound in seconds (0 = unbounded).  In
        parallel mode a worker over budget is killed; in serial mode
        the SIGALRM watchdog interrupts the simulation.
    retries
        Maximum attempts per point (the last one with the simulator
        fast path disabled).
    backoff
        Base retry backoff in seconds; doubles per failed attempt.
    checkpoint
        Path of a checkpoint file for resumable sweeps (completed and
        quarantined points are skipped on re-run).
    """

    def __init__(self, jobs=None, cache_dir=None, use_cache=True,
                 timeout=0.0, retries=3, backoff=0.25, checkpoint=None):
        self.jobs = max(1, int(jobs)) if jobs else 1
        from .hardening import HardeningPolicy
        self.policy = HardeningPolicy(
            timeout=float(timeout or 0.0),
            retries=max(1, int(retries)),
            backoff=max(0.0, float(backoff)),
            checkpoint=str(checkpoint) if checkpoint else "")
        from . import diskcache
        if cache_dir is not None:
            diskcache.configure(cache_dir=cache_dir)
        if not use_cache:
            diskcache.configure(enabled=False)

    def run_points(self, points):
        """Execute *points* (deduplicated, order-preserving); returns
        a :class:`SweepSummary`.  Every result ends up in the parent
        process's memo."""
        from .hardening import execute_points
        points = list(dict.fromkeys(points))
        t0 = time.perf_counter()
        summary = SweepSummary(jobs=self.jobs)

        # anything already memoized is free; don't ship it to a worker
        pending = []
        for pt in points:
            if runner._RESULTS.get(pt.memo_key()) is not None:
                summary.outcomes.append(PointOutcome(pt, 0.0, False))
            else:
                pending.append(pt)

        execute_points(pending, self.jobs, self.policy, summary)
        summary.wall_time = time.perf_counter() - t0
        return summary


def sweep(points, jobs=None, cache_dir=None, use_cache=True, **policy):
    """One-shot convenience wrapper around :class:`SweepExecutor`;
    ``**policy`` forwards the hardening knobs (timeout, retries,
    backoff, checkpoint)."""
    return SweepExecutor(jobs=jobs, cache_dir=cache_dir,
                         use_cache=use_cache, **policy).run_points(points)


# ---------------------------------------------------------------------------
# point-set enumerators for the paper's artifacts
# ---------------------------------------------------------------------------


def baseline_point(kernel, config_name, scale="small", seed=0):
    """The paper's denominator run for (kernel, platform)."""
    spec = get_kernel(kernel)
    binary = "serial" if spec.serial_source else "gp"
    return SweepPoint(kernel, BASELINE_OF[config_name],
                      mode="traditional", binary=binary, scale=scale,
                      seed=seed)


def table2_points(kernels=None, scale="small", seed=0,
                  modes=_TABLE2_MODES, gpps=GPP_NAMES):
    names = kernels or [k.name for k in TABLE2_KERNELS]
    points = []
    for name in names:
        points.append(baseline_point(name, "io", scale, seed))
        points.append(SweepPoint(name, "io", mode="traditional",
                                 scale=scale, seed=seed))
        for gpp in gpps:
            points.append(baseline_point(name, gpp, scale, seed))
            for _letter, mode in modes:
                cfg = gpp if mode == "traditional" else gpp + "+x"
                points.append(SweepPoint(name, cfg, mode=mode,
                                         scale=scale, seed=seed))
    return points


def table4_points(kernels=None, scale="small", seed=0,
                  configs=XLOOPS_NAMES):
    names = kernels or [k.name for k in TABLE4_KERNELS]
    points = []
    for name in names:
        for cfg in configs:
            points.append(baseline_point(name, cfg, scale, seed))
            points.append(SweepPoint(name, cfg, mode="specialized",
                                     scale=scale, seed=seed))
    return points


def fig5_points(kernels=None, scale="small", seed=0):
    names = kernels or [k.name for k in TABLE2_KERNELS]
    points = []
    for name in names:
        for gpp in GPP_NAMES:
            points.append(baseline_point(name, gpp, scale, seed))
        points.append(SweepPoint(name, "ooo/2+x", mode="specialized",
                                 scale=scale, seed=seed))
    return points


def fig6_points(kernels=None, scale="small", seed=0):
    names = kernels or [k.name for k in TABLE2_KERNELS]
    return [SweepPoint(n, "io+x", mode="specialized", scale=scale,
                       seed=seed) for n in names]


def fig7_points(kernels=None, scale="small", seed=0):
    names = kernels or [k.name for k in TABLE2_KERNELS]
    points = []
    for name in names:
        points.append(baseline_point(name, "ooo/4+x", scale, seed))
        for mode in ("specialized", "adaptive"):
            points.append(SweepPoint(name, "ooo/4+x", mode=mode,
                                     scale=scale, seed=seed))
    return points


def fig8_points(kernels=None, configs=("io+x", "ooo/2+x", "ooo/4+x"),
                modes=("specialized", "adaptive"), scale="small",
                seed=0):
    names = kernels or [k.name for k in TABLE2_KERNELS]
    points = []
    for cfg in configs:
        for mode in modes:
            for name in names:
                points.append(baseline_point(name, cfg, scale, seed))
                points.append(SweepPoint(name, cfg, mode=mode,
                                         scale=scale, seed=seed))
    return points


def fig9_points(kernels, configs=DESIGN_SPACE_NAMES, scale="small",
                seed=0):
    points = []
    for cfg in configs:
        for name in kernels:
            points.append(baseline_point(name, cfg, scale, seed))
            points.append(SweepPoint(name, cfg, mode="specialized",
                                     scale=scale, seed=seed))
    return points


def fig10_points(kernels, scale="small", seed=0):
    points = []
    for name in kernels:
        points.append(SweepPoint(name, "io", mode="traditional",
                                 binary="gp", scale=scale, seed=seed))
        points.append(SweepPoint(name, "io+x", mode="specialized",
                                 xi_enabled=False, scale=scale,
                                 seed=seed))
    return points
