"""Runtime invariant monitor: injected-bug detection and transparency.

Two obligations, tested from both sides:

* **sensitivity** -- deliberately broken LPSU machinery (mutated via
  monkeypatch) must raise a cycle- and lane-stamped
  :class:`InvariantViolation`, and
* **transparency** -- attaching the monitor must leave cycles, energy
  events, LPSU statistics, and architectural results bit-identical to
  an unverified run.
"""

import dataclasses

import pytest

from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.sim.memory import MASK32
from repro.uarch import IO, SystemConfig, simulate
from repro.uarch.lpsu import LPSU
from repro.uarch.params import LPSUConfig
from repro.verify import InvariantViolation
from repro.verify.genloops import (A, B, LPSU_SWEEP, N, om_source,
                                   or_source)


def _run(src, entry, args, init_words=(), lpsu=None, verify=True,
         mode="specialized"):
    cp = compile_source(src)
    mem = Memory()
    for base, words in init_words:
        mem.write_words(base, [v & MASK32 for v in words])
    r = simulate(cp.program, SystemConfig("x", IO, lpsu or LPSUConfig()),
                 entry=entry, args=args, mem=mem, mode=mode,
                 verify=verify)
    return r, mem


#: an ordered loop whose CIR is produced by a long-latency multiply, so
#: the consumer lane genuinely has to wait on the CIB avail cycle
_MUL_OR_SRC = or_source("acc = (acc * 3) + a[i];")

#: stride-1 memory recurrence: younger lanes speculatively load a[i-1]
#: before the older store commits, so broadcasts/squashes must happen
_OM_SRC = om_source(2)


class TestInjectedBugs:
    def test_cib_ordering_bug_is_caught(self, monkeypatch):
        """A CIB that delivers values before their avail cycle breaks
        the or-pattern's produce-before-consume ordering."""

        def eager_deliver(self, ctx, instr, cycle):
            d = self.d
            for s in instr.src_regs():
                if s in d.cirs and s not in ctx.received_cirs:
                    chan = self._cib.get((s, ctx.k))
                    if chan is None:
                        self._stall(ctx, cycle, cycle + 1, "cib")
                        return False
                    # BUG: ignores chan[0] (the avail cycle)
                    ctx.regs[s] = chan[1]
                    ctx.received_cirs[s] = chan[1]
                    ctx.ready[s] = cycle
                    if self.monitor is not None:
                        self.monitor.on_cib_consume(
                            ctx.lane_id, ctx.k, s, chan[1], cycle)
            return True

        monkeypatch.setattr(LPSU, "_deliver_cirs", eager_deliver)
        with pytest.raises(InvariantViolation) as exc:
            _run(_MUL_OR_SRC, "k", [A, B, N, 1],
                 init_words=[(A, list(range(1, N + 1)))])
        v = exc.value
        assert v.check == "cib-order"
        assert v.cycle is not None and v.lane is not None
        # the stamped report is human-readable
        assert "cycle %d" % v.cycle in str(v)
        assert "lane %d" % v.lane in str(v)

    def test_cib_value_corruption_is_caught(self, monkeypatch):
        """A CIB that flips bits of a published value diverges from the
        serial accumulator at an iteration boundary."""
        real_publish = LPSU._publish_cir

        def corrupting_publish(self, ctx, cir, avail_cycle):
            if ctx.k == 2:
                ctx.regs[cir] = (ctx.regs[cir] ^ 0x10) & MASK32
            return real_publish(self, ctx, cir, avail_cycle)

        monkeypatch.setattr(LPSU, "_publish_cir", corrupting_publish)
        with pytest.raises(InvariantViolation) as exc:
            _run(_MUL_OR_SRC, "k", [A, B, N, 1],
                 init_words=[(A, list(range(1, N + 1)))])
        assert exc.value.check in ("cib-value", "cib-stale", "boundary")

    def test_mivt_increment_bug_is_caught(self, monkeypatch):
        """Wrong induction-variable reconstruction at lane startup."""
        real_init = LPSU._init_iter_regs

        def skewed_init(self, ctx):
            real_init(self, ctx)
            d = self.d
            if ctx.k >= 2:
                for miv in d.mivt.values():
                    ctx.regs[miv.reg] = (ctx.regs[miv.reg] + 4) & MASK32

        monkeypatch.setattr(LPSU, "_init_iter_regs", skewed_init)
        with pytest.raises(InvariantViolation) as exc:
            _run(_MUL_OR_SRC, "k", [A, B, N, 1],
                 init_words=[(A, list(range(1, N + 1)))])
        assert exc.value.check in ("mivt", "boundary")

    def test_missing_broadcast_is_caught(self, monkeypatch):
        """An LSQ that commits stores without broadcasting the address
        can never squash mis-speculated younger loads."""
        monkeypatch.setattr(LPSU, "_broadcast",
                            lambda self, addr, ctx, cycle: None)
        with pytest.raises(InvariantViolation) as exc:
            _run(_OM_SRC, "k", [A, N, 1],
                 init_words=[(A, list(range(N + 8)))])
        assert exc.value.check in ("lsq-broadcast", "lsq-stream",
                                   "memory")

    def test_commit_order_bug_is_caught(self, monkeypatch):
        """om/orm/ua iterations must drain their stores in strict index
        order; a commit gate that lets any lane through violates it."""

        def any_order(self, ctx, cycle):
            if ctx.store_buf:
                return self._drain_one(ctx, cycle, promote=False)
            self._retire_iteration(ctx, cycle)
            return False

        monkeypatch.setattr(LPSU, "_advance_commit", any_order)
        with pytest.raises(InvariantViolation) as exc:
            _run(_OM_SRC, "k", [A, N, 1],
                 init_words=[(A, list(range(N + 8)))])
        assert exc.value.check in ("lsq-commit-order", "lsq-stream",
                                   "boundary")


class TestTransparency:
    """verify=True must not perturb the simulation it watches."""

    KERNELS = ("sha-or", "mm-orm", "btree-ua", "ssearch-de",
               "rgb2cmyk-uc")

    @pytest.mark.parametrize("name", KERNELS)
    def test_bit_identical_to_unverified(self, name):
        spec = get_kernel(name)
        cp = compile_source(spec.source)
        snaps = []
        for verify in (False, True):
            wl = spec.workload("tiny", 0)
            mem = Memory()
            args = wl.apply(mem)
            r = simulate(cp.program,
                         SystemConfig("x", IO, LPSUConfig()),
                         entry=spec.entry, args=args, mem=mem,
                         mode="specialized", verify=verify)
            snaps.append((r.cycles, r.gpp_instrs, r.lpsu_instrs,
                          r.return_value,
                          dataclasses.asdict(r.events),
                          dataclasses.asdict(r.lpsu_stats), mem))
        assert snaps[0][:6] == snaps[1][:6]
        assert snaps[0][6].pages_equal(snaps[1][6])

    def test_adaptive_mode_bit_identical(self):
        spec = get_kernel("qsort-uc-db")
        cp = compile_source(spec.source)
        snaps = []
        for verify in (False, True):
            wl = spec.workload("tiny", 0)
            mem = Memory()
            args = wl.apply(mem)
            r = simulate(cp.program,
                         SystemConfig("x", IO, LPSUConfig()),
                         entry=spec.entry, args=args, mem=mem,
                         mode="adaptive", verify=verify)
            snaps.append((r.cycles, dataclasses.asdict(r.events),
                          dataclasses.asdict(r.lpsu_stats),
                          r.adaptive_decisions))
        assert snaps[0] == snaps[1]


class TestExitInteraction:
    """xloop.break (data-dependent exit) under the monitor: the exit
    decision, copy-back registers, and hand-back state all check out
    across LPSU shapes."""

    @pytest.mark.parametrize("lpsu", LPSU_SWEEP,
                             ids=lambda c: "lanes%d%s" % (
                                 c.lanes,
                                 "+f" if c.inter_lane_forwarding else ""))
    def test_ssearch_de_verifies(self, lpsu):
        spec = get_kernel("ssearch-de")
        cp = compile_source(spec.source)
        wl = spec.workload("tiny", 0)
        mem = Memory()
        args = wl.apply(mem)
        simulate(cp.program, SystemConfig("x", IO, lpsu),
                 entry=spec.entry, args=args, mem=mem,
                 mode="specialized", verify=True)
        wl.check(mem)

    @pytest.mark.parametrize("limit", (3, 40, 10_000))
    def test_generated_de_loop_verifies(self, limit):
        # early exit, mid-loop exit, and no exit at all
        from repro.verify.genloops import DE_SOURCE
        r, mem = _run(DE_SOURCE, "k", [A, B, N, limit],
                      init_words=[(A, [5] * N)])
        acc, expect = 0, 0
        for i in range(N):
            acc += 5
            if acc > limit:
                break
        assert r.return_value == acc & MASK32


class TestViolationReport:
    def test_str_includes_stamps(self):
        v = InvariantViolation("cib-order", "consumed early", cycle=12,
                              lane=3, iteration=7)
        s = str(v)
        assert "[cib-order]" in s and "cycle 12" in s
        assert "lane 3" in s and "iter 7" in s

    def test_str_without_stamps(self):
        v = InvariantViolation("boundary", "final state diverged")
        assert "boundary" in str(v)
