"""Cycle-level microarchitecture models: in-order and out-of-order
GPPs, the loop-pattern specialization unit (LPSU), adaptive execution,
and the full-system composition."""

from .params import (LatencyTable, CacheConfig, GPPConfig, LPSUConfig,
                     AdaptiveConfig, SystemConfig, IO, OOO2, OOO4, baseline)
from .branch import BimodalPredictor, GSharePredictor, make_predictor
from .cache import L1Cache
from .inorder import InOrderTiming
from .ooo import OOOTiming
from .descriptor import LoopDescriptor, MIVEntry, ScanError, scan_loop
from .lpsu import LPSU, LPSUStats, LPSUResult
from .adaptive import (AdaptiveProfilingTable, APTEntry, GPP_PROFILING,
                       LPSU_PROFILING, DECIDED_TRADITIONAL,
                       DECIDED_SPECIALIZED)
from .system import SystemSimulator, RunResult, simulate, MODES

__all__ = [
    "LatencyTable", "CacheConfig", "GPPConfig", "LPSUConfig",
    "AdaptiveConfig", "SystemConfig", "IO", "OOO2", "OOO4", "baseline",
    "BimodalPredictor", "GSharePredictor", "make_predictor", "L1Cache", "InOrderTiming", "OOOTiming",
    "LoopDescriptor", "MIVEntry", "ScanError", "scan_loop", "LPSU",
    "LPSUStats", "LPSUResult", "AdaptiveProfilingTable", "APTEntry",
    "GPP_PROFILING", "LPSU_PROFILING", "DECIDED_TRADITIONAL",
    "DECIDED_SPECIALIZED", "SystemSimulator", "RunResult", "simulate",
    "MODES",
]
