"""Durable shared work queue + lease table of the distributed tier.

When a ``--distributed`` server misses the cache it does not simulate
locally: the point is enqueued here, and ``repro worker`` processes
pull *leased batches* over the wire, run them through the hardened
engine, and stream completions back.  This module is the robustness
core of that tier -- pure bookkeeping, no sockets, single-threaded
(every call happens on the server's asyncio loop thread):

* **Leases carry deadlines.**  A worker that leases a batch must
  heartbeat before the deadline or the lease expires and every
  uncompleted point in it is requeued.  A worker whose connection
  drops is released immediately -- same requeue, no waiting for the
  clock.  A point is therefore *never lost*.
* **Completion is idempotent, first writer wins.**  An expired lease
  does not invalidate a slow worker's result (results are
  deterministic and bit-identical, so any writer's answer is THE
  answer); but once one writer has completed a point, every later
  completion is discarded and counted in ``duplicates``.  A point is
  therefore *never double-credited*.
* **A bounded requeue budget** turns a repeat worker-killer into a
  structured :class:`~repro.eval.hardening.PointFailure` instead of
  an infinite requeue loop.  Worker-*reported* failures (the hardened
  engine already retried and quarantined the point worker-side) are
  quarantined directly, exactly as a local sweep would.
* **An append-only, fsync'd journal** (one JSON object per line)
  records enqueue/complete/fail transitions.  On restart the queue
  replays it and re-enqueues exactly the points that were pending --
  completed work is never re-simulated, because the sharded disk
  cache remains the durable *result* store and a resubmitted
  completed point is cache-served.  A torn final line (crash mid
  write) is ignored, never an error.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field

from ..eval.hardening import PointFailure

#: default seconds a lease stays valid without a heartbeat
DEFAULT_LEASE_TTL = 30.0

#: default times a point may be requeued (lease expiry / worker loss /
#: severed connection) before it is quarantined as a structured failure
DEFAULT_REQUEUE_BUDGET = 5


def qkey_of(wire):
    """Canonical queue identity of a wire point: its sorted compact
    JSON image.  Stable across processes and restarts (unlike the
    in-process memo key, which is a Python tuple), faithful to it
    one-to-one (every wire field feeds the memo key), and JSON-safe
    for the journal."""
    return json.dumps(wire, sort_keys=True, separators=(",", ":"))


def label_of(wire):
    """Human label of a wire point (mirrors ``SweepPoint.label``)."""
    return "%s/%s/%s/%s/%s" % (
        wire.get("kernel", "?"), wire.get("config", "?"),
        wire.get("mode", "traditional"), wire.get("binary", "xloops"),
        wire.get("scale", "small"))


@dataclass
class QueueEntry:
    """One point somewhere between enqueue and completion."""

    qkey: str
    wire: dict
    attempts: int = 0       # requeues consumed (NOT worker-side retries)
    lease_id: int = 0       # 0 = pending, else the holding lease
    last_error: str = ""    # why the last requeue happened
    #: asyncio.Future the server attaches for client waiters; the
    #: queue never touches it (journal-replayed entries have none)
    future: object = None
    #: PointFailure set when the entry quarantines (budget exhaustion
    #: or a worker-reported failure) -- the server resolves waiters
    failure: object = None


@dataclass
class Lease:
    """One worker's claim on a batch of points."""

    lease_id: int
    worker_id: int
    qkeys: set
    deadline: float         # monotonic seconds; heartbeats extend it


@dataclass
class WorkerInfo:
    """One registered worker connection."""

    worker_id: int
    name: str
    pid: int
    jobs: int
    registered: float
    leases: set = field(default_factory=set)


class QueueJournal:
    """Append-only crash-safe record of queue transitions.

    Each line is one JSON object: ``{"op": "enqueue", "qkey": ...,
    "wire": {...}}``, ``{"op": "complete", "qkey": ...}``, or
    ``{"op": "fail", "qkey": ..., "kind": ..., "error": ...,
    "attempts": N}``.  Every append is flushed and fsync'd before the
    corresponding state transition is acknowledged, so a crash leaves
    at worst one torn final line -- which replay ignores.
    """

    def __init__(self, path):
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "ab")

    def append(self, rec):
        self._fh.write(json.dumps(
            rec, separators=(",", ":")).encode("utf-8") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        try:
            self._fh.close()
        except OSError:
            pass

    @staticmethod
    def replay(path):
        """``(pending, completed, failed)`` reconstructed from the
        journal at *path*: *pending* an ordered ``{qkey: wire}`` of
        enqueued-but-unresolved points, *completed* a set of qkeys,
        *failed* a ``{qkey: failure-record}``.  Garbage and torn lines
        are skipped -- a journal is advice about what not to redo,
        never a thing that can refuse to load."""
        enqueued = {}
        completed = set()
        failed = {}
        try:
            with open(path, "rb") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return {}, set(), {}
        for line in lines:
            try:
                rec = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue        # torn final line from a crash mid-append
            if not isinstance(rec, dict):
                continue
            op, qkey = rec.get("op"), rec.get("qkey")
            if not qkey:
                continue
            if op == "enqueue" and isinstance(rec.get("wire"), dict):
                enqueued[qkey] = rec["wire"]
            elif op == "complete":
                completed.add(qkey)
            elif op == "fail":
                failed[qkey] = rec
        pending = {k: w for k, w in enqueued.items()
                   if k not in completed and k not in failed}
        return pending, completed, failed


class WorkQueue:
    """The server-side queue + lease table (see module docstring)."""

    def __init__(self, journal_path=None, lease_ttl=DEFAULT_LEASE_TTL,
                 requeue_budget=DEFAULT_REQUEUE_BUDGET,
                 clock=time.monotonic):
        self.lease_ttl = max(0.1, float(lease_ttl))
        self.requeue_budget = max(0, int(requeue_budget))
        self._clock = clock
        self._next_worker = 0
        self._next_lease = 0
        self.pending = deque()       # qkeys awaiting a lease
        self.entries = {}            # qkey -> QueueEntry (pending|leased)
        self.completed = set()       # qkeys resolved ok (incl. replayed)
        self.failed = {}             # qkey -> PointFailure
        self.leases = {}             # lease_id -> Lease
        self.workers = {}            # worker_id -> WorkerInfo
        self.counters = {
            "enqueued": 0, "completed": 0, "duplicates": 0,
            "requeued": 0, "expired_leases": 0, "worker_losses": 0,
            "exhausted": 0, "replayed": 0, "worker_failures": 0}
        self.journal = None
        if journal_path:
            pending, done, failed = QueueJournal.replay(journal_path)
            self.journal = QueueJournal(journal_path)
            self.completed |= done
            for qkey, wire in pending.items():
                self.entries[qkey] = QueueEntry(qkey=qkey, wire=wire)
                self.pending.append(qkey)
                self.counters["replayed"] += 1
            # journaled failures stay failed: their clients saw the
            # quarantine record, and a fresh submission after a restart
            # is a fresh enqueue (below) with a fresh budget
            for qkey, rec in failed.items():
                self.failed[qkey] = PointFailure(
                    label=rec.get("label", qkey),
                    attempts=int(rec.get("attempts", 0)),
                    kind=rec.get("kind", "error"),
                    error=rec.get("error", ""))

    # -- client side (enqueue / join) -----------------------------------

    def enqueue(self, wire):
        """Queue one wire point; ``(entry, created)``.  A point
        already pending or leased is joined, not duplicated.  A point
        previously completed or failed is enqueued afresh: the server
        only enqueues after a cache miss, so reaching here again means
        the cached result is genuinely gone (or the client wants a
        quarantined point retried) and recomputation is correct."""
        qkey = qkey_of(wire)
        entry = self.entries.get(qkey)
        if entry is not None:
            return entry, False
        self.completed.discard(qkey)
        self.failed.pop(qkey, None)
        entry = QueueEntry(qkey=qkey, wire=dict(wire))
        self.entries[qkey] = entry
        self.pending.append(qkey)
        self.counters["enqueued"] += 1
        if self.journal is not None:
            self.journal.append({"op": "enqueue", "qkey": qkey,
                                 "wire": entry.wire})
        return entry, True

    @property
    def queued(self):
        """Points awaiting a lease right now."""
        return sum(1 for k in self.pending
                   if k in self.entries
                   and self.entries[k].lease_id == 0)

    # -- worker side (register / lease / heartbeat / complete) ----------

    def register_worker(self, name="", pid=0, jobs=1):
        self._next_worker += 1
        wid = self._next_worker
        self.workers[wid] = WorkerInfo(
            worker_id=wid, name=str(name or "worker-%d" % wid),
            pid=int(pid or 0), jobs=max(1, int(jobs or 1)),
            registered=self._clock())
        return wid

    def lease(self, worker_id, max_points=1):
        """Claim up to *max_points* pending points for *worker_id*;
        a :class:`Lease`, or None when nothing is pending (or the
        worker is unknown -- e.g. registered with a previous server
        incarnation)."""
        worker = self.workers.get(worker_id)
        if worker is None:
            return None
        batch = []
        while self.pending and len(batch) < max(1, int(max_points)):
            qkey = self.pending.popleft()
            entry = self.entries.get(qkey)
            if entry is None or entry.lease_id:
                continue        # resolved or re-leased while queued
            batch.append(entry)
        if not batch:
            return None
        self._next_lease += 1
        lease = Lease(lease_id=self._next_lease, worker_id=worker_id,
                      qkeys={e.qkey for e in batch},
                      deadline=self._clock() + self.lease_ttl)
        for entry in batch:
            entry.lease_id = lease.lease_id
        self.leases[lease.lease_id] = lease
        worker.leases.add(lease.lease_id)
        return lease

    def heartbeat(self, worker_id, lease_id):
        """Extend a live lease's deadline; False if the lease is gone
        (expired and reclaimed -- the worker should keep going anyway:
        its eventual completions are still honoured or deduped)."""
        lease = self.leases.get(lease_id)
        if lease is None or lease.worker_id != worker_id:
            return False
        lease.deadline = self._clock() + self.lease_ttl
        return True

    def complete(self, qkey):
        """First-writer-wins completion; ``(entry, credited)``.

        *credited* is False (and *entry* None) for a duplicate -- the
        point was already completed (or failed) by someone else and
        this late result is discarded, counted in ``duplicates``."""
        entry = self.entries.pop(qkey, None)
        if entry is None:
            self.counters["duplicates"] += 1
            return None, False
        self._unlink_lease(entry)
        self.completed.add(qkey)
        self.counters["completed"] += 1
        if self.journal is not None:
            self.journal.append({"op": "complete", "qkey": qkey})
        return entry, True

    def fail(self, qkey, kind, error, attempts=0):
        """Quarantine a point on a worker-reported failure (the
        hardened engine worker-side already exhausted its per-point
        retries); ``(entry, failure)`` or ``(None, None)`` for a
        duplicate report."""
        entry = self.entries.pop(qkey, None)
        if entry is None:
            self.counters["duplicates"] += 1
            return None, None
        self._unlink_lease(entry)
        failure = PointFailure(label=label_of(entry.wire),
                               attempts=max(1, int(attempts)),
                               kind=str(kind or "error"),
                               error=str(error or ""))
        self._record_failure(entry, failure)
        self.counters["worker_failures"] += 1
        return entry, failure

    # -- robustness (reclaim / release / requeue) -----------------------

    def reclaim_expired(self, now=None):
        """Requeue every point held by a lease past its deadline (the
        worker missed its heartbeat: hung, wedged, or partitioned);
        a list of :class:`QueueEntry` that exhausted their requeue
        budget and became failures."""
        now = self._clock() if now is None else now
        exhausted = []
        for lease in [l for l in self.leases.values()
                      if l.deadline <= now]:
            self.counters["expired_leases"] += 1
            exhausted.extend(self._break_lease(
                lease, "lease expired (missed heartbeat)"))
        return exhausted

    def release_worker(self, worker_id):
        """Forget a worker whose connection dropped, requeueing every
        point it still held; returns entries that exhausted their
        budget (now failures)."""
        worker = self.workers.pop(worker_id, None)
        if worker is None:
            return []
        exhausted = []
        if worker.leases:
            self.counters["worker_losses"] += 1
        for lease_id in list(worker.leases):
            lease = self.leases.get(lease_id)
            if lease is not None:
                exhausted.extend(self._break_lease(
                    lease, "worker connection lost"))
        return exhausted

    def _break_lease(self, lease, reason):
        """Dissolve *lease*, requeueing (or exhausting) its points."""
        exhausted = []
        self.leases.pop(lease.lease_id, None)
        worker = self.workers.get(lease.worker_id)
        if worker is not None:
            worker.leases.discard(lease.lease_id)
        for qkey in lease.qkeys:
            entry = self.entries.get(qkey)
            if entry is None or entry.lease_id != lease.lease_id:
                continue        # completed (or re-leased) meanwhile
            entry.lease_id = 0
            entry.attempts += 1
            entry.last_error = reason
            if entry.attempts > self.requeue_budget:
                self.entries.pop(qkey, None)
                failure = PointFailure(
                    label=label_of(entry.wire),
                    attempts=entry.attempts, kind="requeue-exhausted",
                    error="requeue budget (%d) exhausted; last loss: %s"
                          % (self.requeue_budget, reason))
                self._record_failure(entry, failure)
                self.counters["exhausted"] += 1
                exhausted.append(entry)
            else:
                self.pending.append(qkey)
                self.counters["requeued"] += 1
        return exhausted

    def _unlink_lease(self, entry):
        lease = self.leases.get(entry.lease_id)
        if lease is None:
            return
        lease.qkeys.discard(entry.qkey)
        if not lease.qkeys:
            self.leases.pop(lease.lease_id, None)
            worker = self.workers.get(lease.worker_id)
            if worker is not None:
                worker.leases.discard(lease.lease_id)

    def _record_failure(self, entry, failure):
        self.failed[entry.qkey] = failure
        entry.failure = failure     # for the server to resolve waiters
        if self.journal is not None:
            self.journal.append({
                "op": "fail", "qkey": entry.qkey,
                "label": failure.label, "kind": failure.kind,
                "error": failure.error, "attempts": failure.attempts})

    # -- introspection ---------------------------------------------------

    @property
    def idle(self):
        """Nothing pending, leased, or registered -- the condition an
        ``--idle-exit`` server needs before it may exit (satellite
        fix: an idle-exit server must never vanish beneath a worker
        mid-lease or strand journal-replayed work)."""
        return not self.entries and not self.leases and not self.workers

    def stats_payload(self):
        return {"queued": self.queued, "leased": len(self.leases),
                "workers": len(self.workers),
                "lease_ttl": self.lease_ttl,
                "requeue_budget": self.requeue_budget,
                "journal": self.journal.path
                if self.journal is not None else None,
                "counters": dict(self.counters)}

    def close(self):
        if self.journal is not None:
            self.journal.close()
