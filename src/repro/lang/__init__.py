"""MiniC: the annotated C subset and XLOOPS compiler (paper II-B).

Public entry point: :func:`compile_source`."""

from .lexer import CompileError, tokenize
from .parser import parse
from .sema import Sema, Symbol, analyze
from .compiler import CompiledProgram, LoopInfo, compile_source
from .codegen import CodegenOptions
from .passes.prover import (LoopProof, prove_all, prove_kernel,
                            prove_source)

__all__ = ["CompileError", "tokenize", "parse", "Sema", "Symbol",
           "analyze", "CompiledProgram", "LoopInfo", "compile_source",
           "CodegenOptions", "LoopProof", "prove_all", "prove_kernel",
           "prove_source"]
