"""Plain-text rendering helpers for the table/figure reproductions."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers, rows, title=None, floatfmt="%.2f"):
    """Render an aligned text table."""
    def fmt(cell):
        if isinstance(cell, float):
            return floatfmt % cell
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in text_rows))
              if text_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title, series):
    """Render named (label -> {x: y}) series as aligned columns (the
    textual stand-in for a figure)."""
    keys = sorted({k for points in series.values() for k in points})
    headers = ["x"] + list(series)
    rows = []
    for key in keys:
        rows.append([key] + [series[name].get(key, "")
                             for name in series])
    return render_table(headers, rows, title=title)


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
