"""Experiment runner: compile -> simulate -> verify -> collect stats.

All table/figure generators go through :func:`run`, which memoizes
results per process (one Table II sweep feeds Figs 5-8 without
re-simulating) and persists them to the content-addressed disk cache
(:mod:`repro.eval.diskcache`), so a repeated sweep -- in this process
or the next one -- skips simulation entirely."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from .. import __version__
from ..sim.backends import BACKEND_CHOICES, resolve_backend
from ..energy import MCPAT_45NM, VLSI_40NM, system_energy
from ..energy.events import EnergyEvents
from ..kernels import get_kernel
from ..lang import compile_source
from ..resilience.watchdog import DeadlineExceeded
from ..sim import LivelockError, Memory
from ..uarch import SystemSimulator
from ..uarch.lpsu import LPSUStats
from ..uarch.params import SystemConfig
from . import diskcache
from .configs import BASELINE_OF, config

#: binaries: the XLOOPS binary, the same source compiled for the GP
#: ISA, or the paper's separate serial implementation where one exists
BINARIES = ("xloops", "gp", "serial")


@dataclass
class KernelRun:
    """Everything recorded from one kernel x config x mode simulation."""

    kernel: str
    config: str
    mode: str
    binary: str
    cycles: int
    gpp_instrs: int
    lpsu_instrs: int
    energy_nj: float
    vlsi_energy_nj: float
    events: "EnergyEvents"
    lpsu_stats: LPSUStats
    specialized_invocations: int
    adaptive_decisions: Dict[int, str]
    cache_miss_rate: float
    static_xloops: Tuple[str, ...]
    #: backend-machinery counters (turbo memo hits/deaths, vector
    #: engine engagement); see SystemSimulator._backend_stats
    backend_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def total_instrs(self):
        return self.gpp_instrs + self.lpsu_instrs


@lru_cache(maxsize=None)
def _compiled(kernel_name, binary, xi_enabled, schedule_cirs=False):
    spec = get_kernel(kernel_name)
    if binary == "xloops":
        return compile_source(spec.source, xloops=True,
                              xi_enabled=xi_enabled,
                              schedule_cirs=schedule_cirs)
    if binary == "gp":
        return compile_source(spec.source, xloops=False)
    if binary == "serial":
        source = spec.serial_source or spec.source
        return compile_source(source, xloops=False)
    raise ValueError("unknown binary kind %r" % binary)


_RESULTS: Dict[tuple, KernelRun] = {}


@dataclass
class Incident:
    """A degradation the runtime absorbed instead of failing.

    Recorded (never silently swallowed) whenever :func:`run` falls
    back from the fast path to the interpreted slow path, or the sweep
    executor degrades from parallel to serial execution."""

    kind: str       # "fast-path-fallback", "parallel-to-serial", ...
    context: str    # the point/label the incident happened on
    detail: str     # the triggering error


#: process-wide incident log (appended by :func:`run`, drained by the
#: sweep executor into its summary)
_INCIDENTS: List[Incident] = []


def incidents():
    """The incidents recorded in this process so far."""
    return list(_INCIDENTS)


def drain_incidents():
    """Return and clear the incident log (sweep summaries take
    ownership of what happened during their run)."""
    out = list(_INCIDENTS)
    del _INCIDENTS[:]
    return out

#: process-wide default for :func:`run`'s *fast* parameter.  ``None``
#: means "not decided yet": the first resolution consults
#: ``$REPRO_NO_FAST`` so sweep worker processes inherit the CLI's
#: ``--no-fast`` without explicit plumbing.
_DEFAULT_FAST: Optional[bool] = None


def default_fast():
    """The *fast* value :func:`run` uses when none is passed."""
    global _DEFAULT_FAST
    if _DEFAULT_FAST is None:
        _DEFAULT_FAST = not os.environ.get("REPRO_NO_FAST")
    return _DEFAULT_FAST


def set_default_fast(value):
    """Override the process-wide fast-path default (CLI ``--no-fast``).
    Also mirrors the choice into ``$REPRO_NO_FAST`` so worker
    processes spawned later agree."""
    global _DEFAULT_FAST
    _DEFAULT_FAST = bool(value)
    if value:
        os.environ.pop("REPRO_NO_FAST", None)
    else:
        os.environ["REPRO_NO_FAST"] = "1"

#: process-wide default backend name for :func:`run`.  ``None`` means
#: "not decided yet": the first resolution consults ``$REPRO_BACKEND``
#: (and the legacy ``$REPRO_NO_FAST``, which forces ``interp``) so
#: sweep worker processes inherit the CLI's ``--backend`` choice.
_DEFAULT_BACKEND: Optional[str] = None


def default_backend():
    """The backend name :func:`run` uses when none is passed."""
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        name = os.environ.get("REPRO_BACKEND")
        if not name:
            name = "interp" if os.environ.get("REPRO_NO_FAST") else "auto"
        if name not in BACKEND_CHOICES:
            raise ValueError("$REPRO_BACKEND=%r: choose from %s"
                             % (name, "/".join(BACKEND_CHOICES)))
        _DEFAULT_BACKEND = name
    return _DEFAULT_BACKEND


def set_default_backend(name):
    """Override the process-wide backend default (CLI ``--backend``).
    Mirrors into ``$REPRO_BACKEND`` so worker processes agree."""
    global _DEFAULT_BACKEND
    if name not in BACKEND_CHOICES:
        raise ValueError("unknown backend %r (choose from %s)"
                         % (name, "/".join(BACKEND_CHOICES)))
    _DEFAULT_BACKEND = name
    os.environ["REPRO_BACKEND"] = name

#: count of actual :class:`SystemSimulator` invocations in this
#: process -- cache hits (memo or disk) don't bump it, so callers can
#: tell a served point from a simulated one
simulations = 0


def _resolve_config(config_name):
    """Accept a named platform or an ad-hoc :class:`SystemConfig`
    (the ablation benches sweep configurations that have no name)."""
    if isinstance(config_name, SystemConfig):
        return config_name
    return config(config_name)


def _fingerprint(spec, sysconfig, mode, binary, xi_enabled, scale,
                 seed, schedule_cirs, backend_name="auto", approx=0.0):
    """Content hash of everything the simulation result depends on.

    The resolved backend name and approx tolerance are part of the
    key: exact-mode backends are bit-identical, but an ``--approx``
    run is allowed to drift, so it must never be served to (or be
    served from) an exact request."""
    sources = (spec.source,
               spec.serial_source if binary == "serial" else None)
    return diskcache.cache_key(
        __version__, sources, repr(sysconfig), mode, binary,
        xi_enabled, scale, seed, schedule_cirs, backend_name, approx)


def run(kernel_name, config_name, mode="traditional", binary="xloops",
        xi_enabled=True, scale="small", seed=0, check=True,
        schedule_cirs=False, use_disk_cache=True, verify=False,
        fast=None, max_cycles=None, backend=None, approx=0.0):
    """Simulate one (kernel, platform, mode) point.

    Results are memoized in-process and persisted to the disk cache;
    either hit returns without touching the simulator.  *config_name*
    is a configuration name or a :class:`SystemConfig` instance.

    *backend* selects a rung of the simulation ladder
    (:mod:`repro.sim.backends`): ``interp``/``fused``/``turbo``/
    ``auto``; ``None`` defers to :func:`default_backend`.  The legacy
    *fast* boolean is honoured when *backend* is None and *fast* is
    not (``fast=False`` means interp).  Exact-mode backends are
    bit-identical — ``repro verify --ladder`` enforces it — but the
    cache keys still record the resolved backend and the *approx*
    tolerance, so an ``--approx`` result can never serve an exact
    request (nor vice versa).

    *check* runs the workload's architectural result check after the
    simulation.  *verify* additionally runs every specialized xloop
    under the :mod:`repro.verify` runtime invariant monitor; because a
    verified run must actually simulate (and an
    :class:`~repro.verify.InvariantViolation` must never be masked by
    an earlier unverified result), ``verify=True`` bypasses both the
    in-process memo and the disk cache, for reads *and* writes --
    verified runs are never cache-served and never pollute the cache.
    """
    global simulations
    if backend is None and fast is None:
        backend = default_backend()
    resolved = resolve_backend(backend, fast)
    if approx and not resolved.turbo:
        raise ValueError("approx=%r requires the turbo backend, not %r"
                         % (approx, resolved.name))
    key = (kernel_name, config_name, mode, binary, xi_enabled, scale,
           seed, schedule_cirs, resolved.name, approx)
    if not verify:
        hit = _RESULTS.get(key)
        if hit is not None:
            return hit

    spec = get_kernel(kernel_name)
    sysconfig = _resolve_config(config_name)
    use_disk = use_disk_cache and not verify and diskcache.enabled()
    ckey = None
    if use_disk:
        ckey = _fingerprint(spec, sysconfig, mode, binary, xi_enabled,
                            scale, seed, schedule_cirs, resolved.name,
                            approx)
        cached = diskcache.load(ckey)
        if cached is not None:
            _RESULTS[key] = cached
            return cached

    compiled = _compiled(kernel_name, binary, xi_enabled, schedule_cirs)

    def attempt(backend_now):
        # a fresh Memory/workload per attempt: a failed attempt may
        # have left memory half-written
        global simulations
        workload = spec.workload(scale, seed)
        mem = Memory()
        args = workload.apply(mem)
        sim = SystemSimulator(compiled.program, sysconfig, mem=mem,
                              verify=verify, backend=backend_now,
                              approx=approx if backend_now == resolved.name
                              else 0.0,
                              max_cycles=max_cycles)
        simulations += 1
        result = sim.run(entry=spec.entry, args=args, mode=mode)
        if check:
            workload.check(mem)
        return result

    try:
        result = attempt(resolved.name)
    except (KeyboardInterrupt, SystemExit):
        raise
    except (LivelockError, DeadlineExceeded):
        raise    # watchdog verdicts are never retried away
    except Exception as exc:
        from ..verify import InvariantViolation
        if isinstance(exc, InvariantViolation) or resolved.name == "interp":
            raise    # a violation must surface; interp has no ladder
        # graceful degradation: retry once on the interpreted
        # reference backend, and record the incident rather than
        # hiding it
        _INCIDENTS.append(Incident(
            kind="fast-path-fallback",
            context="%s/%s/%s/%s/%s" % (kernel_name, sysconfig.name,
                                        mode, binary, scale),
            detail="%s/%s: %s" % (resolved.name, type(exc).__name__,
                                  exc)))
        result = attempt("interp")

    out = KernelRun(
        kernel=kernel_name, config=sysconfig.name, mode=mode,
        binary=binary,
        cycles=result.cycles, gpp_instrs=result.gpp_instrs,
        lpsu_instrs=result.lpsu_instrs,
        energy_nj=system_energy(result, sysconfig, MCPAT_45NM),
        vlsi_energy_nj=system_energy(result, sysconfig, VLSI_40NM),
        events=result.events,
        lpsu_stats=result.lpsu_stats,
        specialized_invocations=result.specialized_invocations,
        adaptive_decisions=result.adaptive_decisions,
        cache_miss_rate=(result.cache_misses / result.cache_accesses
                         if result.cache_accesses else 0.0),
        static_xloops=compiled.loop_kinds(),
        backend_stats=result.backend_stats)
    if not verify:
        _RESULTS[key] = out
    if use_disk:
        diskcache.store(ckey, out)
    return out


def cached_result(kernel_name, config_name, mode="traditional",
                  binary="xloops", xi_enabled=True, scale="small",
                  seed=0, schedule_cirs=False, backend=None, fast=None,
                  approx=0.0):
    """The memo- or disk-cached result for this point, or None --
    never simulates.  A disk hit is installed in the in-process memo
    (and, inside :mod:`repro.eval.diskcache`, the decoded-record hot
    tier), so repeated probes are dictionary lookups.  This is the
    sweep server's cache probe: it answers "can this point be served
    right now?" without ever paying for a simulation."""
    if backend is None and fast is None:
        backend = default_backend()
    resolved = resolve_backend(backend, fast)
    key = (kernel_name, config_name, mode, binary, xi_enabled, scale,
           seed, schedule_cirs, resolved.name, approx)
    hit = _RESULTS.get(key)
    if hit is not None:
        return hit
    if not diskcache.enabled():
        return None
    spec = get_kernel(kernel_name)
    sysconfig = _resolve_config(config_name)
    ckey = _fingerprint(spec, sysconfig, mode, binary, xi_enabled,
                        scale, seed, schedule_cirs, resolved.name,
                        approx)
    cached = diskcache.load(ckey)
    if cached is not None:
        _RESULTS[key] = cached
    return cached


def seed_result(key, result):
    """Prefill the in-process memo (the sweep executor installs the
    results its workers computed, so subsequent table/figure assembly
    hits the memo)."""
    _RESULTS[key] = result


def store_result(kernel_name, config_name, result, mode="traditional",
                 binary="xloops", xi_enabled=True, scale="small",
                 seed=0, schedule_cirs=False, backend=None, fast=None,
                 approx=0.0):
    """Install *result* for this point in both the in-process memo and
    the disk cache -- the write-side twin of :func:`cached_result`.

    The distributed sweep server calls this when a remote worker ships
    a finished record back: the worker's own process already stored it
    if it shares the cache directory, but the server must not *depend*
    on that (a worker may run cache-disabled or on another filesystem),
    so completion makes the result durable server-side before it is
    credited."""
    if backend is None and fast is None:
        backend = default_backend()
    resolved = resolve_backend(backend, fast)
    key = (kernel_name, config_name, mode, binary, xi_enabled, scale,
           seed, schedule_cirs, resolved.name, approx)
    _RESULTS[key] = result
    if not diskcache.enabled():
        return
    spec = get_kernel(kernel_name)
    sysconfig = _resolve_config(config_name)
    ckey = _fingerprint(spec, sysconfig, mode, binary, xi_enabled,
                        scale, seed, schedule_cirs, resolved.name,
                        approx)
    diskcache.store(ckey, result)


def memo_key(kernel_name, config_name, mode="traditional",
             binary="xloops", xi_enabled=True, scale="small", seed=0,
             schedule_cirs=False, backend=None, fast=None, approx=0.0):
    """The in-process memo key :func:`run` uses for these arguments."""
    if backend is None and fast is None:
        backend = default_backend()
    resolved = resolve_backend(backend, fast)
    return (kernel_name, config_name, mode, binary, xi_enabled, scale,
            seed, schedule_cirs, resolved.name, approx)


def baseline_run(kernel_name, config_name, scale="small", seed=0):
    """The paper's denominator: the serial/GP binary executed
    traditionally on the platform's baseline GPP."""
    spec = get_kernel(kernel_name)
    binary = "serial" if spec.serial_source else "gp"
    return run(kernel_name, BASELINE_OF[config_name],
               mode="traditional", binary=binary, scale=scale, seed=seed)


def speedup(kernel_name, config_name, mode, scale="small", seed=0,
            **run_kw):
    """Speedup of (config, mode) over the baseline GPP (Table II
    normalization)."""
    base = baseline_run(kernel_name, config_name, scale, seed)
    this = run(kernel_name, config_name, mode=mode, scale=scale,
               seed=seed, **run_kw)
    return base.cycles / this.cycles


def energy_efficiency(kernel_name, config_name, mode, scale="small",
                      seed=0, table="mcpat", **run_kw):
    """Energy efficiency (baseline energy / this energy, Fig 8)."""
    base = baseline_run(kernel_name, config_name, scale, seed)
    this = run(kernel_name, config_name, mode=mode, scale=scale,
               seed=seed, **run_kw)
    if table == "vlsi":
        return base.vlsi_energy_nj / this.vlsi_energy_nj
    return base.energy_nj / this.energy_nj


def clear_cache(keep_disk=False, keep_memos=False):
    """Forget all memoized results, compiled binaries, and the turbo/
    vector backends' process-wide engine state.  Also wipes the
    on-disk result cache unless *keep_disk* is true; *keep_memos*
    preserves the turbo schedule memos and vector engines (used by
    benches to time a warm re-run without the result cache
    short-circuiting it)."""
    from ..sim import turbo, vector
    _RESULTS.clear()
    _compiled.cache_clear()
    if not keep_memos:
        turbo.clear()
        vector.clear()
    if not keep_disk:
        diskcache.clear()
