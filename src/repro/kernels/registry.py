"""Registry of all Table II / Table IV application kernels."""

from __future__ import annotations

from .base import KernelSpec
from .sources_db import BFS_DB, BFS_UC, DB_KERNELS, DB_TRANSFORMED, QSORT_DB, QSORT_UC
from .sources_om import (DYNPROG, KNN, KSACK_LG, KSACK_SM, MM, OM_KERNELS,
                         STENCIL)
from .sources_or import (ADPCM, COVAR, DITHER_OR, DITHER_OR_OPT, DITHER_UC,
                         KMEANS_OR, KMEANS_UC, OR_KERNELS, OR_OPT_KERNELS,
                         SHA, SHA_OPT, UC_TRANSFORMED)
from .sources_ua import (BTREE, HSORT, HUFFMAN, RSORT_UA, RSORT_UC,
                         UA_KERNELS, UA_TRANSFORMED)
from .sources_ext import EXTENSION_KERNELS, SSEARCH_DE
from .sources_turbo import TURBO_KERNELS
from .sources_vector import VECTOR_KERNELS
from .sources_uc import (RGB2CMYK, SGEMM, SSEARCH, SYMM_OR, SYMM_UC,
                         UC_KERNELS, VITERBI, WAR_OM, WAR_UC)

# adpcm-or-opt: the paper hand-schedules the compiler output; our
# source-level analogue (a) clamps into temporaries so the *final* CIR
# writes are unconditional -- a conditionally-skipped last-CIR-write
# only forwards at iteration end (Section II-D) -- and (b) orders the
# index update before the valpred update.
ADPCM_OPT_SRC = ADPCM.source.replace(
    """        if (sign) { valpred = valpred - vpdiff; }
        else { valpred = valpred + vpdiff; }
        if (valpred > 32767) { valpred = 32767; }
        if (valpred < -32768) { valpred = -32768; }
        index = index + itab[delta];
        if (index < 0) { index = 0; }
        if (index > 56) { index = 56; }
        out[i] = (char)(delta | sign);""",
    """        int ni = index + itab[delta];
        if (ni < 0) { ni = 0; }
        if (ni > 56) { ni = 56; }
        index = ni;
        int nv = valpred + vpdiff;
        if (sign) { nv = valpred - vpdiff; }
        if (nv > 32767) { nv = 32767; }
        if (nv < -32768) { nv = -32768; }
        valpred = nv;
        out[i] = (char)(delta | sign);""")
assert ADPCM_OPT_SRC != ADPCM.source

ADPCM_OPT = KernelSpec(
    name="adpcm-or-opt", suite="M", loop_types=("or",),
    source=ADPCM_OPT_SRC, entry="adpcm", make=ADPCM.make,
    description="adpcm-or with CIR updates scheduled before the store")

#: the 25 Table II kernels, in the paper's order
TABLE2_KERNELS = (
    RGB2CMYK, SGEMM, SSEARCH, SYMM_UC, VITERBI, WAR_UC,
    ADPCM, COVAR, DITHER_OR, KMEANS_OR, SHA, SYMM_OR,
    DYNPROG, KNN, KSACK_SM, KSACK_LG, WAR_OM,
    MM, STENCIL,
    BTREE, HSORT, HUFFMAN, RSORT_UA,
    BFS_DB, QSORT_DB,
)

#: Table IV case-study kernels: hand-optimized or + loop transformations
TABLE4_KERNELS = (
    ADPCM_OPT, DITHER_OR_OPT, SHA_OPT,
    BFS_UC, DITHER_UC, KMEANS_UC, QSORT_UC, RSORT_UC,
)

#: kernels exercising this reproduction's extensions (not in the paper)
ALL_KERNELS = TABLE2_KERNELS + TABLE4_KERNELS + EXTENSION_KERNELS \
    + TURBO_KERNELS + VECTOR_KERNELS

KERNELS = {spec.name: spec for spec in ALL_KERNELS}


def get_kernel(name):
    """Look up a kernel spec by its Table II/IV name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError("unknown kernel %r (known: %s)"
                       % (name, ", ".join(sorted(KERNELS))))
