"""Lexer / parser / sema tests for MiniC."""

import pytest

from repro.lang import CompileError, parse, tokenize
from repro.lang.ast_nodes import (Assign, Binary, Decl, For, If, IntLit,
                                  Return, While)
from repro.lang.sema import Sema


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("int x = 42;")
        kinds = [t.kind for t in toks]
        assert kinds == ["kw", "ident", "op", "int", "op", "eof"]
        assert toks[3].value == 42

    def test_hex_and_char_literals(self):
        toks = tokenize("0xff 'A' '\\n'")
        assert toks[0].value == 255
        assert toks[1].value == 65
        assert toks[2].value == 10

    def test_float_literals(self):
        toks = tokenize("1.5 2.0f .25 1e3")
        assert [t.value for t in toks[:-1]] == [1.5, 2.0, 0.25, 1000.0]
        assert all(t.kind == "float" for t in toks[:-1])

    def test_comments_stripped(self):
        toks = tokenize("a // line\n b /* block\n comment */ c")
        assert [t.text for t in toks[:-1]] == ["a", "b", "c"]

    def test_pragma_token(self):
        toks = tokenize("#pragma xloops ordered\nfor")
        assert toks[0].kind == "pragma"
        assert "ordered" in toks[0].text

    def test_multichar_operators(self):
        toks = tokenize("a <= b && c << 2")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<=", "&&", "<<"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("int @x;")


def _parse_fn(body, params="int* a, int n"):
    return parse("void f(%s) { %s }" % (params, body)).functions[0]


class TestParser:
    def test_function_signature(self):
        unit = parse("int add2(int x, float* p) { return x; }")
        fn = unit.functions[0]
        assert fn.name == "add2"
        assert str(fn.return_type) == "int"
        assert [str(p.type) for p in fn.params] == ["int", "float*"]

    def test_precedence(self):
        fn = _parse_fn("int x = 1 + 2 * 3;")
        init = fn.body[0].init
        assert isinstance(init, Binary) and init.op == "+"
        assert init.right.op == "*"

    def test_parentheses_override(self):
        fn = _parse_fn("int x = (1 + 2) * 3;")
        init = fn.body[0].init
        assert init.op == "*"
        assert init.left.op == "+"

    def test_compound_assign_desugars(self):
        fn = _parse_fn("n += 2;", params="int n")
        stmt = fn.body[0]
        assert isinstance(stmt, Assign)
        assert stmt.value.op == "+"
        assert stmt.value.right.value == 2

    def test_increment_desugars(self):
        fn = _parse_fn("n++;", params="int n")
        stmt = fn.body[0]
        assert isinstance(stmt, Assign)
        assert stmt.value.op == "+" and stmt.value.right.value == 1

    def test_for_loop_parts(self):
        fn = _parse_fn("for (int i = 0; i < n; i++) { a[i] = 0; }")
        loop = fn.body[0]
        assert isinstance(loop, For)
        assert isinstance(loop.init, Decl)
        assert loop.cond.op == "<"
        assert len(loop.body) == 1

    def test_pragma_attaches_to_for(self):
        fn = _parse_fn(
            "#pragma xloops unordered\nfor (int i = 0; i < n; i++) {}")
        assert fn.body[0].annotation == "unordered"

    def test_pragma_must_precede_for(self):
        with pytest.raises(CompileError):
            _parse_fn("#pragma xloops unordered\nint x = 0;")

    def test_unknown_annotation(self):
        with pytest.raises(CompileError):
            _parse_fn("#pragma xloops sideways\n"
                      "for (int i = 0; i < n; i++) {}")

    def test_dangling_else(self):
        fn = _parse_fn("if (n) if (n > 1) n = 2; else n = 3;",
                       params="int n")
        outer = fn.body[0]
        assert isinstance(outer, If)
        inner = outer.then[0]
        assert inner.orelse  # else binds to the inner if

    def test_while_break_continue(self):
        fn = _parse_fn("while (n) { if (n == 2) break; continue; }",
                       params="int n")
        assert isinstance(fn.body[0], While)

    def test_array_declaration(self):
        fn = _parse_fn("int hist[16];")
        decl = fn.body[0]
        assert decl.array_size == 16

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            parse("void f() { int x = 1;")

    def test_cast_vs_parenthesized(self):
        fn = _parse_fn("float y = (float)n; int z = (n) + 1;",
                       params="int n")
        from repro.lang.ast_nodes import Cast
        assert isinstance(fn.body[0].init, Cast)
        assert isinstance(fn.body[1].init, Binary)


def _sema(src):
    unit = parse(src)
    Sema(unit).run()
    return unit


class TestSema:
    def test_resolves_and_types(self):
        unit = _sema("int f(int x) { int y = x + 1; return y; }")
        decl = unit.functions[0].body[0]
        assert str(decl.init.type) == "int"

    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared"):
            _sema("void f() { x = 1; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(CompileError, match="redeclaration"):
            _sema("void f() { int x = 1; int x = 2; }")

    def test_shadowing_in_inner_scope_ok(self):
        _sema("void f() { int x = 1; if (x) { int x = 2; x = 3; } }")

    def test_float_int_mixing_rejected(self):
        with pytest.raises(CompileError, match="cast"):
            _sema("void f(float y, int x) { float z = y + x; }")

    def test_float_literal_coercion(self):
        _sema("void f() { float y = 0; float z = y * 2; }")

    def test_indexing_non_pointer(self):
        with pytest.raises(CompileError, match="indexing"):
            _sema("void f(int x) { int y = x[0]; }")

    def test_char_loads_are_int(self):
        unit = _sema("int f(char* s) { return s[0] + 1; }")

    def test_amo_signature(self):
        _sema("void f(int* a, int i) { int old = amo_add(&a[i], 1); }")
        with pytest.raises(CompileError):
            _sema("void f(int* a) { amo_add(a[0], 1); }")

    def test_amo_pointer_arg(self):
        _sema("void f(int* p) { int old = amo_add(p, 1); }")

    def test_call_arity_checked(self):
        with pytest.raises(CompileError, match="arguments"):
            _sema("int g(int x) { return x; } void f() { g(1, 2); }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            _sema("void f() { missing(); }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(CompileError):
            _sema("void f() { int b[4]; b = 0; }")

    def test_float_condition_rejected(self):
        with pytest.raises(CompileError):
            _sema("void f(float x) { if (x) { } }")

    def test_return_type_checked(self):
        with pytest.raises(CompileError):
            _sema("int f(float y) { return y; }")
