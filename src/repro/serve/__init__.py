"""Sweep-as-a-service: the async result server and its client.

See :mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.server` for the asyncio server (global in-flight
dedup over a bounded hardened worker pool), and
:mod:`repro.serve.client` for the synchronous client the CLI and the
speed bench use.  ``docs/SERVICE.md`` is the operator guide.
"""

from .client import ServeClient, connect
from .protocol import DEFAULT_PORT, PROTOCOL_VERSION, ProtocolError, \
    parse_address
from .server import ServerThread, SweepServer

__all__ = [
    "DEFAULT_PORT", "PROTOCOL_VERSION", "ProtocolError", "ServeClient",
    "ServerThread", "SweepServer", "connect", "parse_address",
]
