"""The simulation backend ladder: ``interp`` -> ``fused`` -> ``turbo``.

Every tier simulates the same machine and must produce bit-identical
results (cycles, energy events, final memory); they differ only in how
much per-cycle interpretation they elide:

``interp``
    The reference path: per-instruction decoded handlers, per-cycle
    LPSU stepping.  Slowest, structurally closest to the paper's
    description; verification and fault injection always run here.
``fused``
    Superblock fusion (:mod:`repro.sim.fusion`): exec-compiled GPP
    basic blocks and the compiled fused-lane LPSU engine.  Same
    schedule, less dispatch.
``turbo``
    Everything in ``fused`` plus steady-state recurrence extraction
    (:mod:`repro.sim.turbo`): recorded iteration-schedule segments are
    exec-compiled into straight-line batch steppers and whole epochs
    are replayed per call, validated live against branch directions
    and cache hit/miss outcomes.

``auto`` resolves to the highest tier (``turbo``, or ``fused`` when
``REPRO_NO_TURBO`` is set).  ``repro verify --ladder`` enforces the
bit-identity contract pairwise across all three tiers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: names accepted anywhere a backend is selected
BACKEND_CHOICES = ("auto", "interp", "fused", "turbo")


@dataclass(frozen=True)
class Backend:
    """One rung of the simulation-backend ladder."""

    name: str
    fast: bool    # fused superblocks + LPSU engine enabled
    turbo: bool   # steady-state segment compilation enabled
    description: str


BACKENDS = {
    "interp": Backend(
        "interp", False, False,
        "per-instruction reference interpreter"),
    "fused": Backend(
        "fused", True, False,
        "superblock fusion + compiled LPSU lane engine"),
    "turbo": Backend(
        "turbo", True, True,
        "fused + compiled steady-state schedule replay"),
}


def resolve_backend(name=None, fast=None):
    """Resolve a backend selection to a :class:`Backend`.

    *name* may be any of :data:`BACKEND_CHOICES` or None.  When None,
    the legacy ``fast`` boolean decides (``False`` -> interp,
    otherwise auto).  ``auto`` resolves to turbo unless the
    ``REPRO_NO_TURBO`` environment hatch demotes it to fused (the
    ``REPRO_NO_FAST`` hatch is honoured upstream by the callers that
    own a default, e.g. :func:`repro.eval.runner.default_backend`).
    """
    if name is None:
        name = "interp" if fast is False else "auto"
    if name == "auto":
        name = "fused" if os.environ.get("REPRO_NO_TURBO") else "turbo"
    b = BACKENDS.get(name)
    if b is None:
        raise ValueError("unknown backend %r (choose from %s)"
                         % (name, "/".join(BACKEND_CHOICES)))
    return b
