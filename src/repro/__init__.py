"""repro — a full-system reproduction of *Architectural Specialization
for Inter-Iteration Loop Dependence Patterns* (XLOOPS, MICRO 2014).

Top-level convenience API::

    from repro import assemble, run_program, compile_source
    from repro.eval import run_kernel, CONFIGS

Subpackages
-----------
isa      instruction set + xloop dependence-pattern taxonomy
asm      assembler / disassembler
lang     annotated-C (MiniC) compiler with XLOOPS passes
sim      memory + functional golden model
uarch    cycle-level GPP (in-order, OOO) and LPSU models
energy   McPAT-style event-based energy model
vlsi     Table V area/timing model and Fig 10 VLSI energy model
kernels  the paper's 25 application kernels + datasets + goldens
eval     experiment harness regenerating every table and figure
"""

from .asm import assemble
from .sim import run_program

__version__ = "0.10.0"

__all__ = ["assemble", "run_program", "compile_source", "__version__"]


def compile_source(source, **kwargs):
    """Compile annotated MiniC *source* into an assembled Program.

    Thin wrapper over :func:`repro.lang.compiler.compile_source`,
    imported lazily to keep ``import repro`` light.
    """
    from .lang.compiler import compile_source as _compile
    return _compile(source, **kwargs)
