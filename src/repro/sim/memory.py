"""Flat byte-addressed memory with atomic-memory-operation support.

The address space is sparse (paged) so the stack can live far above the
heap without allocating the gap.  All values are stored little-endian.
Register-width values are canonically unsigned 32-bit Python ints.

The same object backs the functional golden model, the GPP timing
models, and the LPSU lanes; speculative lanes interpose a load-store
queue (:class:`repro.uarch.lpsu.LoadStoreQueue`) in front of it.
"""

from __future__ import annotations

import struct

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_F32 = struct.Struct("<f")
_U32 = struct.Struct("<I")

MASK32 = 0xFFFFFFFF


def to_u32(value):
    """Truncate a Python int to canonical unsigned 32-bit."""
    return value & MASK32


def to_s32(value):
    """Interpret an unsigned 32-bit value as signed."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def f32_to_bits(value):
    """IEEE-754 single bits of a Python float (round-to-nearest)."""
    try:
        return _U32.unpack(_F32.pack(value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def bits_to_f32(bits):
    """Python float holding the value of IEEE-754 single *bits*."""
    return _F32.unpack(_U32.pack(bits & MASK32))[0]


class MemoryError_(Exception):
    """Access outside initialized behaviour (we still allow it by
    default: unwritten memory reads as zero)."""


class Memory:
    """Sparse paged memory."""

    __slots__ = ("_pages",)

    def __init__(self):
        self._pages = {}

    # -- page plumbing ------------------------------------------------------

    def _page(self, addr):
        key = addr >> PAGE_SHIFT
        page = self._pages.get(key)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[key] = page
        return page

    # -- scalar access -------------------------------------------------------

    def load_word(self, addr):
        """Unsigned 32-bit load (word-aligned fast path)."""
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            page = self._page(addr)
            return (page[off] | (page[off + 1] << 8)
                    | (page[off + 2] << 16) | (page[off + 3] << 24))
        return int.from_bytes(self.read(addr, 4), "little")

    def store_word(self, addr, value):
        off = addr & PAGE_MASK
        value &= MASK32
        if off <= PAGE_SIZE - 4:
            page = self._page(addr)
            page[off] = value & 0xFF
            page[off + 1] = (value >> 8) & 0xFF
            page[off + 2] = (value >> 16) & 0xFF
            page[off + 3] = (value >> 24) & 0xFF
        else:
            self.write(addr, value.to_bytes(4, "little"))

    def load(self, addr, size, signed=False):
        """Load 1/2/4 bytes; returns canonical u32 (sign-extended if
        *signed*)."""
        if size == 4:
            value = self.load_word(addr)
        elif size == 1:
            value = self._page(addr)[addr & PAGE_MASK]
        else:
            value = int.from_bytes(self.read(addr, size), "little")
        if signed:
            sign = 1 << (8 * size - 1)
            if value & sign:
                value = value - (sign << 1)
        return to_u32(value)

    def store(self, addr, size, value):
        if size == 4:
            self.store_word(addr, value)
        elif size == 1:
            self._page(addr)[addr & PAGE_MASK] = value & 0xFF
        else:
            self.write(addr, (value & ((1 << (8 * size)) - 1))
                       .to_bytes(size, "little"))

    # -- atomic memory operations (paper Section II-A) ------------------------

    def amo(self, kind, addr, value):
        """Perform an AMO; returns the *old* word at *addr*."""
        old = self.load_word(addr)
        value = to_u32(value)
        if kind == "amo.add":
            new = to_u32(old + value)
        elif kind == "amo.and":
            new = old & value
        elif kind == "amo.or":
            new = old | value
        elif kind == "amo.xor":
            new = old ^ value
        elif kind == "amo.min":
            new = old if to_s32(old) <= to_s32(value) else value
        elif kind == "amo.max":
            new = old if to_s32(old) >= to_s32(value) else value
        elif kind == "amo.xchg":
            new = value
        else:
            raise ValueError("unknown AMO %r" % kind)
        self.store_word(addr, new)
        return old

    # -- bulk access (program load, dataset setup, result readback) ----------

    def read(self, addr, length):
        out = bytearray()
        while length:
            off = addr & PAGE_MASK
            take = min(length, PAGE_SIZE - off)
            out += self._page(addr)[off:off + take]
            addr += take
            length -= take
        return bytes(out)

    def write(self, addr, payload):
        view = memoryview(bytes(payload))
        while view.nbytes:
            off = addr & PAGE_MASK
            take = min(view.nbytes, PAGE_SIZE - off)
            self._page(addr)[off:off + take] = view[:take]
            addr += take
            view = view[take:]

    # -- typed convenience helpers ---------------------------------------------

    def write_words(self, addr, values):
        for i, v in enumerate(values):
            self.store_word(addr + 4 * i, int(v))

    def read_words(self, addr, count):
        return [self.load_word(addr + 4 * i) for i in range(count)]

    def read_words_signed(self, addr, count):
        return [to_s32(w) for w in self.read_words(addr, count)]

    def write_floats(self, addr, values):
        for i, v in enumerate(values):
            self.store_word(addr + 4 * i, f32_to_bits(float(v)))

    def read_floats(self, addr, count):
        return [bits_to_f32(w) for w in self.read_words(addr, count)]

    def write_bytes(self, addr, values):
        self.write(addr, bytes(bytearray(v & 0xFF for v in values)))

    def read_bytes(self, addr, count):
        return list(self.read(addr, count))

    def load_program(self, program):
        """Place a Program's data image (text is fetched symbolically)."""
        if program.data:
            self.write(program.data_base, program.data)

    def snapshot_words(self, addr, count):
        """Immutable tuple snapshot (for test assertions)."""
        return tuple(self.read_words(addr, count))

    # -- whole-memory operations (the runtime verifier's shadow copy) ---------

    def clone(self):
        """Independent deep copy of the full address space."""
        other = Memory()
        other._pages = {key: bytearray(page)
                        for key, page in self._pages.items()}
        return other

    def pages_equal(self, other):
        """Content equality; pages absent on one side compare as zeros
        (reads allocate zero-filled pages, so allocation history must
        not affect equality)."""
        zeros = bytes(PAGE_SIZE)
        for key in self._pages.keys() | other._pages.keys():
            a = self._pages.get(key) or zeros
            b = other._pages.get(key) or zeros
            if bytes(a) != bytes(b):
                return False
        return True

    def fingerprint(self):
        """SHA-256 over the canonical content of the address space.

        All-zero pages are skipped, so allocation history (reads
        allocate zero-filled pages) does not affect the digest: two
        memories compare equal under :meth:`pages_equal` iff their
        fingerprints match.
        """
        import hashlib
        h = hashlib.sha256()
        zeros = bytes(PAGE_SIZE)
        for key in sorted(self._pages):
            page = bytes(self._pages[key])
            if page == zeros:
                continue
            h.update(key.to_bytes(8, "little"))
            h.update(page)
        return h.hexdigest()

    def first_difference(self, other):
        """Lowest byte address where the two memories differ, or None
        (diagnostic companion to :meth:`pages_equal`)."""
        zeros = bytes(PAGE_SIZE)
        for key in sorted(self._pages.keys() | other._pages.keys()):
            a = self._pages.get(key) or zeros
            b = other._pages.get(key) or zeros
            for off in range(PAGE_SIZE):
                if a[off] != b[off]:
                    return (key << PAGE_SHIFT) | off
        return None
