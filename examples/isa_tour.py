"""ISA tour (paper Fig 1): each inter-iteration dependence pattern as
hand-written assembly, executed specialized on the LPSU with a
per-cycle lane trace so the machinery is visible.

Run:  python examples/isa_tour.py
"""

from repro.asm import assemble
from repro.sim import Memory
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate
from repro.uarch.tracelog import trace_specialized

A, B, N = 0x100000, 0x200000, 24

EXAMPLES = [
    ("Fig 1(a) xloop.uc — element-wise multiply, addiu.xi pointers", """
main:                       # a0=x, a1=out, a2=n
    li   t0, 0
    mv   t1, a0             # MIV: source pointer
    mv   t2, a1             # MIV: destination pointer
    ble  a2, zero, done
body:
    lw   t3, 0(t1)
    mul  t3, t3, t3
    sw   t3, 0(t2)
    addiu.xi t1, t1, 4
    addiu.xi t2, t2, 4
    addi t0, t0, 1
    xloop.uc t0, a2, body
done:
    ret
"""),
    ("Fig 1(b) xloop.or — prefix sum through a CIR", """
main:                       # a0=x, a1=out, a2=n
    li   t0, 0
    li   t5, 0              # CIR accumulator
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    add  t5, t5, t3
    add  t4, a1, t1
    sw   t5, 0(t4)
    addi t0, t0, 1
    xloop.or t0, a2, body
done:
    ret
"""),
    ("Fig 1(c) xloop.om — recurrence ordered through memory", """
main:                       # a0=x, a1=out (out[0] preset), a2=n
    li   t0, 1
    li   t6, 1
    bge  t6, a2, done
body:
    slli t1, t0, 2
    add  t2, a1, t1
    lw   t3, -4(t2)         # out[i-1]: written by the previous iter
    slli t4, t0, 2
    add  t4, a0, t4
    lw   t5, 0(t4)
    add  t3, t3, t5
    sw   t3, 0(t2)
    addi t0, t0, 1
    xloop.om t0, a2, body
done:
    ret
"""),
    ("Fig 1(d) xloop.ua — atomic histogram updates", """
main:                       # a0=data, a1=hist, a2=n
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    slli t3, t3, 2
    add  t4, a1, t3
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)          # whole iteration appears atomic
    addi t0, t0, 1
    xloop.ua t0, a2, body
done:
    ret
"""),
    ("Fig 1(e) xloop.uc.db — worklist with a growing bound", """
main:                       # a0=worklist, a1=tailptr
    li   t0, 0
    lw   t6, 0(a1)          # bound = tail
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)          # v = wl[i]
    li   t4, 6
    bge  t3, t4, nopush
    li   t4, 1
    amo.add t4, t4, (a1)    # reserve a slot
    addi t5, t3, 1
    slli t1, t4, 2
    add  t1, a0, t1
    sw   t5, 0(t1)          # wl[slot] = v + 1
nopush:
    lw   t6, 0(a1)          # monotonically growing bound
    addi t0, t0, 1
    xloop.uc.db t0, t6, body
done:
    ret
"""),
    ("extension: xloop.uc.de — first-match search with xloop.break", """
main:                       # a0=data, a1=n, a2=needle
    li   t0, 0
    li   t1, -1
    ble  a1, zero, done
body:
    slli t2, t0, 2
    add  t3, a0, t2
    lw   t4, 0(t3)
    bne  t4, a2, miss
    mv   t1, t0
    xloop.break done
miss:
    addi t0, t0, 1
    xloop.uc.de t0, a1, body
done:
    mv   a0, t1
    ret
"""),
]


def setup_memory(title, mem):
    if "worklist" in title:
        mem.write_words(A, [0] + [0xFFFFFFFF] * 63)
        mem.store_word(B, 1)
        return [A, B]
    if "histogram" in title:
        mem.write_words(A, [(i * 3) % 8 for i in range(N)])
        return [A, B, N]
    if "search" in title:
        mem.write_words(A, list(range(100, 100 + N)))
        return [A, N, 100 + N // 2]
    mem.write_words(A, range(N))
    if "recurrence" in title:
        mem.store_word(B, 0)
    return [A, B, N]


def main():
    iox = SystemConfig("io+x", IO, lpsu=LPSUConfig())
    for title, asm in EXAMPLES:
        print("=" * 72)
        print(title)
        prog = assemble(asm)
        mem = Memory()
        args = setup_memory(title, mem)
        result = simulate(prog, iox, entry="main", args=args, mem=mem,
                          mode="specialized")
        print("  cycles=%d  lpsu iterations=%d  squashes=%d"
              % (result.cycles, result.lpsu_stats.iterations,
                 result.lpsu_stats.squashes))
        mem2 = Memory()
        args2 = setup_memory(title, mem2)
        trace, _ = trace_specialized(prog, "main", args2, mem2)
        print(trace.render(width=72))
    print("=" * 72)


if __name__ == "__main__":
    main()
