"""Regenerate paper Fig 6: the specialized-execution lane-cycle
breakdown on io+x (busy / RAW / memory-port / LLFU / CIB / LSQ /
commit / squash / idle).

Expected shape: uc kernels are mostly busy with memory-port stalls;
or kernels show CIB stalls; om/ua kernels show LSQ + commit stalls and
squashes (ksack-sm >> ksack-lg).
"""

from conftest import run_once

from repro.eval import render_fig6
from repro.eval.figures import fig6_data


def test_fig6(benchmark):
    data = run_once(benchmark, fig6_data, scale="small")
    print()
    print(render_fig6(data))
    assert data["sha-or"]["cib"] > data["rgb2cmyk-uc"]["cib"]
    assert (data["ksack-sm-om"]["squashes"]
            >= data["ksack-lg-om"]["squashes"])
