"""Microarchitectural event counters used for energy accounting.

The timing models increment these; :mod:`repro.energy.mcpat` prices
them (McPAT-style event-based accounting, Section IV-A).  Keeping
counting separate from pricing lets the VLSI evaluation (Fig 10) reuse
the same counts with a different per-event table.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class EnergyEvents:
    """Integer event counters.  All fields default to zero; adding a
    field automatically extends pricing, addition, and reporting."""

    # frontend
    ic_access: int = 0        # GPP instruction-cache fetch
    ib_write: int = 0         # LPSU instruction-buffer write (scan)
    ib_read: int = 0          # LPSU instruction-buffer read (lane fetch)
    rename: int = 0           # scan-phase register rename (amortized)
    bpred: int = 0            # branch predictor lookup
    # register file
    rf_read: int = 0
    rf_write: int = 0
    # execution
    alu_op: int = 0
    mul_op: int = 0
    div_op: int = 0
    fpu_op: int = 0
    fdiv_op: int = 0
    miv_mul: int = 0          # xi mutual-induction multiply (narrow; we
    #                           conservatively price it as a 32-bit mul)
    # memory hierarchy
    dc_access: int = 0
    dc_miss: int = 0
    lsq_search: int = 0       # associative LSQ lookup / broadcast compare
    lsq_write: int = 0
    # cross-iteration communication (priced as extra RF events + wires)
    cib_read: int = 0
    cib_write: int = 0
    # OOO overheads (per dispatched instruction)
    rob_op: int = 0
    iq_op: int = 0
    ooo_rename: int = 0
    # LPSU bookkeeping
    idq_op: int = 0
    squashed_instr: int = 0   # work thrown away on a memory violation

    def add(self, other):
        """Accumulate *other* into self (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name)
                    + getattr(other, f.name))
        return self

    def copy(self):
        out = EnergyEvents()
        out.add(self)
        return out

    def as_dict(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_events(self):
        return sum(self.as_dict().values())

    def __repr__(self):
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return "EnergyEvents(%s)" % nonzero
