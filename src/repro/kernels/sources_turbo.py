"""Long steady-state streaming kernels (turbo-backend headliners).

These are not Table II kernels: they are deliberately long, branch-free
``xloop.uc`` streaming loops whose iteration schedules reach a steady
state within a few epochs and then repeat for thousands of iterations.
That is exactly the shape the turbo backend's compiled segment replay
is built for, so these kernels anchor the per-backend speed benchmark
(``benchmarks/bench_speed.py``) and the backend-ladder conformance
sweep.  Their ``large`` scales intentionally exceed the L1 (unlike the
Table II datasets) — a streaming kernel's steady state includes its
periodic cache misses.

All float workloads use small dyadic operands (multiples of 0.25), so
every product and sum is exactly representable in binary32 and the
pure-Python golden models compare exactly.
"""

from __future__ import annotations

from .base import KernelSpec, Workload, region, rng_for, scale_select

MASK32 = 0xFFFFFFFF

# ---------------------------------------------------------------------------
# vvadd-uc: elementwise integer vector add
# ---------------------------------------------------------------------------

VVADD_SRC = """
void vvadd(int* x, int* y, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        z[i] = x[i] + y[i];
    }
}
"""


def _vvadd_make(scale, seed):
    n = scale_select(scale, 48, 4096, 262144)
    rng = rng_for(seed, "vvadd")
    x = [rng.randrange(1 << 31) for _ in range(n)]
    y = [rng.randrange(1 << 31) for _ in range(n)]
    # each array spans up to 4 region slots (262144 words) at large
    # scale, so space them 4 slots apart
    xa, ya, za = region(0), region(4), region(8)

    def init(mem):
        mem.write_words(xa, x)
        mem.write_words(ya, y)

    def verify(mem):
        got = mem.read_words(za, n)
        for i in range(n):
            assert got[i] == (x[i] + y[i]) & MASK32, i

    return Workload(args=[xa, ya, za, n], init=init, verify=verify)


VVADD = KernelSpec(
    name="vvadd-uc", suite="C", loop_types=("uc",),
    source=VVADD_SRC, entry="vvadd", make=_vvadd_make,
    description="elementwise integer vector add (steady-state stream)")

# ---------------------------------------------------------------------------
# saxpy-uc: single-precision a*x + y
# ---------------------------------------------------------------------------

SAXPY_SRC = """
void saxpy(float a, float* x, float* y, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
"""


def _saxpy_make(scale, seed):
    n = scale_select(scale, 48, 4096, 131072)
    rng = rng_for(seed, "saxpy")
    a = 1.5
    x = [rng.randrange(-64, 65) * 0.25 for _ in range(n)]
    y = [rng.randrange(-64, 65) * 0.5 for _ in range(n)]
    # 131072 words fill two region slots each at large scale
    xa, ya = region(0), region(2)

    def init(mem):
        mem.write_floats(xa, x)
        mem.write_floats(ya, y)

    def verify(mem):
        got = mem.read_floats(ya, n)
        for i in range(n):
            assert got[i] == a * x[i] + y[i], i

    from ..sim.memory import f32_to_bits
    return Workload(args=[f32_to_bits(a), xa, ya, n],
                    init=init, verify=verify)


SAXPY = KernelSpec(
    name="saxpy-uc", suite="C", loop_types=("uc",),
    source=SAXPY_SRC, entry="saxpy", make=_saxpy_make,
    description="single-precision a*x+y (steady-state stream)")

# ---------------------------------------------------------------------------
# vvdiv-uc: elementwise integer divide (long-latency LLFU stream)
# ---------------------------------------------------------------------------

VVDIV_SRC = """
void vvdiv(int* x, int* y, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        z[i] = x[i] / y[i];
    }
}
"""


def _vvdiv_make(scale, seed):
    n = scale_select(scale, 48, 4096, 131072)
    rng = rng_for(seed, "vvdiv")
    x = [rng.randrange(1 << 30) for _ in range(n)]
    y = [rng.randrange(1, 97) for _ in range(n)]
    # 131072 words fill two region slots each at large scale
    xa, ya, za = region(0), region(2), region(4)

    def init(mem):
        mem.write_words(xa, x)
        mem.write_words(ya, y)

    def verify(mem):
        got = mem.read_words(za, n)
        for i in range(n):
            assert got[i] == x[i] // y[i], i

    return Workload(args=[xa, ya, za, n], init=init, verify=verify)


VVDIV = KernelSpec(
    name="vvdiv-uc", suite="C", loop_types=("uc",),
    source=VVDIV_SRC, entry="vvdiv", make=_vvdiv_make,
    description="elementwise integer divide (LLFU-bound stream)")

# ---------------------------------------------------------------------------
# divchain-uc: dependent integer divide chain (stall-dominated)
# ---------------------------------------------------------------------------

DIVCHAIN_SRC = """
void divchain(int* x, int* y, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        z[i] = x[i] / y[i] / (y[i] + 3);
    }
}
"""


def _divchain_make(scale, seed):
    n = scale_select(scale, 48, 4096, 131072)
    rng = rng_for(seed, "divchain")
    x = [rng.randrange(1 << 30) for _ in range(n)]
    y = [rng.randrange(2, 49) for _ in range(n)]
    # 131072 words fill two region slots each at large scale
    xa, ya, za = region(0), region(2), region(4)

    def init(mem):
        mem.write_words(xa, x)
        mem.write_words(ya, y)

    def verify(mem):
        got = mem.read_words(za, n)
        for i in range(n):
            assert got[i] == x[i] // y[i] // (y[i] + 3), i

    return Workload(args=[xa, ya, za, n], init=init, verify=verify)


DIVCHAIN = KernelSpec(
    name="divchain-uc", suite="C", loop_types=("uc",),
    source=DIVCHAIN_SRC, entry="divchain", make=_divchain_make,
    description="dependent integer divide chain (stall-bound stream)")

# ---------------------------------------------------------------------------
# cmult-uc: complex multiply over split re/im arrays
# ---------------------------------------------------------------------------

CMULT_SRC = """
void cmult(float* ar, float* ai, float* br, float* bi,
           float* cr, float* ci, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        cr[i] = ar[i] * br[i] - ai[i] * bi[i];
        ci[i] = ar[i] * bi[i] + ai[i] * br[i];
    }
}
"""


def _cmult_make(scale, seed):
    n = scale_select(scale, 48, 2048, 65536)
    rng = rng_for(seed, "cmult")
    vals = [[rng.randrange(-16, 17) * 0.25 for _ in range(n)]
            for _ in range(4)]
    ar, ai, br, bi = vals
    addrs = [region(j) for j in range(6)]

    def init(mem):
        for addr, v in zip(addrs[:4], vals):
            mem.write_floats(addr, v)

    def verify(mem):
        gr = mem.read_floats(addrs[4], n)
        gi = mem.read_floats(addrs[5], n)
        for i in range(n):
            assert gr[i] == ar[i] * br[i] - ai[i] * bi[i], i
            assert gi[i] == ar[i] * bi[i] + ai[i] * br[i], i

    return Workload(args=addrs + [n], init=init, verify=verify)


CMULT = KernelSpec(
    name="cmult-uc", suite="C", loop_types=("uc",),
    source=CMULT_SRC, entry="cmult", make=_cmult_make,
    description="complex multiply over split re/im arrays")

#: the turbo-backend benchmark kernels, steadiest first
TURBO_KERNELS = (VVADD, SAXPY, VVDIV, DIVCHAIN, CMULT)
