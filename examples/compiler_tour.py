"""Compiler tour: how annotations + dependence analysis choose xloop
encodings (paper Figs 1-3).

Shows, for each inter-iteration dependence pattern, a small annotated
kernel, the encoding the compiler selects, the detected CIRs, and a
snippet of the generated assembly (including ``xi`` cross-iteration
instructions from strength reduction).

Run:  python examples/compiler_tour.py
"""

from repro.lang import compile_source

EXAMPLES = [
    ("unordered-concurrent (Fig 1a): element-wise multiply", """
void vmul(int* a, int* b, int* out, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { out[i] = a[i] * b[i]; }
}
"""),
    ("ordered-through-registers (Fig 1b): prefix sum", """
void psum(int* a, int* out, int n) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { acc = acc + a[i]; out[i] = acc; }
}
"""),
    ("ordered-through-memory (Fig 1c): linear recurrence", """
void recur(int* a, int n) {
    #pragma xloops ordered
    for (int i = 1; i < n; i++) { a[i] = a[i] + a[i-1]; }
}
"""),
    ("unordered-atomic (Fig 1d): dual histogram update", """
void hist2(int* data, int* ha, int* hb, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) {
        int v = data[i];
        ha[v] = ha[v] + 1;
        hb[v] = hb[v] + 1;
    }
}
"""),
    ("dynamic bound (Fig 1e): worklist expansion", """
void grow(int* wl, int* tail, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int v = wl[i];
        if (v < 8) {
            int slot = amo_add(&tail[0], 1);
            wl[slot] = v * 2 + 1;
            n = n + 1;
        }
    }
}
"""),
    ("Fig 2: Floyd-Warshall -- analysis maps ordered -> om", """
void war(int* path, int n) {
    for (int k = 0; k < n; k++) {
        #pragma xloops ordered
        for (int i = 0; i < n; i++) {
            #pragma xloops unordered
            for (int j = 0; j < n; j++) {
                int t = path[i*n+k] + path[k*n+j];
                if (t < path[i*n+j]) { path[i*n+j] = t; }
            }
        }
    }
}
"""),
    ("Fig 3: maximal matching -- analysis maps ordered -> orm", """
void mm(int* ev, int* eu, int* vtx, int* out, int m) {
    int k = 0;
    #pragma xloops ordered
    for (int i = 0; i < m; i++) {
        int v = ev[i];
        int u = eu[i];
        if (vtx[v] < 0) {
            if (vtx[u] < 0) {
                vtx[v] = u;
                vtx[u] = v;
                out[k] = i;
                k = k + 1;
            }
        }
    }
}
"""),
]


def main():
    for title, source in EXAMPLES:
        compiled = compile_source(source)
        print("=" * 72)
        print(title)
        for loop in compiled.loops:
            cirs = ", ".join(loop.cirs) or "(none)"
            print("  annotation %-10r -> %-12s CIRs: %s%s"
                  % (loop.annotation, loop.mnemonic, cirs,
                     "   [dynamic bound]" if loop.dynamic_bound else ""))
        xloop_lines = [line for line in compiled.asm_text.splitlines()
                       if "xloop" in line or ".xi" in line]
        print("  key instructions:")
        for line in xloop_lines:
            print("   %s" % line.strip())
    print("=" * 72)


if __name__ == "__main__":
    main()
