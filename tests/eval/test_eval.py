"""Evaluation-harness tests: runner caching, normalization, and the
qualitative result shapes the paper reports (on tiny workloads with a
representative kernel subset, so the suite stays fast)."""

import pytest

from repro.eval import (BASELINE_OF, CONFIGS, baseline_run, build_row,
                        build_table4, build_table5, config,
                        energy_efficiency, fig6_data, fig9_data, fig10_data,
                        geomean, opt_improvements, render_fig5,
                        render_table2, render_table4, render_table5, run,
                        speedup)
from repro.eval.figures import fig5_data, fig7_data, fig8_data

SCALE = "tiny"


class TestConfigs:
    def test_all_named_configs_resolve(self):
        for name in CONFIGS:
            assert config(name).name == name

    def test_unknown_config(self):
        with pytest.raises(KeyError):
            config("ooo/16")

    def test_baselines_have_no_lpsu(self):
        for name in ("io", "ooo/2", "ooo/4"):
            assert config(name).lpsu is None

    def test_xloops_configs_have_lpsu(self):
        for name in ("io+x", "ooo/2+x", "ooo/4+x"):
            assert config(name).lpsu is not None

    def test_design_space_variants(self):
        assert config("ooo/4+x4+t").lpsu.threads_per_lane == 2
        assert config("ooo/4+x8").lpsu.lanes == 8
        assert config("ooo/4+x8+r").lpsu.mem_ports == 2
        assert config("ooo/4+x8+r+m").lpsu.lsq_loads == 16

    def test_baseline_of_total(self):
        assert set(BASELINE_OF) == set(CONFIGS)


class TestRunner:
    def test_run_is_memoized(self):
        a = run("sha-or", "io", scale=SCALE)
        b = run("sha-or", "io", scale=SCALE)
        assert a is b

    def test_results_verified_against_golden(self):
        # run() verifies internally; reaching here means goldens pass
        r = run("rgb2cmyk-uc", "io+x", mode="specialized", scale=SCALE)
        assert r.cycles > 0
        assert r.specialized_invocations >= 1

    def test_baseline_uses_serial_source_when_present(self):
        r = baseline_run("bfs-uc-db", "io", scale=SCALE)
        assert r.binary == "serial"
        r2 = baseline_run("sha-or", "io", scale=SCALE)
        assert r2.binary == "gp"

    def test_speedup_of_baseline_is_one(self):
        assert speedup("sha-or", "io", "traditional",
                       scale=SCALE, binary="gp") == pytest.approx(1.0)

    def test_energy_efficiency_positive(self):
        assert energy_efficiency("rgb2cmyk-uc", "io+x", "specialized",
                                 scale=SCALE) > 0


class TestTable2:
    def test_row_fields(self):
        row = build_row("rgb2cmyk-uc", scale=SCALE)
        assert row.suite == "C"
        assert row.xloops == ("xloop.uc",)
        assert 0.8 < row.xg_ratio < 1.3
        assert set(row.speedups) == {(g, m) for g in ("io", "ooo/2",
                                                      "ooo/4")
                                     for m in "TSA"}

    def test_render(self):
        row = build_row("sha-or", scale=SCALE)
        text = render_table2([row])
        assert "sha-or" in text and "io:S" in text

    def test_uc_specialized_beats_io(self):
        row = build_row("rgb2cmyk-uc", scale=SCALE)
        assert row.speedups[("io", "S")] > 2.0
        assert abs(row.speedups[("io", "T")] - 1.0) < 0.1

    def test_long_cir_kernels_lose_on_ooo4(self):
        # paper: out-of-order GPPs beat specialized execution for
        # xloop.or kernels with long inter-iteration critical paths
        row = build_row("sha-or", scale=SCALE)
        assert row.speedups[("ooo/4", "S")] < 1.0


class TestTable4:
    def test_hand_optimized_improvements(self):
        gains = opt_improvements(scale=SCALE)
        assert set(gains) == {"adpcm-or-opt", "dither-or-opt",
                              "sha-or-opt"}
        for name, gain in gains.items():
            assert gain > 1.0, name

    def test_build_and_render(self):
        rows = build_table4(kernels=["sha-or-opt", "dither-uc"],
                            scale=SCALE)
        text = render_table4(rows)
        assert "sha-or-opt" in text


class TestTable5:
    def test_rows_and_render(self):
        rows = build_table5()
        text = render_table5(rows)
        assert "lpsu+i128+ln4" in text
        assert "scalar" in text


_FIG_KERNELS = ("rgb2cmyk-uc", "sha-or", "ksack-sm-om")


class TestFigures:
    def test_fig5_normalization(self):
        series = fig5_data(kernels=_FIG_KERNELS, scale=SCALE)
        # by construction the ooo/2 series is exactly 1.0
        for k in _FIG_KERNELS:
            assert series["ooo/2"][k] == pytest.approx(1.0)
        text = render_fig5(series)
        assert "ooo/2+x:S" in text

    def test_fig6_fractions_sum_to_one(self):
        data = fig6_data(kernels=_FIG_KERNELS, scale=SCALE)
        for k, b in data.items():
            total = sum(v for key, v in b.items()
                        if key not in ("squash", "squashes"))
            assert total == pytest.approx(1.0, abs=1e-6), k

    def test_fig7_adaptive_tracks_better_engine(self):
        series = fig7_data(kernels=("sha-or",), scale="small")
        s, a = series["S"]["sha-or"], series["A"]["sha-or"]
        # sha-or loses under specialized execution on ooo/4; adaptive
        # must recover most of the loss
        assert a >= s

    def test_fig8_points(self):
        pts = fig8_data(kernels=("rgb2cmyk-uc",), configs=("io+x",),
                        modes=("specialized",), scale=SCALE)
        assert len(pts) == 1
        p = pts[0]
        assert p.performance > 1.0
        assert p.efficiency > 0.5

    def test_fig9_lanes_help_uc(self):
        series = fig9_data(kernels=("rgb2cmyk-uc",),
                           configs=("ooo/4+x", "ooo/4+x8+r"),
                           scale="small")
        assert (series["ooo/4+x8+r"]["rgb2cmyk-uc"]
                >= series["ooo/4+x"]["rgb2cmyk-uc"])

    def test_fig10_shapes(self):
        pts = fig10_data(kernels=("rgb2cmyk-uc", "ssearch-uc"),
                         scale=SCALE)
        for p in pts:
            assert p.performance > 1.0     # paper: 2.4-4x
            assert p.efficiency > 1.0      # paper: 1.6-2.1x


class TestReportHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
