"""Symbolic dependence prover: certificate soundness on the five
pattern exemplars, counterexample minimality, symbolic-vs-concrete
bound agreement, the depend-pass diophantine hook, the
``annotate="auto"`` compiler mode, and a hypothesis property pinning
the prover to brute-force dependence enumeration at small trips."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import CompileError, compile_source
from repro.lang.passes.prover import PRAGMA_WHITELIST, prove_source
from repro.lang.passes.prover_core import (HAS_Z3, Poly, linear_bounds,
                                           pair_dependent_over_z,
                                           solve_eqs)

UC_SRC = """
void f(int* a, int* b, int* c, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
}"""

OR_SRC = """
int f(int* a, int* b, int n) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { acc = acc + a[i]; b[i] = acc; }
    return acc;
}"""

OM_SRC = """
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 1; i < n; i++) { a[i] = a[i-1] + a[i]; }
}"""

ORM_SRC = """
void f(int* a, int* out, int n) {
    int k = 0;
    #pragma xloops ordered
    for (int i = 1; i < n; i++) {
        a[i] = a[i-1] + 1;
        out[k] = i;
        k = k + 1;
    }
}"""

UA_SRC = """
void f(int* d, int* h, int n) {
    #pragma xloops atomic
    for (int i = 0; i < n; i++) { h[d[i]] = h[d[i]] + 1; }
}"""

BAD_UC_SRC = """
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { a[i + 1] = a[i] + 1; }
}"""


def one_proof(src):
    proofs = prove_source(src)
    assert len(proofs) == 1
    return proofs[0]


class TestFivePatternCertificates:
    """Certificate soundness on one exemplar per data pattern."""

    def test_uc_proved_independent(self):
        p = one_proof(UC_SRC)
        assert p.emitted == "xloop.uc"
        assert p.verdict == "proved"
        assert p.mem_status == "independent"
        assert p.minimal == "uc"
        # every pair carries a positive certificate, not an assumption
        assert all(c.status == "independent" for c in p.pairs)

    def test_or_proved_register_carried(self):
        p = one_proof(OR_SRC)
        assert p.emitted == "xloop.or"
        assert p.verdict == "proved"
        assert p.cirs == ("acc",)
        assert p.mem_status == "independent"
        assert p.minimal == "or"

    def test_om_proved_with_dependence_witness(self):
        p = one_proof(OM_SRC)
        assert p.emitted == "xloop.om"
        assert p.verdict == "proved"        # LSQ orders memory
        assert p.mem_status == "dependent"  # ...and the ordering is real
        assert p.minimal == "om"
        wit = next(c.witness for c in p.pairs
                   if c.status == "dependent")
        # adjacent iterations touching a[i-1]/a[i]: distance exactly 1
        assert abs(wit.i - wit.j) == 1

    def test_orm_proved(self):
        p = one_proof(ORM_SRC)
        assert p.emitted == "xloop.orm"
        assert p.verdict == "proved"
        assert p.cirs == ("k",)
        assert p.minimal == "orm"

    def test_ua_assumed_atomic_commute(self):
        p = one_proof(UA_SRC)
        assert p.emitted == "xloop.ua"
        assert p.verdict == "assumed"
        assert "atomic-commute" in p.reasons

    def test_over_serialized_om_is_noted(self):
        # an ordered pragma on an independent loop: sound but lossy
        p = one_proof("""
void f(int* a, int* b, int n) {
    int acc = 0;
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { acc = acc + a[i]; b[i] = acc; }
    int x = acc;
    a[0] = x;
}""")
        assert p.verdict == "proved"
        assert p.minimal == "or"


class TestCounterexampleMinimality:
    def test_wrong_uc_refuted_with_minimal_witness(self):
        p = one_proof(BAD_UC_SRC)
        assert p.verdict == "refuted"
        wit = p.counterexample
        assert wit is not None
        # smallest trip count exhibiting the collision, then the
        # lexicographically-least iteration pair and address
        assert wit.trip == 2
        assert (wit.i, wit.j) == (1, 0)
        assert wit.array == "a"
        assert wit.subscript == 1
        assert wit.bound_name == "n"

    def test_stride_two_witness_skips_vacuous_trips(self):
        p = one_proof("""
void f(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) { a[2 * i] = a[i] + 1; }
}""")
        assert p.verdict == "refuted"
        wit = p.counterexample
        # the read a[i] at iteration 2 meets the write a[2j] at
        # iteration 1 on element a[2]: no smaller trip collides
        assert wit.trip == 3
        assert (wit.i, wit.j) == (2, 1)
        assert wit.subscript == 2

    def test_witness_validates_by_execution_semantics(self):
        # witness (i, j) indexes the pair's (first, second) access:
        # here the read a[$i] and the write a[1 + $i]
        p = one_proof(BAD_UC_SRC)
        wit = p.counterexample
        addrs_read = list(range(wit.trip))          # a[i]
        addrs_write = [i + 1 for i in range(wit.trip)]  # a[i + 1]
        assert addrs_read[wit.i] == addrs_write[wit.j] == wit.subscript


class TestSymbolicConcreteBoundAgreement:
    """linear_bounds' symbolic (min, max) must agree with concrete
    enumeration of the same box at every sampled symbol value."""

    @pytest.mark.parametrize("coef,off", [(1, 0), (3, -2), (-2, 5)])
    def test_affine_ranges(self, coef, off):
        # p = coef*x + off over x in [0, n) with n >= 2
        p = Poly.var("x") * Poly.const(coef) + Poly.const(off)
        ranges = {"x": (Poly.const(0), Poly.var("n"))}
        mn, mx = linear_bounds(p, ranges, {"n": 2})
        for n in range(2, 8):
            concrete = [coef * x + off for x in range(n)]
            assert mn.evaluate({"n": n}) == min(concrete)
            assert mx.evaluate({"n": n}) == max(concrete)

    def test_symbolic_coefficient_needs_sign(self):
        # w*x over x in [0, n): only bounded once w's sign is known
        p = Poly.var("x") * Poly.var("w")
        ranges = {"x": (Poly.const(0), Poly.var("n"))}
        assert linear_bounds(p, ranges, {"n": 2}) is None
        mn, mx = linear_bounds(p, ranges, {"n": 2, "w": 1})
        for n, w in itertools.product(range(2, 6), range(1, 4)):
            concrete = [w * x for x in range(n)]
            assert mn.evaluate({"n": n, "w": w}) == min(concrete)
            assert mx.evaluate({"n": n, "w": w}) == max(concrete)

    def test_solver_finds_lexicographic_least(self):
        # x - 2y = 0, x != y over [0,8): least solution is (2,1)
        eq = Poly.var("x") - Poly.const(2) * Poly.var("y")
        sol = solve_eqs([eq], {"x": (0, 8), "y": (0, 8)},
                        neq=("x", "y"), order=("x", "y"))
        assert sol == {"x": 2, "y": 1}


class TestDependDiophantine:
    """The weak-SIV/MIV fallthrough now runs an exact two-variable
    linear diophantine test (regression: the old pass over-serialized
    gcd-separated strides to om)."""

    def test_gcd_separated_strides_relax_to_uc(self):
        # writes a[2i], reads a[4i+1]: gcd(2,4)=2 does not divide 1
        cp = compile_source("""
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[2 * i] = a[4 * i + 1]; }
}""")
        assert cp.loop_kinds() == ("xloop.uc",)

    def test_gcd_dividing_delta_stays_om(self):
        # writes a[2i], reads a[4i+2]: 2i = 4j+2 has solutions
        cp = compile_source("""
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[2 * i] = a[4 * i + 2]; }
}""")
        assert cp.loop_kinds() == ("xloop.om",)

    def test_data_dependent_subscript_stays_conservative(self):
        cp = compile_source("""
void f(int* a, int* idx, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) { a[idx[i]] = a[i] + 1; }
}""")
        assert cp.loop_kinds() == ("xloop.om",)

    @pytest.mark.parametrize("ca,cb,delta", [
        (2, 4, 1), (2, 4, 2), (3, 6, 2), (0, 0, 0), (0, 0, 3),
        (5, 0, 10), (-2, 4, 3), (6, 10, 4),
    ])
    def test_pair_dependent_over_z_matches_enumeration(self, ca, cb,
                                                       delta):
        brute = any(ca * x - cb * y == delta
                    for x in range(-40, 41) for y in range(-40, 41))
        exact = pair_dependent_over_z(ca, cb, delta)
        # exact is over all of Z: it may find solutions outside the
        # enumeration window but never miss one inside it
        assert not (brute and not exact)
        if ca or cb:
            assert brute == exact


class TestAutoAnnotate:
    def test_unannotated_loops_get_proved_patterns(self):
        src = UC_SRC.replace("#pragma xloops unordered", "")
        cp = compile_source(src, annotate="auto")
        assert cp.loop_kinds() == ("xloop.uc",)

    def test_reduction_becomes_or(self):
        src = OR_SRC.replace("#pragma xloops ordered", "")
        cp = compile_source(src, annotate="auto")
        assert cp.loop_kinds() == ("xloop.or",)

    def test_memory_dependence_never_goes_unordered(self):
        src = OM_SRC.replace("#pragma xloops ordered", "")
        cp = compile_source(src, annotate="auto")
        assert cp.loop_kinds() == ("xloop.om",)

    def test_hand_annotations_win(self):
        cp = compile_source(OM_SRC, annotate="auto")
        assert cp.loop_kinds() == ("xloop.om",)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            compile_source(UC_SRC, annotate="smart")

    def test_auto_specialized_bit_identical_to_traditional(self):
        from repro.sim import Memory
        from repro.uarch import IO, SystemConfig, simulate
        from repro.uarch.params import LPSUConfig
        src = UC_SRC.replace("#pragma xloops unordered", "")
        cp = compile_source(src, annotate="auto")
        A, B, C, N = 0x100000, 0x180000, 0x200000, 24

        def run(mode, cfg):
            mem = Memory()
            mem.write_words(A, [(i * 7 + 3) % 101 for i in range(N)])
            mem.write_words(B, [(i * 13 + 5) % 97 for i in range(N)])
            simulate(cp.program, cfg, entry="f", args=[A, B, C, N],
                     mem=mem, mode=mode, verify=mode == "specialized")
            return mem

        ref = run("traditional", SystemConfig("t", IO))
        spec = run("specialized", SystemConfig("s", IO, LPSUConfig()))
        assert spec.pages_equal(ref)


class TestFuzzProperty:
    """The prover never disagrees with brute-force dependence
    enumeration at small trip counts (hypothesis-driven)."""

    @given(ca=st.integers(-4, 4), da=st.integers(-6, 6),
           cb=st.integers(-4, 4), db=st.integers(-6, 6))
    @settings(max_examples=60, deadline=None)
    def test_affine_pair_agrees_with_brute_force(self, ca, da, cb, db):
        src = """
void f(int* a, int n) {
    #pragma xloops ordered
    for (int i = 0; i < n; i++) {
        a[(%d)*i + (%d)] = a[(%d)*i + (%d)] + 1;
    }
}""" % (ca, da, cb, db)
        proof = prove_source(src)[0]

        def brute(trip):
            found = False
            for i, j in itertools.product(range(trip), repeat=2):
                if i == j:
                    continue
                wa, ra = ca * i + da, cb * j + db
                wb = ca * j + da
                if wa == ra or wa == wb:
                    found = True
            return found

        brute_any = any(brute(n) for n in range(2, 9))
        if proof.mem_status == "independent":
            assert not brute_any, (
                "prover certified independent, brute force disagrees")
        elif proof.mem_status == "dependent":
            wit = proof.counterexample
            assert wit is not None
            assert wit.i != wit.j
            assert 0 <= wit.i < wit.trip and 0 <= wit.j < wit.trip
            assert brute(wit.trip), "witness does not validate"


class TestWhitelistPolicy:
    def test_whitelist_is_empty(self):
        # the acceptance gate: zero whitelist entries, ever — a new
        # entry needs a tracked reason AND a failing review here
        assert PRAGMA_WHITELIST == {}


@pytest.mark.skipif(not HAS_Z3, reason="z3-solver not installed "
                    "(optional extra: pip install repro[z3])")
class TestZ3Backend:
    def test_z3_refutes_what_intervals_cannot(self, monkeypatch):
        from repro.lang.passes.prover_core import z3_refute
        monkeypatch.setenv("REPRO_PROVER_Z3", "1")
        # x - y - 1 = 0 with x,y in [0,4): satisfiable -> not refuted
        diff = (Poly.var("$x") - Poly.var("$y") - Poly.const(1))
        ranges = {"$x": (Poly.const(0), Poly.const(4)),
                  "$y": (Poly.const(0), Poly.const(4))}
        assert z3_refute(diff, ranges, {}, ("$x", "$y")) is False
        # 2x - 2y - 1 = 0: parity -> refuted
        diff2 = (Poly.const(2) * Poly.var("$x")
                 - Poly.const(2) * Poly.var("$y") - Poly.const(1))
        assert z3_refute(diff2, ranges, {}, ("$x", "$y")) is True
