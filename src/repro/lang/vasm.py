"""Virtual-register assembly: the codegen's output representation.

Operands are either virtual registers ``("v", n)`` (assigned by the
register allocator) or physical registers ``("p", n)`` (ABI-pinned:
argument moves, zero register, stack pointer).  After allocation the
instructions render to textual XLOOPS assembly for the assembler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instructions import OPS, Fmt
from ..isa.registers import reg_name

ZERO = ("p", 0)
RA = ("p", 1)
SP = ("p", 2)


def vreg(n):
    return ("v", n)


def preg(n):
    return ("p", n)


@dataclass
class VInstr:
    """One virtual-register instruction (or label / raw directive)."""

    mn: str                         # mnemonic, or "label:" pseudo
    rd: Optional[Tuple] = None
    rs1: Optional[Tuple] = None
    rs2: Optional[Tuple] = None
    imm: Optional[int] = None
    label: Optional[str] = None     # branch/jump/la target or label name
    is_label: bool = False
    comment: Optional[str] = None

    def defs(self):
        if self.is_label:
            return ()
        spec = OPS.get(self.mn)
        if self.mn in ("li", "la", "mv"):
            return (self.rd,) if self.rd else ()
        if spec is not None and spec.writes_rd and self.rd is not None:
            return (self.rd,)
        return ()

    def uses(self):
        if self.is_label:
            return ()
        out = []
        if self.mn == "mv":
            return (self.rs1,)
        if self.mn in ("li", "la"):
            return ()
        spec = OPS.get(self.mn)
        if spec is None:
            return ()
        fmt = spec.fmt
        if fmt in (Fmt.R, Fmt.XI_R):
            out = [self.rs1, self.rs2]
        elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.LOAD, Fmt.JALR, Fmt.XI_I,
                     Fmt.R2):
            out = [self.rs1]
        elif fmt in (Fmt.STORE, Fmt.AMO, Fmt.BRANCH, Fmt.XLOOP):
            out = [self.rs1, self.rs2]
        return tuple(r for r in out if r is not None)

    def render(self, mapping):
        """Final assembly text given a vreg->physical mapping."""
        def R(operand):
            kind, num = operand
            phys = num if kind == "p" else mapping[num]
            return reg_name(phys)

        if self.is_label:
            return "%s:" % self.mn
        m = self.mn
        suffix = "    # %s" % self.comment if self.comment else ""
        if m == "li":
            return "    li %s, %d%s" % (R(self.rd), self.imm, suffix)
        if m == "la":
            return "    la %s, %s%s" % (R(self.rd), self.label, suffix)
        if m == "mv":
            return "    mv %s, %s%s" % (R(self.rd), R(self.rs1), suffix)
        spec = OPS[m]
        fmt = spec.fmt
        if fmt in (Fmt.R, Fmt.XI_R):
            body = "%s %s, %s, %s" % (m, R(self.rd), R(self.rs1),
                                      R(self.rs2))
        elif fmt == Fmt.R2:
            body = "%s %s, %s" % (m, R(self.rd), R(self.rs1))
        elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I):
            body = "%s %s, %s, %d" % (m, R(self.rd), R(self.rs1),
                                      self.imm)
        elif fmt == Fmt.LOAD:
            body = "%s %s, %d(%s)" % (m, R(self.rd), self.imm,
                                      R(self.rs1))
        elif fmt == Fmt.STORE:
            body = "%s %s, %d(%s)" % (m, R(self.rs2), self.imm,
                                      R(self.rs1))
        elif fmt == Fmt.AMO:
            body = "%s %s, %s, (%s)" % (m, R(self.rd), R(self.rs2),
                                        R(self.rs1))
        elif fmt in (Fmt.BRANCH, Fmt.XLOOP):
            body = "%s %s, %s, %s" % (m, R(self.rs1), R(self.rs2),
                                      self.label)
        elif fmt == Fmt.JAL:
            if spec.is_xbreak:
                body = "%s %s" % (m, self.label)
            else:
                body = "%s %s, %s" % (m, R(self.rd), self.label)
        elif fmt == Fmt.JALR:
            body = "%s %s, %s, %d" % (m, R(self.rd), R(self.rs1),
                                      self.imm)
        elif fmt == Fmt.LUI:
            body = "%s %s, %d" % (m, R(self.rd), self.imm)
        elif fmt == Fmt.NONE:
            body = m
        else:  # pragma: no cover
            raise ValueError("cannot render %r" % m)
        return "    " + body + suffix
