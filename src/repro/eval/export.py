"""JSON export/import of experiment results, so downstream tooling
(plotting scripts, regression dashboards) can consume the reproduced
tables and figures without re-simulating."""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict

from .report import geomean
from .table2 import Table2Row


def run_to_dict(run):
    """Serialize a :class:`~repro.eval.runner.KernelRun`."""
    return {
        "kernel": run.kernel,
        "config": run.config,
        "mode": run.mode,
        "binary": run.binary,
        "cycles": run.cycles,
        "gpp_instrs": run.gpp_instrs,
        "lpsu_instrs": run.lpsu_instrs,
        "energy_nj": run.energy_nj,
        "vlsi_energy_nj": run.vlsi_energy_nj,
        "specialized_invocations": run.specialized_invocations,
        "cache_miss_rate": run.cache_miss_rate,
        "static_xloops": list(run.static_xloops),
        "lpsu": {
            "iterations": run.lpsu_stats.iterations,
            "squashes": run.lpsu_stats.squashes,
            "breakdown": run.lpsu_stats.breakdown(),
        },
    }


def table2_to_dict(rows):
    """Serialize a Table II row list, including summary geomeans."""
    out = {"rows": [], "geomeans": {}}
    for row in rows:
        out["rows"].append({
            "kernel": row.kernel,
            "suite": row.suite,
            "loop_types": list(row.loop_types),
            "xloops": list(row.xloops),
            "dyn_instrs_gp": row.dyn_instrs_gp,
            "dyn_instrs_xloops": row.dyn_instrs_xloops,
            "xg_ratio": row.xg_ratio,
            "speedups": {"%s:%s" % key: value
                         for key, value in row.speedups.items()},
        })
    if rows:
        keys = rows[0].speedups.keys()
        for key in keys:
            out["geomeans"]["%s:%s" % key] = geomean(
                [r.speedups[key] for r in rows])
    return out


def fig8_to_dict(points):
    return [{"kernel": p.kernel, "config": p.config, "mode": p.mode,
             "performance": p.performance, "efficiency": p.efficiency}
            for p in points]


def series_to_dict(series):
    """Figures expressed as {series_name: {x: y}}."""
    return {name: dict(points) for name, points in series.items()}


def table5_to_dict(rows):
    return [{"name": name,
             "cycle_time_ns": ct,
             "total_mm2": report.total_mm2,
             "breakdown": dict(report.breakdown)}
            for name, report, ct in rows]


def save_json(path, payload):
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)


def load_json(path):
    with open(path) as f:
        return json.load(f)
