"""Pragma-regression gate: every registered kernel's xloop pragmas
must be confirmed by the symbolic dependence prover (or explicitly
whitelisted with a tracked reason — and the whitelist must stay empty
for the paper's original Table II kernels).

This is the test-suite twin of the blocking ``repro prove --all`` CI
step: a kernel edit that silently invalidates its pragma fails here
with the prover's counterexample in the assertion message.
"""

import pytest

from repro.kernels import ALL_KERNELS, TABLE2_KERNELS
from repro.lang.passes.prover import PRAGMA_WHITELIST, prove_kernel

ALL_NAMES = [spec.name for spec in ALL_KERNELS]
TABLE2_NAMES = {spec.name for spec in TABLE2_KERNELS}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernel_pragma_confirmed(name):
    kp = prove_kernel(name)
    assert kp.ok, "unsound pragma in %s: %s" % (name, kp.detail)
    # proved or carried by a recognized assumption regime — never by
    # an untracked escape hatch
    for proof in kp.loops:
        assert proof.verdict in ("proved", "assumed"), proof.describe()
        if proof.verdict == "assumed":
            assert proof.reasons, (
                "%s: assumption without a named regime" % name)


def test_no_table2_kernel_is_whitelisted():
    # acceptance criterion: zero whitelist entries among the original
    # 25 paper kernels
    assert not (set(PRAGMA_WHITELIST) & TABLE2_NAMES)


def test_whitelist_entries_reference_registered_kernels():
    assert set(PRAGMA_WHITELIST) <= set(ALL_NAMES)


def test_every_registered_kernel_has_an_xloop():
    # the gate is vacuous for a kernel with no annotated loop; make
    # sure none slips in unproved
    for spec in ALL_KERNELS:
        kp = prove_kernel(spec)
        assert kp.loops, "%s has no annotated loops" % spec.name
