"""The distributed worker pool end to end: real server, real workers
(background threads over a real unix socket), the real hardened
engine forking real simulation children.

The headline acceptance test runs an 8-worker sweep under a chaos plan
that kills workers, wedges them mid-lease (heartbeats stop), and cuts
sockets mid-frame -- and asserts the robustness contract: the sweep
completes, results are field-by-field bit-identical to a direct
``runner.run``, and every point is simulated *exactly once* (credited
``simulated`` == cache misses; any extra work shows up in the
duplicate counter instead).  A second test crashes the *server*
mid-campaign and proves the journal resumes it without re-simulating
completed points.
"""

import dataclasses
import json
import os
import threading
import time

import pytest

from repro.eval import diskcache, hardening, runner
from repro.eval.parallel import SweepPoint
from repro.serve import ServeClient, ServerThread, WorkerThread
from repro.serve.queue import qkey_of

SCALE = "tiny"

POINTS = [
    SweepPoint("sgemm-uc", "io", scale=SCALE),
    SweepPoint("sgemm-uc", "io+x", mode="specialized", scale=SCALE),
    SweepPoint("dither-or", "io+x", mode="specialized", scale=SCALE),
    SweepPoint("dynprog-om", "io+x", mode="specialized", scale=SCALE),
]


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    """Fresh cache dir + enabled cache per test (same discipline as
    test_server.py: warm serving IS disk-cache behaviour)."""
    saved = (diskcache._dir_override, diskcache._force_disabled,
             os.environ.get(diskcache.ENV_CACHE_DIR),
             os.environ.get(diskcache.ENV_NO_CACHE))
    diskcache.configure(cache_dir=str(tmp_path / "cache"), enabled=True)
    runner.clear_cache()
    monkeypatch.delenv(hardening.CHAOS_ENV, raising=False)
    yield
    diskcache._dir_override, diskcache._force_disabled = saved[:2]
    for var, value in ((diskcache.ENV_CACHE_DIR, saved[2]),
                       (diskcache.ENV_NO_CACHE, saved[3])):
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value
    diskcache.reset_stats()
    runner.clear_cache(keep_disk=True)


def _snapshot(result):
    data = dataclasses.asdict(result)
    data.pop("backend_stats", None)
    return data


def _reference_snapshots(points):
    """Direct runner.run results, computed memo-only so they leave no
    disk-cache trace for the server to serve from."""
    reference = {}
    for pt in points:
        r = runner.run(pt.kernel, pt.config, use_disk_cache=False,
                       **pt.run_kwargs())
        reference[pt.memo_key()] = _snapshot(r)
    runner.clear_cache()
    return reference


def _workers(address, n, **kwargs):
    return [WorkerThread(address, **kwargs).start() for _ in range(n)]


def _stop_workers(workers, timeout=5):
    for w in workers:
        w.stop(timeout=timeout)


class TestDistributedServing:
    def test_two_workers_cold_then_warm(self, tmp_path):
        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True) as st:
            workers = _workers(st.address, 2, poll=0.05)
            try:
                with ServeClient(st.address) as client:
                    cold = client.submit(POINTS)
                    assert cold.ok, cold.render()
                    assert cold.points == len(POINTS)
                    assert cold.misses == len(POINTS)
                    runner.clear_cache(keep_disk=True)
                    warm = client.submit(POINTS)
                    assert warm.ok and warm.misses == 0
                    assert warm.hits == len(POINTS)
                    stats = client.stats()
                    assert stats["distributed"]
                    qc = stats["queue"]["counters"]
                    assert qc["enqueued"] == len(POINTS)
                    assert qc["completed"] == len(POINTS)
                    assert qc["duplicates"] == 0
            finally:
                _stop_workers(workers)

    def test_results_bit_identical_to_direct_run(self, tmp_path):
        reference = _reference_snapshots(POINTS)
        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True) as st:
            workers = _workers(st.address, 2, poll=0.05)
            try:
                with ServeClient(st.address) as client:
                    summary = client.submit(POINTS)
                assert summary.ok, summary.render()
                for pt in POINTS:
                    r = runner.run(pt.kernel, pt.config,
                                   **pt.run_kwargs())
                    assert _snapshot(r) == reference[pt.memo_key()], \
                        pt.label()
            finally:
                _stop_workers(workers)

    def test_no_workers_then_late_worker(self, tmp_path):
        """A submission against a workerless distributed server just
        waits; the first worker to arrive drains it."""
        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True) as st:
            out = {}

            def submit():
                with ServeClient(st.address) as client:
                    out["summary"] = client.submit(POINTS[:2])

            t = threading.Thread(target=submit)
            t.start()
            time.sleep(0.3)                 # queued, nobody to lease
            assert "summary" not in out
            workers = _workers(st.address, 1, poll=0.05)
            try:
                t.join(timeout=60)
                assert out["summary"].ok
                assert out["summary"].points == 2
            finally:
                _stop_workers(workers)

    def test_worker_failure_quarantines(self, tmp_path, monkeypatch):
        """A point that crashes on every worker-side attempt comes
        back as a structured failure, not a requeue loop."""
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"dynprog-om": {"crash": [0, 1]}}))
        with ServerThread(jobs=2, retries=2, backoff=0.01,
                          socket_dir=str(tmp_path / "sock"),
                          distributed=True) as st:
            workers = _workers(st.address, 2, poll=0.05, retries=2,
                               backoff=0.01)
            try:
                with ServeClient(st.address) as client:
                    summary = client.submit(POINTS)
                    assert len(summary.failures) == 1
                    assert summary.failures[0].kind == "crash"
                    assert len(summary.outcomes) == len(POINTS) - 1
                    qc = client.stats()["queue"]["counters"]
                    assert qc["worker_failures"] == 1
            finally:
                _stop_workers(workers)


class TestChaosAcceptance:
    def test_eight_worker_sweep_under_chaos(self, tmp_path,
                                            monkeypatch):
        """THE acceptance gate: worker kills + wedges + severed
        sockets, yet the sweep completes bit-identical with every
        point simulated exactly once."""
        reference = _reference_snapshots(POINTS)
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps({
            # keyed by server-assigned requeue attempt: attempt 0 is
            # sabotaged, the requeued attempt runs clean
            "sgemm-uc/io/": {"kill_worker": [0]},
            "sgemm-uc/io+x": {"sever": [0]},
            "dither-or": {"hang_worker": [0]},
            "dynprog-om": {"kill_worker": [0], "sever": [1]},
        }))
        with ServerThread(jobs=4, socket_dir=str(tmp_path / "sock"),
                          distributed=True, lease_ttl=0.6,
                          journal=str(tmp_path / "queue.journal")) \
                as st:
            workers = _workers(st.address, 8, poll=0.05)
            try:
                with ServeClient(st.address) as client:
                    summary = client.submit(POINTS)
                    assert summary.ok, summary.render()
                    assert summary.points == len(POINTS)  # none lost
                    # exact accounting: chaos strikes before a point
                    # simulates, so every miss simulated exactly once
                    assert summary.misses == len(POINTS)
                    stats = client.stats()
                    assert stats["counters"]["simulated"] \
                        == len(POINTS)
                    qc = stats["queue"]["counters"]
                    assert qc["completed"] == len(POINTS)
                    # chaos actually happened: every sabotaged point
                    # lost at least one lease (its own fault, or as
                    # collateral riding in a killed worker's batch --
                    # which sabotage fires where is timing-dependent,
                    # the recovery invariants above are not)
                    assert qc["requeued"] >= 4
                    assert qc["worker_losses"] >= 1    # a kill fired
                    assert qc["expired_leases"] \
                        + qc["worker_losses"] >= 2
                # bit-identity with the direct run, field by field
                for pt in POINTS:
                    r = runner.run(pt.kernel, pt.config,
                                   **pt.run_kwargs())
                    assert _snapshot(r) == reference[pt.memo_key()], \
                        pt.label()
            finally:
                _stop_workers(workers)

    def test_slow_writer_is_deduped_not_double_credited(
            self, tmp_path, monkeypatch):
        """A lease expires under a *live* worker (TTL shorter than the
        simulation); the requeued copy completes elsewhere; the slow
        writer's late result is discarded into the duplicate counter.
        Chaos wedges only the heartbeat, so the worker keeps
        computing."""
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"sgemm-uc/io/": {"hang_worker": [0]}}))
        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True, lease_ttl=0.4) as st:
            workers = _workers(st.address, 2, poll=0.05)
            try:
                with ServeClient(st.address) as client:
                    summary = client.submit(POINTS[:2])
                    assert summary.ok
                    assert summary.points == 2
                    qc = client.stats()["queue"]["counters"]
                    assert qc["completed"] == 2
                    assert qc["expired_leases"] >= 1
            finally:
                _stop_workers(workers)


class TestJournalResume:
    def test_server_restart_resumes_without_resimulating(
            self, tmp_path):
        """Crash the server mid-campaign: a successor with the same
        journal + cache serves completed points from the cache and
        finishes only the remainder."""
        journal = str(tmp_path / "queue.journal")
        sock1 = str(tmp_path / "sock1")
        # campaign part 1: complete half the points, then "crash"
        with ServerThread(jobs=2, socket_dir=sock1, distributed=True,
                          journal=journal) as st:
            workers = _workers(st.address, 2, poll=0.05)
            try:
                with ServeClient(st.address) as client:
                    first = client.submit(POINTS[:2])
                    assert first.ok and first.misses == 2
            finally:
                _stop_workers(workers)
        # ServerThread.stop() is a hard stop: no drain, no farewell --
        # the journal and disk cache are all that survives

        runner.clear_cache(keep_disk=True)   # new process, cold memo
        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock2"),
                          distributed=True, journal=journal) as st:
            workers = _workers(st.address, 2, poll=0.05)
            try:
                with ServeClient(st.address) as client:
                    resumed = client.submit(POINTS)
                    assert resumed.ok
                    assert resumed.points == len(POINTS)
                    # the completed half is cache-served, never re-run
                    assert resumed.misses == 2
                    qc = client.stats()["queue"]["counters"]
                    assert qc["enqueued"] == 2   # only the remainder
            finally:
                _stop_workers(workers)

    def test_journal_replays_pending_work_to_workers(self, tmp_path):
        """Pending (enqueued-but-unresolved) journal entries are
        executed after a restart even with no client attached -- the
        campaign finishes itself."""
        from repro.serve.queue import WorkQueue
        journal = str(tmp_path / "queue.journal")
        q = WorkQueue(journal_path=journal)
        for pt in POINTS[:2]:
            from repro.serve import protocol
            q.enqueue(protocol.point_to_wire(pt))
        q.close()    # crashed before anything completed

        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True, journal=journal) as st:
            assert st.server.queue.counters["replayed"] == 2
            workers = _workers(st.address, 2, poll=0.05)
            try:
                deadline = time.time() + 60
                with ServeClient(st.address) as client:
                    while time.time() < deadline:
                        qc = client.stats()["queue"]["counters"]
                        if qc["completed"] == 2:
                            break
                        time.sleep(0.1)
                assert qc["completed"] == 2
                # and the results are durably cached for any client
                for pt in POINTS[:2]:
                    assert runner.cached_result(
                        pt.kernel, pt.config,
                        **pt.run_kwargs()) is not None
            finally:
                _stop_workers(workers)


class TestClientReconnect:
    def test_resubmit_between_batches_after_server_restart(
            self, tmp_path):
        """A persistent client survives its server being replaced
        between submissions: the dead socket is detected, reconnected
        with backoff, and the batch resubmitted."""
        sockdir = str(tmp_path / "sock")
        st1 = ServerThread(jobs=2, socket_dir=sockdir,
                           distributed=True).start()
        workers = _workers(st1.address, 1, poll=0.05)
        client = ServeClient(st1.address)
        try:
            first = client.submit(POINTS[:2])
            assert first.ok and first.points == 2
        finally:
            _stop_workers(workers)
            st1.stop()
        # a new server on the SAME socket path; the client's socket
        # is a stale fd to the old one
        st2 = ServerThread(jobs=2, socket_dir=sockdir,
                           distributed=True).start()
        workers = _workers(st2.address, 1, poll=0.05)
        try:
            assert st2.address == st1.address
            second = client.submit(POINTS)
            assert second.ok and second.points == len(POINTS)
            # completed work came from the shared cache, not re-sim
            assert second.misses == 2
        finally:
            client.close()
            _stop_workers(workers)
            st2.stop()

    def test_resubmit_mid_submit_when_server_dies(self, tmp_path):
        """The server dies while a submit is blocked on a workerless
        queue; a successor appears on the same path; the client
        reconnects mid-submit and resubmits the unacknowledged
        remainder."""
        sockdir = str(tmp_path / "sock")
        st1 = ServerThread(jobs=2, socket_dir=sockdir,
                           distributed=True).start()
        out, errors = {}, []

        def submit():
            try:
                with ServeClient(sockdir + "/serve.sock",
                                 reconnects=12) as client:
                    out["summary"] = client.submit(POINTS[:2])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        t = threading.Thread(target=submit)
        t.start()
        time.sleep(0.4)          # the submit is queued and waiting
        st1.stop()               # server dies mid-submit
        st2 = ServerThread(jobs=2, socket_dir=sockdir,
                           distributed=True).start()
        workers = _workers(st2.address, 2, poll=0.05)
        try:
            t.join(timeout=60)
            assert not errors, errors
            assert out["summary"].ok
            assert out["summary"].points == 2
        finally:
            _stop_workers(workers)
            st2.stop()


class TestIdleExit:
    def test_idle_exit_waits_for_queue_and_workers(self, tmp_path):
        """An --idle-exit server must not vanish while journal-
        replayed work is pending or a worker is attached; once both
        are gone it exits on schedule."""
        from repro.serve import protocol
        from repro.serve.queue import WorkQueue
        journal = str(tmp_path / "queue.journal")
        q = WorkQueue(journal_path=journal)
        q.enqueue(protocol.point_to_wire(POINTS[0]))
        q.close()

        st = ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True, journal=journal,
                          idle_exit=0.4).start()
        try:
            # pending replayed work, no clients: the old (buggy)
            # condition would exit here
            time.sleep(1.2)
            assert st._thread.is_alive()
            workers = _workers(st.address, 1, poll=0.05)
            try:
                deadline = time.time() + 60
                while time.time() < deadline \
                        and st.server.queue.entries:
                    time.sleep(0.05)
                assert not st.server.queue.entries
                # queue drained but the worker is still connected:
                # still not idle
                time.sleep(1.2)
                assert st._thread.is_alive()
            finally:
                _stop_workers(workers)
            # nothing pending, no leases, no workers: now it may exit
            st._thread.join(timeout=15)
            assert not st._thread.is_alive()
        finally:
            st.stop()


class TestGracefulDrain:
    def test_stop_drains_leases_and_workers_exit_clean(self,
                                                       tmp_path):
        with ServerThread(jobs=2, socket_dir=str(tmp_path / "sock"),
                          distributed=True, drain_timeout=30.0) as st:
            workers = _workers(st.address, 2, poll=0.05)
            try:
                out = {}

                def submit():
                    with ServeClient(st.address) as client:
                        out["summary"] = client.submit(POINTS)

                t = threading.Thread(target=submit)
                t.start()
                time.sleep(0.2)          # points queued/leased
                with ServeClient(st.address) as stopper:
                    reply = stopper.shutdown()
                assert reply.get("drained", False)
                t.join(timeout=60)
                # the drain waited: every point completed
                assert out["summary"].ok
                assert out["summary"].points == len(POINTS)
                # workers got the drain frame and exited clean
                deadline = time.time() + 10
                while time.time() < deadline \
                        and any(w.alive for w in workers):
                    time.sleep(0.05)
                assert all(w.worker.drained or not w.alive
                           for w in workers)
            finally:
                _stop_workers(workers)


def test_queue_identity_matches_wire_points():
    """qkey round-trips through the journal stay joined to the same
    SweepPoint (the completion path depends on it)."""
    from repro.serve import protocol
    pt = POINTS[0]
    wire = protocol.point_to_wire(pt)
    rejson = json.loads(json.dumps(wire))
    assert qkey_of(wire) == qkey_of(rejson)
    assert protocol.point_from_wire(rejson).memo_key() == pt.memo_key()
