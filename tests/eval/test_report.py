"""Text-report rendering tests."""

from repro.eval.report import geomean, render_series, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["A", "Blong"], [["x", 1.5], ["yy", 22.25]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) <= {"-", " "}
        assert "1.50" in text and "22.25" in text

    def test_title(self):
        text = render_table(["A"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert "A" in text

    def test_custom_float_format(self):
        text = render_table(["A"], [[3.14159]], floatfmt="%.4f")
        assert "3.1416" in text


class TestRenderSeries:
    def test_keys_union(self):
        text = render_series("t", {"s1": {"a": 1.0},
                                   "s2": {"a": 2.0, "b": 3.0}})
        assert "a" in text and "b" in text
        assert "s1" in text and "s2" in text

    def test_missing_points_blank(self):
        text = render_series("t", {"s1": {"a": 1.0}, "s2": {"b": 2.0}})
        # no crash; both rows present
        assert "a" in text and "b" in text


class TestGeomean:
    def test_basic(self):
        assert geomean([4.0, 16.0]) == 8.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -2.0, 16.0]) == 8.0

    def test_single(self):
        assert geomean([7.0]) == 7.0
