"""Synchronous client of the sweep service.

``repro sweep --server ADDR`` swaps the in-process
:class:`~repro.eval.parallel.SweepExecutor` for a
:class:`ServeClient`: the point list goes over the wire, the server
resolves every point (cache, in-flight join, hardened simulation, or
-- on a ``--distributed`` server -- a leased worker), and the
streamed results land in the same :class:`SweepSummary` shape the
executor produces -- downstream table/figure assembly cannot tell
the difference, because each returned record is also seeded into the
in-process memo exactly as the parallel executor seeds its workers'
results.

Robustness: :meth:`ServeClient.submit` survives a dying or restarting
server.  It tracks which submitted points have not yet been answered,
and on any transport failure reconnects with bounded exponential
backoff (:class:`~repro.resilience.backoff.Backoff`, budget restored
whenever progress is made) and resubmits exactly the unacknowledged
remainder -- answered points are never resubmitted, and a restarted
server answers the resubmission from its durable cache/journal rather
than re-simulating.  Only transport failures are retried: an explicit
``{"error": ...}`` verdict from the server raises
:class:`~repro.serve.protocol.RemoteError` immediately.
"""

from __future__ import annotations

import socket
import time

from ..eval import runner
from ..eval.hardening import PointFailure
from ..eval.parallel import PointOutcome, SweepSummary
from ..resilience.backoff import Backoff, BackoffExhausted
from . import protocol


def connect(address, timeout=None):
    """A connected socket for ``unix:PATH``, a path, or ``host:port``."""
    kind, host, port = protocol.parse_address(address)
    if kind == "unix":
        if not hasattr(socket, "AF_UNIX"):
            raise protocol.ProtocolError(
                "unix sockets unavailable on this platform; use "
                "host:port")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(host)
        return sock
    return socket.create_connection((host, port), timeout=timeout)


class ServeClient:
    """One connection to a sweep server.

    The connection is lazy (opened on first use) and persistent -- a
    client submits any number of batches over it.  Context-manager
    friendly.  *reconnects* bounds the consecutive transport failures
    a :meth:`submit` absorbs before giving up (the budget refills on
    every answered point).
    """

    def __init__(self, address, timeout=None, reconnects=8,
                 reconnect_base=0.05, reconnect_cap=2.0):
        self.address = address
        self.timeout = timeout
        self.reconnects = max(1, int(reconnects))
        self.reconnect_base = float(reconnect_base)
        self.reconnect_cap = float(reconnect_cap)
        self._sock = None

    def _socket(self):
        if self._sock is None:
            self._sock = connect(self.address, self.timeout)
        return self._sock

    def _drop_socket(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, msg):
        sock = self._socket()
        protocol.send_frame(sock, msg)
        reply = protocol.recv_frame(sock)
        if reply is None:
            raise protocol.ProtocolError(
                "server closed the connection mid-request")
        return reply

    def ping(self):
        return self._roundtrip({"op": "ping"})

    def stats(self):
        return self._roundtrip({"op": "stats"})

    def shutdown(self):
        """Ask the server to exit (a distributed server drains its
        queue first); tolerates it dying before replying."""
        try:
            return self._roundtrip({"op": "shutdown"})
        except (protocol.ProtocolError, OSError):
            return {"ok": True}

    def submit(self, points):
        """Run *points* through the server; a :class:`SweepSummary`.

        Results stream back as the server finishes them, so a
        slow-simulating point does not delay delivery of the rest.
        Ordering in :attr:`SweepSummary.outcomes` follows completion
        order, matching the parallel executor's behaviour.  Transport
        failures reconnect and resubmit the unacknowledged remainder
        (see the module docstring).
        """
        points = list(points)
        start = time.perf_counter()
        summary = SweepSummary(jobs=1)
        if not points:
            return summary
        wires = [protocol.point_to_wire(p) for p in points]
        todo = set(range(len(points)))   # original indices unanswered
        backoff = Backoff(base=self.reconnect_base,
                          cap=self.reconnect_cap,
                          attempts=self.reconnects)
        while todo:
            try:
                self._submit_once(points, wires, todo, summary,
                                  backoff)
            except protocol.RemoteError:
                raise               # a deliberate verdict; no retrying
            except (protocol.ProtocolError, OSError) as exc:
                self._drop_socket()
                try:
                    backoff.sleep()
                except BackoffExhausted:
                    raise protocol.ProtocolError(
                        "server unreachable with %d point(s) "
                        "unresolved (%d reconnect attempts): %s"
                        % (len(todo), self.reconnects, exc))
        summary.wall_time = time.perf_counter() - start
        return summary

    def _submit_once(self, points, wires, todo, summary, backoff):
        """One submit round over a (re)connected socket: send the
        unanswered remainder, consume frames until ``done``.  Frame
        indices are into *this* round's submission; ``sent`` maps them
        back to original points."""
        sent = sorted(todo)
        sock = self._socket()
        protocol.send_frame(sock, {
            "op": "submit", "protocol": protocol.PROTOCOL_VERSION,
            "points": [wires[i] for i in sent]})
        while True:
            frame = protocol.recv_frame(sock)
            if frame is None:
                raise protocol.ProtocolError(
                    "server closed the connection with %d point(s) "
                    "unresolved" % len(todo))
            if "error" in frame and "type" not in frame:
                raise protocol.RemoteError(frame["error"])
            ftype = frame.get("type")
            if ftype == "done":
                if todo:
                    raise protocol.ProtocolError(
                        "done frame with %d point(s) unanswered"
                        % len(todo))
                summary.jobs = int(frame.get("jobs", 1))
                return
            fi = frame.get("i")
            idx = sent[fi] if isinstance(fi, int) \
                and 0 <= fi < len(sent) else None
            pt = points[idx] if idx is not None else None
            if ftype == "failure":
                if idx is not None:
                    todo.discard(idx)
                    backoff.reset()     # progress refills the budget
                summary.failures.append(PointFailure(
                    label=frame.get("label", "?"),
                    attempts=int(frame.get("attempts", 0)),
                    kind=frame.get("kind", "error"),
                    error=frame.get("error", "")))
                continue
            if ftype != "result" or pt is None:
                raise protocol.ProtocolError(
                    "unexpected frame %r" % (frame,))
            record = protocol.unpack_record(frame["record"])
            todo.discard(idx)
            backoff.reset()             # progress refills the budget
            # same memo seeding the parallel executor does for its
            # workers' results: downstream table assembly hits the memo
            runner.seed_result(pt.memo_key(), record)
            summary.outcomes.append(PointOutcome(
                point=pt, wall_time=float(frame.get("wall", 0.0)),
                simulated=bool(frame.get("simulated", False))))

    def close(self):
        self._drop_socket()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False
