"""Synchronous client of the sweep service.

``repro sweep --server ADDR`` swaps the in-process
:class:`~repro.eval.parallel.SweepExecutor` for a
:class:`ServeClient`: the point list goes over the wire, the server
resolves every point (cache, in-flight join, or hardened simulation),
and the streamed results land in the same :class:`SweepSummary` shape
the executor produces -- downstream table/figure assembly cannot tell
the difference, because each returned record is also seeded into the
in-process memo exactly as the parallel executor seeds its workers'
results.
"""

from __future__ import annotations

import socket
import time

from ..eval import runner
from ..eval.hardening import PointFailure
from ..eval.parallel import PointOutcome, SweepSummary
from . import protocol


def connect(address, timeout=None):
    """A connected socket for ``unix:PATH``, a path, or ``host:port``."""
    kind, host, port = protocol.parse_address(address)
    if kind == "unix":
        if not hasattr(socket, "AF_UNIX"):
            raise protocol.ProtocolError(
                "unix sockets unavailable on this platform; use "
                "host:port")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(host)
        return sock
    return socket.create_connection((host, port), timeout=timeout)


class ServeClient:
    """One connection to a sweep server.

    The connection is lazy (opened on first use) and persistent -- a
    client submits any number of batches over it.  Context-manager
    friendly.
    """

    def __init__(self, address, timeout=None):
        self.address = address
        self.timeout = timeout
        self._sock = None

    def _socket(self):
        if self._sock is None:
            self._sock = connect(self.address, self.timeout)
        return self._sock

    def _roundtrip(self, msg):
        sock = self._socket()
        protocol.send_frame(sock, msg)
        reply = protocol.recv_frame(sock)
        if reply is None:
            raise protocol.ProtocolError(
                "server closed the connection mid-request")
        return reply

    def ping(self):
        return self._roundtrip({"op": "ping"})

    def stats(self):
        return self._roundtrip({"op": "stats"})

    def shutdown(self):
        """Ask the server to exit; tolerates it dying before replying."""
        try:
            return self._roundtrip({"op": "shutdown"})
        except (protocol.ProtocolError, OSError):
            return {"ok": True}

    def submit(self, points):
        """Run *points* through the server; a :class:`SweepSummary`.

        Results stream back as the server finishes them, so a
        slow-simulating point does not delay delivery of the rest.
        Ordering in :attr:`SweepSummary.outcomes` follows completion
        order, matching the parallel executor's behaviour.
        """
        points = list(points)
        start = time.perf_counter()
        summary = SweepSummary(jobs=1)
        if not points:
            return summary
        sock = self._socket()
        protocol.send_frame(sock, {
            "op": "submit", "protocol": protocol.PROTOCOL_VERSION,
            "points": [protocol.point_to_wire(p) for p in points]})
        pending = len(points)
        while True:
            frame = protocol.recv_frame(sock)
            if frame is None:
                raise protocol.ProtocolError(
                    "server closed the connection with %d point(s) "
                    "unresolved" % pending)
            if "error" in frame and "type" not in frame:
                raise protocol.ProtocolError(frame["error"])
            ftype = frame.get("type")
            if ftype == "done":
                summary.jobs = int(frame.get("jobs", 1))
                break
            pending -= 1
            idx = frame.get("i")
            pt = points[idx] if isinstance(idx, int) \
                and 0 <= idx < len(points) else None
            if ftype == "failure":
                summary.failures.append(PointFailure(
                    label=frame.get("label", "?"),
                    attempts=int(frame.get("attempts", 0)),
                    kind=frame.get("kind", "error"),
                    error=frame.get("error", "")))
                continue
            if ftype != "result" or pt is None:
                raise protocol.ProtocolError(
                    "unexpected frame %r" % (frame,))
            record = protocol.unpack_record(frame["record"])
            # same memo seeding the parallel executor does for its
            # workers' results: downstream table assembly hits the memo
            runner.seed_result(pt.memo_key(), record)
            summary.outcomes.append(PointOutcome(
                point=pt, wall_time=float(frame.get("wall", 0.0)),
                simulated=bool(frame.get("simulated", False))))
        summary.wall_time = time.perf_counter() - start
        return summary

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False
