"""Traditional-vs-specialized differential conformance harness.

This is the core of the ``repro verify`` CLI subcommand.  For each
checked loop — a registered application kernel or a random
:class:`~repro.verify.genloops.GenCase` — it executes:

1. the GP binary traditionally (architectural reference semantics),
2. the XLOOPS binary traditionally (xloops as plain branches), and
3. the XLOOPS binary specialized on every LPSU design point in the
   sweep (plus one adaptive-mode run, which exercises the
   profiling/early-stop migration path), each under the runtime
   :class:`~repro.verify.invariants.InvariantMonitor`,

and demands that every run agrees: the workload's own result check
passes, return values match, and — for runs of the *same* binary —
the full final memory image is identical (different binaries may
legitimately differ in stack layout, so the GP reference is compared
through the workload check and return value only).

Failures are collected per loop, not raised, so one bad kernel does
not hide the rest of the sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kernels import ALL_KERNELS, get_kernel
from ..lang import compile_source
from ..sim import Memory
from ..uarch import IO, SystemConfig, simulate
from .genloops import LPSU_SWEEP, random_cases

#: GPP design point used for every conformance run: the in-order core
#: (fastest to simulate; the LPSU-side invariants are GPP-agnostic)
_GPP = IO


@dataclass
class ConformanceResult:
    """Outcome of the conformance sweep for one loop."""

    name: str
    kinds: Tuple[str, ...] = ()
    configs: int = 0        # LPSU design points x modes checked
    invocations: int = 0    # verified specialized invocations
    iterations: int = 0     # LPSU iterations retired under the monitor
    squashes: int = 0
    ok: bool = True
    detail: str = ""

    def fail(self, detail):
        self.ok = False
        if not self.detail:
            self.detail = detail
        return self


def _specialized_points(sweep, adaptive):
    points = [("specialized", lpsu) for lpsu in sweep]
    if adaptive and sweep:
        points.append(("adaptive", sweep[0]))
    return points


def _run_verified(res, program, entry, args, mem, lpsu, mode):
    r = simulate(program, SystemConfig("conf-x", _GPP, lpsu),
                 entry=entry, args=args, mem=mem, mode=mode,
                 verify=True)
    res.configs += 1
    res.invocations += r.specialized_invocations
    res.iterations += r.lpsu_stats.iterations
    res.squashes += r.lpsu_stats.squashes
    return r


def check_kernel(name, scale="tiny", seed=0, sweep=LPSU_SWEEP,
                 adaptive=True):
    """Conformance-check one registered kernel; never raises."""
    res = ConformanceResult(name=name)
    try:
        spec = get_kernel(name)
        xl = compile_source(spec.source)
        gp = compile_source(spec.source, xloops=False)
        res.kinds = xl.loop_kinds()
        # worklist kernels claim output slots through AMOs inside
        # unordered loops: any lane interleaving is architecturally
        # valid, so only the workload's own check applies -- the exact
        # memory image is order-dependent by design.  LSQ-backed
        # patterns (om/orm/ua, .de) commit in index order and stay
        # bit-deterministic even with AMOs.
        deterministic = (
            not any(ins.op.is_amo for ins in xl.program.instrs)
            or not any(k.startswith("xloop.uc") and not k.endswith(".de")
                       for k in res.kinds))

        def fresh():
            workload = spec.workload(scale, seed)
            mem = Memory()
            return workload, mem, workload.apply(mem)

        # reference: the XLOOPS binary executed traditionally
        wl, mem_ref, args = fresh()
        ref = simulate(xl.program, SystemConfig("conf-io", _GPP),
                       entry=spec.entry, args=args, mem=mem_ref,
                       mode="traditional")
        wl.check(mem_ref)

        # the GP binary agrees at the workload level (return values and
        # full memory may legitimately differ between binaries: stack
        # layout, scratch registers of void kernels)
        wl, mem_gp, args = fresh()
        simulate(gp.program, SystemConfig("conf-io", _GPP),
                 entry=spec.entry, args=args, mem=mem_gp,
                 mode="traditional")
        wl.check(mem_gp)

        for mode, lpsu in _specialized_points(sweep, adaptive):
            wl, mem, args = fresh()
            _run_verified(res, xl.program, spec.entry, args, mem,
                          lpsu, mode)
            wl.check(mem)
            if deterministic and not mem.pages_equal(mem_ref):
                return res.fail(
                    "%s/%r memory differs from traditional at 0x%x"
                    % (mode, lpsu, mem.first_difference(mem_ref)))
    except Exception as exc:
        return res.fail("%s: %s" % (type(exc).__name__, exc))
    return res


def check_case(case, sweep=LPSU_SWEEP, adaptive=False):
    """Conformance-check one generated loop case; never raises."""
    res = ConformanceResult(name=case.name)
    try:
        xl = compile_source(case.source)
        gp = compile_source(case.source, xloops=False)
        res.kinds = xl.loop_kinds()

        mem = Memory()
        r = simulate(gp.program, SystemConfig("conf-io", _GPP),
                     entry=case.entry, args=case.apply(mem), mem=mem,
                     mode="traditional")
        ref_out = case.outputs(mem, r.return_value)

        mem_ref = Memory()
        r = simulate(xl.program, SystemConfig("conf-io", _GPP),
                     entry=case.entry, args=case.apply(mem_ref),
                     mem=mem_ref, mode="traditional")
        if case.outputs(mem_ref, r.return_value) != ref_out:
            return res.fail("XLOOPS binary disagrees with the GP "
                            "binary under traditional execution")

        for mode, lpsu in _specialized_points(sweep, adaptive):
            mem = Memory()
            r = _run_verified(res, xl.program, case.entry,
                              case.apply(mem), mem, lpsu, mode)
            if case.outputs(mem, r.return_value) != ref_out:
                return res.fail("%s/%r outputs differ from traditional"
                                % (mode, lpsu))
            if not mem.pages_equal(mem_ref):
                return res.fail(
                    "%s/%r memory differs from traditional at 0x%x"
                    % (mode, lpsu, mem.first_difference(mem_ref)))
    except Exception as exc:
        return res.fail("%s: %s" % (type(exc).__name__, exc))
    return res


def check_counterexample(source, entry, params, proof, sweep=LPSU_SWEEP):
    """Replay a prover refutation as a differential conformance case.

    *proof* is a refuted ``repro.lang.passes.prover.LoopProof`` for a
    loop of *source*; its concrete counterexample becomes a directed
    :class:`~repro.verify.genloops.GenCase` (trip count and symbol
    values taken from the witness) and is swept through
    :func:`check_case`.  The returned result should FAIL — a passing
    result means the unsound pragma produced no observable divergence
    on this sweep, which is itself reportable.
    """
    if proof.counterexample is None:
        raise ValueError("proof for %s line %d has no counterexample"
                         % (proof.function, proof.line))
    from .genloops import case_from_counterexample
    case = case_from_counterexample(
        "cex-%s-L%d" % (proof.function, proof.line), source, entry,
        params, proof.counterexample)
    return check_case(case, sweep=sweep)


# ----------------------------------------------------------------------
# fast-vs-slow differential mode
# ----------------------------------------------------------------------

def _run_snapshot(program, entry, args, mem, lpsu, mode, fast,
                  no_engine=False, backend=None):
    cfg = (SystemConfig("conf-x", _GPP, lpsu) if lpsu is not None
           else SystemConfig("conf-io", _GPP))
    if no_engine:
        # exercise the interpreted-stepper + schedule-memo fast path
        # with the compiled fused-lane engine disabled
        os.environ["REPRO_NO_LPSU_ENGINE"] = "1"
    try:
        r = simulate(program, cfg, entry=entry, args=args, mem=mem,
                     mode=mode, fast=fast, backend=backend)
    finally:
        if no_engine:
            os.environ.pop("REPRO_NO_LPSU_ENGINE", None)
    ev = r.events
    return {
        "cycles": r.cycles,
        "gpp_instrs": r.gpp_instrs,
        "lpsu_instrs": r.lpsu_instrs,
        "xloop_invocations": r.xloop_invocations,
        "specialized_invocations": r.specialized_invocations,
        "adaptive_decisions": dict(r.adaptive_decisions),
        "return_value": r.return_value,
        "cache": (r.cache_misses, r.cache_accesses),
        "events": None if ev is None else dict(vars(ev)),
        "lpsu_stats": repr(r.lpsu_stats),
    }


def _diff_detail(a, b, blabel="slow"):
    for k in a:
        if a[k] != b[k]:
            return "%s: fast=%r %s=%r" % (k, a[k], blabel, b[k])
    return "snapshots differ"


def check_fast_slow(name, program, entry, make_args, sweep=LPSU_SWEEP,
                    adaptive=True):
    """Demand the fast path (superblock fusion + schedule memoization)
    is *bit-identical* to the slow path for one loop: cycles, instr
    counts, energy-event counts, LPSU stats, adaptive decisions,
    return value, cache totals, and the final memory image must all
    match, for traditional execution and every specialized/adaptive
    LPSU design point.  Never raises."""
    res = ConformanceResult(name=name)
    try:
        points = [("traditional", None)]
        points += _specialized_points(sweep, adaptive)
        for mode, lpsu in points:
            # LPSU points get a third variant: fast with the compiled
            # fused-lane engine disabled, pinning the interpreted
            # stepper + schedule-memo layer to the same contract
            variants = [("fast", True, False), ("slow", False, False)]
            if lpsu is not None:
                variants.append(("fast-noengine", True, True))
            snaps = []
            mems = []
            for _label, fast, no_engine in variants:
                mem = Memory()
                args = make_args(mem)
                snaps.append(_run_snapshot(program, entry, args, mem,
                                           lpsu, mode, fast,
                                           no_engine=no_engine))
                mems.append(mem)
            res.configs += 1
            for v in range(1, len(variants)):
                label = variants[v][0]
                if snaps[0] != snaps[v]:
                    return res.fail("%s/%r fast!=%s: %s"
                                    % (mode, lpsu, label,
                                       _diff_detail(snaps[0], snaps[v],
                                                    label)))
                if not mems[0].pages_equal(mems[v]):
                    return res.fail(
                        "%s/%r fast memory differs from %s at 0x%x"
                        % (mode, lpsu, label,
                           mems[0].first_difference(mems[v])))
    except Exception as exc:
        return res.fail("%s: %s" % (type(exc).__name__, exc))
    return res


def check_ladder(name, program, entry, make_args, sweep=LPSU_SWEEP,
                 adaptive=True):
    """Demand the full backend ladder (interp -> fused -> turbo ->
    vector) is *bit-identical* for one loop: every snapshot field —
    cycles, instr counts, energy-event counts, LPSU stats, adaptive
    decisions, return value, cache totals — and the final memory image
    must agree pairwise across all tiers, for traditional execution and
    every specialized/adaptive LPSU design point.  The failure detail
    names the diverging tier.  The vector rung joins the ladder only
    when its optional numpy dependency is importable (without it,
    ``auto`` cannot resolve to vector, so three rungs cover every
    reachable configuration).  Never raises."""
    res = ConformanceResult(name=name)
    tiers = ("interp", "fused", "turbo")
    from ..sim.vector import HAS_NUMPY
    if HAS_NUMPY:
        tiers += ("vector",)
    try:
        points = [("traditional", None)]
        points += _specialized_points(sweep, adaptive)
        for mode, lpsu in points:
            snaps = []
            mems = []
            for tier in tiers:
                mem = Memory()
                args = make_args(mem)
                snaps.append(_run_snapshot(program, entry, args, mem,
                                           lpsu, mode, fast=None,
                                           backend=tier))
                mems.append(mem)
            res.configs += 1
            # pairwise against the interp reference: the named tier is
            # the diverging one
            for v in range(1, len(tiers)):
                label = tiers[v]
                if snaps[0] != snaps[v]:
                    return res.fail("%s/%r interp!=%s: %s"
                                    % (mode, lpsu, label,
                                       _diff_detail(snaps[0], snaps[v],
                                                    label)))
                if not mems[0].pages_equal(mems[v]):
                    return res.fail(
                        "%s/%r %s memory differs from interp at 0x%x"
                        % (mode, lpsu, label,
                           mems[0].first_difference(mems[v])))
            # fused-vs-turbo closes the pairwise triangle (their
            # snapshots already both equal interp's; memory too)
    except Exception as exc:
        return res.fail("%s: %s" % (type(exc).__name__, exc))
    return res


def run_ladder(kernels=None, gen=0, seed=0, scale="tiny",
               sweep=LPSU_SWEEP, progress=None):
    """Backend-ladder differential sweep over kernels (all registered
    when *kernels* is None) plus *gen* generated loops; returns a list
    of :class:`ConformanceResult`."""
    names = ([s.name for s in ALL_KERNELS] if kernels is None
             else list(kernels))
    results = []
    for name in names:
        spec = get_kernel(name)
        xl = compile_source(spec.source)

        def make_args(mem, _spec=spec):
            return _spec.workload(scale, seed).apply(mem)

        res = check_ladder(name, xl.program, spec.entry, make_args,
                           sweep=sweep)
        res.kinds = xl.loop_kinds()
        results.append(res)
        if progress is not None:
            progress(res)
    for case in random_cases(seed, gen):
        xl = compile_source(case.source)
        res = check_ladder(case.name, xl.program, case.entry,
                           case.apply, sweep=sweep, adaptive=False)
        res.kinds = xl.loop_kinds()
        results.append(res)
        if progress is not None:
            progress(res)
    return results


def run_fast_slow(kernels=None, gen=0, seed=0, scale="tiny",
                  sweep=LPSU_SWEEP, progress=None):
    """Fast-vs-slow differential sweep over kernels (all registered
    when *kernels* is None) plus *gen* generated loops; returns a list
    of :class:`ConformanceResult`."""
    names = ([s.name for s in ALL_KERNELS] if kernels is None
             else list(kernels))
    results = []
    for name in names:
        spec = get_kernel(name)
        xl = compile_source(spec.source)

        def make_args(mem, _spec=spec):
            return _spec.workload(scale, seed).apply(mem)

        res = check_fast_slow(name, xl.program, spec.entry, make_args,
                              sweep=sweep)
        res.kinds = xl.loop_kinds()
        results.append(res)
        if progress is not None:
            progress(res)
    for case in random_cases(seed, gen):
        xl = compile_source(case.source)
        res = check_fast_slow(case.name, xl.program, case.entry,
                              case.apply, sweep=sweep, adaptive=False)
        res.kinds = xl.loop_kinds()
        results.append(res)
        if progress is not None:
            progress(res)
    return results


def run_conformance(kernels=None, gen=0, seed=0, scale="tiny",
                    sweep=LPSU_SWEEP, progress=None):
    """Sweep kernels (all registered when *kernels* is None) plus *gen*
    generated loops; returns a list of :class:`ConformanceResult`."""
    names = ([s.name for s in ALL_KERNELS] if kernels is None
             else list(kernels))
    results = []
    for name in names:
        res = check_kernel(name, scale=scale, seed=seed, sweep=sweep)
        results.append(res)
        if progress is not None:
            progress(res)
    for case in random_cases(seed, gen):
        res = check_case(case, sweep=sweep)
        results.append(res)
        if progress is not None:
            progress(res)
    return results
