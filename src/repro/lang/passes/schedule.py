"""CIR-aware instruction scheduling (paper Section IV-G, automated).

The performance of an ``xloop.or`` is limited by the *inter-iteration
critical path*: the distance between the first instruction that reads a
cross-iteration register and the last instruction that updates it.  The
paper shortens this path by hand ("Future work can improve the XLOOPS
compiler to schedule instructions more optimally"); this pass does it
automatically.

It list-schedules each basic block inside an annotated loop body,
giving priority to the backward dataflow slice of the CIR updates so
that CIR-producing work issues as early as dependences allow and
CIR-independent work (output stores, next-row error distribution...)
sinks below the last CIR write.

The pass runs on virtual-register assembly *before* register
allocation, so no false dependences from register reuse constrain it.
Memory operations conservatively keep their relative order; control
flow pins block boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ...isa.instructions import OPS
from ..vasm import VInstr


def _is_barrier(ins):
    """Instructions that end a basic block (or must not move)."""
    if ins.is_label:
        return True
    spec = OPS.get(ins.mn)
    if spec is None:
        return ins.mn not in ("li", "la", "mv")
    return spec.is_control or spec.is_fence


def _is_mem(ins):
    spec = OPS.get(ins.mn)
    return spec is not None and spec.is_mem


def _blocks(instrs):
    """Split [instrs] into runs of schedulable instructions.  Yields
    (start, end) half-open index ranges containing no labels/branches."""
    start = None
    for i, ins in enumerate(instrs):
        if _is_barrier(ins):
            if start is not None and i - start > 1:
                yield (start, i)
            start = None
        elif start is None:
            start = i
    if start is not None and len(instrs) - start > 1:
        yield (start, len(instrs))


def _build_dag(block):
    """Dependence edges (i -> j means i must precede j).  Returns
    (preds, data_preds): *preds* carries every legality edge
    (RAW/WAR/WAW/memory order); *data_preds* carries only RAW value
    flow, which is what the criticality slice must follow (an
    anti-dependence does not make its source part of the CIR
    computation)."""
    n = len(block)
    preds: List[Set[int]] = [set() for _ in range(n)]
    data_preds: List[Set[int]] = [set() for _ in range(n)]
    last_def: Dict[Tuple, int] = {}
    last_uses: Dict[Tuple, List[int]] = {}
    last_mem = None
    for j, ins in enumerate(block):
        for r in ins.uses():
            d = last_def.get(r)
            if d is not None:
                preds[j].add(d)            # RAW
                data_preds[j].add(d)
            last_uses.setdefault(r, []).append(j)
        for r in ins.defs():
            d = last_def.get(r)
            if d is not None:
                preds[j].add(d)            # WAW
            for u in last_uses.get(r, ()):
                if u != j:
                    preds[j].add(u)        # WAR
            last_def[r] = j
            last_uses[r] = []
        if _is_mem(block[j]):
            if last_mem is not None:
                preds[j].add(last_mem)     # conservative mem chain
            last_mem = j
    return preds, data_preds


def _critical_set(block, preds, cir_vregs):
    """Backward slice from instructions defining a CIR vreg."""
    critical = set()
    work = [j for j, ins in enumerate(block)
            if any(r in cir_vregs for r in ins.defs())]
    while work:
        j = work.pop()
        if j in critical:
            continue
        critical.add(j)
        work.extend(preds[j])
    return critical


def _schedule_block(block, cir_vregs):
    """Return a new ordering of *block* (list of VInstr)."""
    preds, data_preds = _build_dag(block)
    critical = _critical_set(block, data_preds, cir_vregs)
    if not critical or len(critical) == len(block):
        return block
    n = len(block)
    succs: List[Set[int]] = [set() for _ in range(n)]
    indeg = [0] * n
    for j, ps in enumerate(preds):
        indeg[j] = len(ps)
        for p in ps:
            succs[p].add(j)
    ready = sorted(j for j in range(n) if indeg[j] == 0)
    order = []
    while ready:
        # critical instructions first; ties broken by original order
        ready.sort(key=lambda j: (j not in critical, j))
        j = ready.pop(0)
        order.append(j)
        for s in succs[j]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    assert len(order) == n, "scheduling dropped instructions"
    return [block[j] for j in order]


def schedule_xloop_bodies(instrs, xloop_regions, cir_vregs_by_region):
    """Reschedule each xloop body region in *instrs*.

    *xloop_regions* is a list of (start, end) index pairs (the body
    label through the xloop instruction), and *cir_vregs_by_region*
    maps each region to the set of vreg operands holding CIRs.
    Returns a new instruction list (same length).
    """
    out = list(instrs)
    for region, cir_vregs in zip(xloop_regions, cir_vregs_by_region):
        if not cir_vregs:
            continue
        lo, hi = region
        for bs, be in _blocks(out[lo:hi + 1]):
            block = out[lo + bs:lo + be]
            out[lo + bs:lo + be] = _schedule_block(block, cir_vregs)
    return out


def cir_write_span(instrs, region, cir_vregs):
    """Diagnostic: (first CIR read index, last CIR write index) within
    a region — the quantity the scheduler minimizes."""
    lo, hi = region
    first_read = None
    last_write = None
    for i in range(lo, hi + 1):
        ins = instrs[i]
        if ins.is_label:
            continue
        if first_read is None and any(r in cir_vregs
                                      for r in ins.uses()):
            first_read = i
        if any(r in cir_vregs for r in ins.defs()):
            last_write = i
    return first_read, last_write


# ---------------------------------------------------------------------------
# statement-level scheduling (AST): hoist the CIR-critical slice of an
# annotated loop body above CIR-independent statements (output stores,
# error distribution...) -- the granularity at which the paper's hand
# optimizations operate.
# ---------------------------------------------------------------------------

from ..ast_nodes import (AddrOf, Assign, Break, Call, Continue, Decl,
                         Expr, ExprStmt, For, If, Index, Return, Var,
                         While, walk_exprs)
from ..sema import AMO_BUILTINS


class _StmtEffects:
    """Scalar reads/writes + memory effects of one statement subtree."""

    __slots__ = ("reads", "writes", "mem_read", "mem_write", "barrier")

    def __init__(self):
        self.reads = set()
        self.writes = set()
        self.mem_read = False
        self.mem_write = False
        self.barrier = False


def _collect_expr(expr, fx):
    for node in walk_exprs(expr):
        if isinstance(node, Var) and node.symbol.in_register:
            fx.reads.add(node.symbol)
        elif isinstance(node, Index):
            fx.mem_read = True
        elif isinstance(node, Call):
            if node.name in AMO_BUILTINS:
                fx.mem_read = fx.mem_write = True
            else:
                fx.barrier = True   # user calls never appear in xloops


def _collect_stmt(stmt, fx):
    if isinstance(stmt, Decl):
        fx.writes.add(stmt.symbol)
        if stmt.init is not None:
            _collect_expr(stmt.init, fx)
    elif isinstance(stmt, Assign):
        _collect_expr(stmt.value, fx)
        target = stmt.target
        if isinstance(target, Var):
            fx.writes.add(target.symbol)
        else:
            _collect_expr(target.base, fx)
            _collect_expr(target.subscript, fx)
            fx.mem_write = True
    elif isinstance(stmt, ExprStmt):
        _collect_expr(stmt.expr, fx)
    elif isinstance(stmt, If):
        _collect_expr(stmt.cond, fx)
        for s in stmt.then:
            _collect_stmt(s, fx)
        for s in stmt.orelse:
            _collect_stmt(s, fx)
    elif isinstance(stmt, While):
        _collect_expr(stmt.cond, fx)
        for s in stmt.body:
            _collect_stmt(s, fx)
    elif isinstance(stmt, For):
        for part in (stmt.init, stmt.step):
            if part is not None:
                _collect_stmt(part, fx)
        if stmt.cond is not None:
            _collect_expr(stmt.cond, fx)
        for s in stmt.body:
            _collect_stmt(s, fx)
    elif isinstance(stmt, (Break, Continue, Return)):
        fx.barrier = True


def stmt_effects(stmt):
    fx = _StmtEffects()
    _collect_stmt(stmt, fx)
    return fx


def _contains_exit(stmt):
    fx = stmt_effects(stmt)
    return fx.barrier


def reorder_loop_statements(body, cir_symbols):
    """Reorder the top-level statements of an xloop body so the
    CIR-critical dataflow slice issues as early as dependences allow.
    Returns a new statement list (same members).

    Statements containing break/continue/return act as barriers: no
    statement moves across them (a break's side-effect visibility
    would otherwise change).
    """
    if not cir_symbols:
        return body
    cirs = set(cir_symbols)

    # split into runs at barrier statements
    runs, current, out = [], [], []
    for stmt in body:
        if _contains_exit(stmt):
            if current:
                runs.append(current)
            runs.append([stmt])     # the barrier, pinned
            current = []
        else:
            current.append(stmt)
    if current:
        runs.append(current)

    for chunk in runs:
        if len(chunk) <= 1 or _contains_exit(chunk[0]):
            out.extend(chunk)
            continue
        out.extend(_reorder_run(chunk, cirs))
    return out


def _reorder_run(stmts, cirs):
    n = len(stmts)
    effects = [stmt_effects(s) for s in stmts]
    preds = [set() for _ in range(n)]
    data_preds = [set() for _ in range(n)]
    for j in range(n):
        for i in range(j):
            fi, fj = effects[i], effects[j]
            if fi.writes & fj.reads:
                preds[j].add(i)            # RAW: value flow
                data_preds[j].add(i)
            if fi.reads & fj.writes or fi.writes & fj.writes:
                preds[j].add(i)            # WAR / WAW: legality only
            if ((fi.mem_write and (fj.mem_read or fj.mem_write))
                    or (fi.mem_read and fj.mem_write)):
                preds[j].add(i)            # conservative memory order

    # criticality follows only RAW value flow
    critical = set()
    work = [j for j in range(n) if effects[j].writes & cirs]
    while work:
        j = work.pop()
        if j in critical:
            continue
        critical.add(j)
        work.extend(data_preds[j])
    if not critical or len(critical) == n:
        return stmts

    succs = [set() for _ in range(n)]
    indeg = [len(p) for p in preds]
    for j, ps in enumerate(preds):
        for p in ps:
            succs[p].add(j)
    ready = [j for j in range(n) if indeg[j] == 0]
    order = []
    while ready:
        ready.sort(key=lambda j: (j not in critical, j))
        j = ready.pop(0)
        order.append(j)
        for s in succs[j]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    assert len(order) == n
    return [stmts[j] for j in order]
