"""Hardened sweep execution: crash/hang isolation, retry with
backoff, quarantine, serial degradation, checkpoint/resume, and the
runner's fast-to-slow degradation ladder.

Chaos (deterministic worker sabotage via ``$REPRO_CHAOS``) only acts
inside forked worker children, so every recovery path here exercises
the real machinery: real dead processes, real kills, real retries.
"""

import dataclasses
import json
import os

import pytest

from repro.eval import diskcache, hardening, runner
from repro.eval.parallel import SweepPoint, sweep
from repro.kernels import get_kernel

SCALE = "tiny"

POINTS = [
    SweepPoint("sgemm-uc", "io", scale=SCALE),
    SweepPoint("sgemm-uc", "io+x", mode="specialized", scale=SCALE),
    SweepPoint("dither-or", "io", scale=SCALE),
    SweepPoint("dither-or", "io+x", mode="specialized", scale=SCALE),
]


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    saved = (diskcache._dir_override, diskcache._force_disabled,
             os.environ.get(diskcache.ENV_CACHE_DIR),
             os.environ.get(diskcache.ENV_NO_CACHE))
    # these tests exercise the disk cache and chaos machinery: force
    # the cache on even under the hermetic-CI REPRO_NO_CACHE=1 env
    monkeypatch.delenv(diskcache.ENV_NO_CACHE, raising=False)
    diskcache._force_disabled = False
    diskcache.configure(cache_dir=str(tmp_path / "cache"))
    runner.clear_cache()
    runner.drain_incidents()
    monkeypatch.delenv(hardening.CHAOS_ENV, raising=False)
    yield
    diskcache._dir_override, diskcache._force_disabled = saved[:2]
    for var, value in ((diskcache.ENV_CACHE_DIR, saved[2]),
                       (diskcache.ENV_NO_CACHE, saved[3])):
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value
    diskcache.reset_stats()
    runner.clear_cache(keep_disk=True)
    runner.drain_incidents()


def _reference():
    """Clean serial results for POINTS, as plain data."""
    ref = {}
    for pt in POINTS:
        r = runner.run(pt.kernel, pt.config, use_disk_cache=False,
                       **pt.run_kwargs())
        ref[pt.memo_key()] = dataclasses.asdict(r)
    runner.clear_cache(keep_disk=True)
    return ref


def _assert_matches(ref):
    for pt in POINTS:
        r = runner.run(pt.kernel, pt.config, **pt.run_kwargs())
        assert dataclasses.asdict(r) == ref[pt.memo_key()], pt.label()


class TestChaosRecovery:
    def test_worker_crash_is_retried(self, monkeypatch):
        ref = _reference()
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"sgemm-uc/io/traditional": {"crash": [0]}}))
        summary = sweep(POINTS, jobs=2, retries=3, backoff=0.01)
        assert summary.ok
        assert any(ev.kind == "crash" for ev in summary.retries)
        _assert_matches(ref)

    def test_worker_hang_is_killed_and_retried(self, monkeypatch):
        ref = _reference()
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"dither-or/io+x/specialized": {"hang": [0]}}))
        summary = sweep(POINTS, jobs=2, timeout=3.0, retries=3,
                        backoff=0.01)
        assert summary.ok
        assert any(ev.kind == "hang" for ev in summary.retries)
        _assert_matches(ref)

    def test_crash_and_hang_together_bit_identical(self, monkeypatch):
        """The acceptance scenario: one crashing worker, one hanging
        worker, and the sweep still completes with every healthy point
        bit-identical to the clean reference."""
        ref = _reference()
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps({
            "sgemm-uc/io/traditional": {"crash": [0]},
            "dither-or/io+x/specialized": {"hang": [0]}}))
        summary = sweep(POINTS, jobs=4, timeout=3.0, retries=3,
                        backoff=0.01)
        assert summary.ok
        assert summary.points == len(POINTS)
        kinds = sorted(ev.kind for ev in summary.retries)
        assert kinds == ["crash", "hang"]
        _assert_matches(ref)

    def test_unrecoverable_point_is_quarantined(self, monkeypatch):
        """A point that fails every attempt is quarantined with a
        structured record; the rest of the sweep still completes."""
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"sgemm-uc/io/traditional": {"crash": [0, 1, 2]}}))
        summary = sweep(POINTS, jobs=2, retries=3, backoff=0.01)
        assert not summary.ok
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert "sgemm-uc/io/traditional" in failure.label
        assert failure.attempts == 3
        assert failure.kind == "crash"
        assert summary.points == len(POINTS) - 1
        assert "QUARANTINED" in summary.render()


class TestSerialFallback:
    def test_jobs_one_runs_in_process(self):
        ref = _reference()
        summary = sweep(POINTS, jobs=1)
        assert summary.ok and summary.jobs == 1
        assert summary.misses == summary.points
        _assert_matches(ref)

    def test_broken_mp_context_degrades_to_serial(self, monkeypatch):
        """If worker processes cannot be spawned at all, the sweep
        degrades to serial in-process execution (recorded as an
        incident) and still produces bit-identical results."""
        ref = _reference()

        class _BrokenCtx:
            @staticmethod
            def Pipe(duplex=False):
                import multiprocessing
                return multiprocessing.Pipe(duplex)

            @staticmethod
            def Process(*args, **kwargs):
                raise OSError("process table full")

        monkeypatch.setattr(hardening, "_mp_context",
                            lambda: _BrokenCtx())
        summary = sweep(POINTS, jobs=4)
        assert summary.ok
        assert summary.degraded
        assert any(inc.kind == "parallel-to-serial"
                   for inc in summary.incidents)
        assert summary.points == len(POINTS)
        _assert_matches(ref)

    def test_serial_retry_ladder(self, monkeypatch):
        """The in-process path shares the retry/quarantine ladder."""
        calls = {"n": 0}
        real_run = runner.run

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real_run(*args, **kwargs)

        monkeypatch.setattr(runner, "run", flaky)
        summary = sweep(POINTS[:1], jobs=1, retries=2, backoff=0.01)
        assert summary.ok
        assert len(summary.retries) == 1
        assert summary.retries[0].kind == "error"


class TestCheckpoint:
    def test_resume_skips_completed_points(self, tmp_path):
        ckpt = str(tmp_path / "sweep.ckpt")
        first = sweep(POINTS, jobs=2, checkpoint=ckpt)
        assert first.ok and first.misses == len(POINTS)

        # wipe all caches; only the checkpoint remembers
        runner.clear_cache()
        second = sweep(POINTS, jobs=2, checkpoint=ckpt)
        assert second.ok
        assert second.points == len(POINTS)
        assert second.misses == 0   # everything resumed, nothing rerun

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        ckpt.write_bytes(b"definitely not a pickle")
        summary = sweep(POINTS[:1], jobs=1, checkpoint=str(ckpt))
        assert summary.ok and summary.points == 1


class TestRunnerDegradation:
    def test_fast_path_exception_falls_back_to_slow(self, monkeypatch):
        """An unexpected fast-path crash retries on the interpreted
        slow path and records an incident instead of failing."""
        import repro.uarch.system as system

        def boom(*args, **kwargs):
            raise RuntimeError("fast path exploded")

        ref = dataclasses.asdict(
            runner.run("sgemm-uc", "io+x", mode="specialized",
                       scale=SCALE, use_disk_cache=False, fast=False))
        runner.clear_cache(keep_disk=True)
        runner.drain_incidents()

        monkeypatch.setattr(system, "fused_blocks", boom)
        r = runner.run("sgemm-uc", "io+x", mode="specialized",
                       scale=SCALE, use_disk_cache=False, fast=True)
        incidents = runner.drain_incidents()
        assert len(incidents) == 1
        assert incidents[0].kind == "fast-path-fallback"
        assert "fast path exploded" in incidents[0].detail
        assert dataclasses.asdict(r) == ref

    def test_violations_are_never_masked(self, monkeypatch):
        """The ladder must not swallow an InvariantViolation."""
        from repro.verify import InvariantViolation
        import repro.uarch.system as system

        def raising_run(self, *args, **kwargs):
            raise InvariantViolation("mivt", "synthetic violation")

        monkeypatch.setattr(system.SystemSimulator, "run", raising_run)
        with pytest.raises(InvariantViolation):
            runner.run("sgemm-uc", "io+x", mode="specialized",
                       scale=SCALE, use_disk_cache=False, fast=True)


class TestDiskCacheIntegrity:
    def test_truncated_record_quarantined_and_resimulated(self):
        point = dict(kernel_name="sgemm-uc", config_name="io",
                     mode="traditional", scale=SCALE)
        runner.run(**point)
        from repro.sim.backends import resolve_backend
        key = runner._fingerprint(
            get_kernel("sgemm-uc"), runner._resolve_config("io"),
            "traditional", "xloops", True, SCALE, 0, False,
            resolve_backend(runner.default_backend()).name)
        path = diskcache._record_path(key)
        blob = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(blob[:len(blob) // 2])   # torn write

        runner.clear_cache(keep_disk=True)
        diskcache.reset_stats()
        n = runner.simulations
        r = runner.run(**point)
        assert runner.simulations == n + 1   # re-simulated, not served
        assert diskcache.stats["corrupt"] == 1
        assert diskcache.stats["quarantined"] == 1
        assert r.cycles > 0
        qdir = os.path.join(diskcache.cache_dir(), "quarantine")
        assert os.listdir(qdir)

    def test_bitflip_fails_checksum(self):
        key = diskcache.cache_key("bitflip-target")
        assert diskcache.store(key, {"cycles": 99})
        path = diskcache._record_path(key)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0x40                     # flip one payload bit
        with open(path, "wb") as f:
            f.write(bytes(blob))
        assert diskcache.load(key) is None
        assert diskcache.stats["corrupt"] >= 1

    def test_legacy_bare_pickle_still_served(self):
        import pickle
        key = diskcache.cache_key("legacy-record")
        path = diskcache._record_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as f:
            pickle.dump({"cycles": 7}, f)
        assert diskcache.load(key) == {"cycles": 7}

    def test_fsck_quarantines_and_sweeps(self, tmp_path):
        diskcache.configure(cache_dir=str(tmp_path))
        good = diskcache.cache_key("good")
        bad = diskcache.cache_key("bad")
        diskcache.store(good, [1])
        diskcache.store(bad, [2])
        bad_path = diskcache._record_path(bad)
        with open(bad_path, "wb") as f:
            f.write(b"RPR1garbage-that-fails-the-checksum")
        stale = os.path.join(str(tmp_path), good[:2], "old.tmp")
        with open(stale, "w") as f:
            f.write("leftover")
        os.utime(stale, (0, 0))              # ancient

        report = diskcache.fsck()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["corrupt"] == 1
        assert len(report["quarantined"]) == 1
        assert report["stale_tmp"] == 1
        assert not os.path.exists(bad_path)
        assert diskcache.load(good) == [1]
