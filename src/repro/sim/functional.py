"""Functional (instruction-set level) executor — the golden model.

Semantics are factored as per-mnemonic handlers operating on a register
file, a memory *interface*, and a PC, so that the same handlers drive:

* the GPP functional core (traditional execution, trace generation for
  the timing models), and
* the LPSU lanes (which substitute an LSQ-backed memory interface and a
  private register file during specialized execution).

Traditional-execution semantics for the XLOOPS extensions follow the
paper (Section II-C): ``xloop.*`` behaves as a conditional backward
branch (taken while index < bound) and ``*.xi`` behaves as a plain add.
"""

from __future__ import annotations

from ..isa.instructions import OPS, Fmt, Instr
from .memory import (MASK32, Memory, bits_to_f32, f32_to_bits, to_s32,
                     to_u32)

#: jumping here terminates execution (the harness seeds ra with it)
HALT_PC = 0x0000_0BAD & ~3


class SimError(Exception):
    """Functional-simulation failure (bad fetch, unimplemented op...)."""


class LivelockError(SimError):
    """A cycle/step budget was exhausted: the simulated machine is
    (almost certainly) spinning without making forward progress.

    Raised by the GPP step guards and by the LPSU's ``max_cycles``
    watchdog; the fault-injection campaign classifies it as a *hang*
    outcome, distinct from ordinary :class:`SimError` crashes.
    """


class StepInfo:
    """Per-instruction record handed to timing models.

    :meth:`FunctionalCore.step` reuses one mutable instance per core to
    avoid per-instruction allocation churn; consumers (the online timing
    models) must read it before the next ``step()``.
    """

    __slots__ = ("instr", "pc", "next_pc", "taken", "addr")

    def __init__(self, instr, pc, next_pc, taken, addr):
        self.instr = instr
        self.pc = pc
        self.next_pc = next_pc
        self.taken = taken
        self.addr = addr

    def __repr__(self):
        return ("StepInfo(pc=0x%x, %s, next=0x%x)"
                % (self.pc, self.instr.mnemonic, self.next_pc))


# ---------------------------------------------------------------------------
# semantics handlers: (instr, regs, mem, pc) -> (next_pc, addr, taken)
# regs is a 32-entry list of canonical u32; handlers must keep x0 == 0.
# ---------------------------------------------------------------------------

def _flt(bits):
    return bits_to_f32(bits)


_ALU_R = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: to_s32(a) >> (b & 31),
    "slt": lambda a, b: 1 if to_s32(a) < to_s32(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "addu.xi": lambda a, b: a + b,
}

_ALU_I = {
    "addi": lambda a, i: a + i,
    "andi": lambda a, i: a & to_u32(i),
    "ori": lambda a, i: a | to_u32(i),
    "xori": lambda a, i: a ^ to_u32(i),
    "slti": lambda a, i: 1 if to_s32(a) < i else 0,
    "sltiu": lambda a, i: 1 if a < to_u32(i) else 0,
    "slli": lambda a, i: a << (i & 31),
    "srli": lambda a, i: a >> (i & 31),
    "srai": lambda a, i: to_s32(a) >> (i & 31),
    "addiu.xi": lambda a, i: a + i,
}


def _muldiv(mnemonic, a, b):
    sa, sb = to_s32(a), to_s32(b)
    if mnemonic == "mul":
        return sa * sb
    if mnemonic == "mulh":
        return (sa * sb) >> 32
    if mnemonic == "div":
        if sb == 0:
            return MASK32
        q = abs(sa) // abs(sb)
        return q if (sa < 0) == (sb < 0) else -q
    if mnemonic == "divu":
        return a // b if b else MASK32
    if mnemonic == "rem":
        if sb == 0:
            return sa
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return sa - q * sb
    if mnemonic == "remu":
        return a % b if b else a
    raise SimError("bad muldiv %r" % mnemonic)


def _fp(mnemonic, a, b):
    fa, fb = _flt(a), _flt(b)
    if mnemonic == "fadd.s":
        return f32_to_bits(fa + fb)
    if mnemonic == "fsub.s":
        return f32_to_bits(fa - fb)
    if mnemonic == "fmul.s":
        return f32_to_bits(fa * fb)
    if mnemonic == "fdiv.s":
        return f32_to_bits(fa / fb) if fb != 0.0 else 0x7FC00000
    if mnemonic == "fmin.s":
        return f32_to_bits(min(fa, fb))
    if mnemonic == "fmax.s":
        return f32_to_bits(max(fa, fb))
    if mnemonic == "flt.s":
        return 1 if fa < fb else 0
    if mnemonic == "fle.s":
        return 1 if fa <= fb else 0
    if mnemonic == "feq.s":
        return 1 if fa == fb else 0
    raise SimError("bad fp op %r" % mnemonic)


_BRANCH = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_s32(a) < to_s32(b),
    "bge": lambda a, b: to_s32(a) >= to_s32(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

_LOAD_SIZE = {"lw": (4, False), "lh": (2, True), "lhu": (2, False),
              "lb": (1, True), "lbu": (1, False)}
_STORE_SIZE = {"sw": 4, "sh": 2, "sb": 1}


def execute(instr, regs, mem, pc):
    """Execute one instruction; returns ``(next_pc, addr, taken)``.

    *mem* must provide ``load(addr, size, signed)``,
    ``store(addr, size, value)`` and ``amo(kind, addr, value)``.
    """
    op = instr.op
    m = op.mnemonic
    fmt = op.fmt
    next_pc = pc + 4
    addr = None
    taken = False

    if fmt == Fmt.R or fmt == Fmt.XI_R:
        a, b = regs[instr.rs1], regs[instr.rs2]
        if m in _ALU_R:
            value = _ALU_R[m](a, b)
        elif op.is_fp:
            value = _fp(m, a, b)
        else:
            value = _muldiv(m, a, b)
        if instr.rd:
            regs[instr.rd] = value & MASK32
    elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I):
        value = _ALU_I[m](regs[instr.rs1], instr.imm)
        if instr.rd:
            regs[instr.rd] = value & MASK32
    elif fmt == Fmt.R2:
        a = regs[instr.rs1]
        if m == "fcvt.s.w":
            value = f32_to_bits(float(to_s32(a)))
        elif m == "fcvt.w.s":
            value = int(_flt(a))
        elif m == "fsqrt.s":
            fa = _flt(a)
            value = f32_to_bits(fa ** 0.5) if fa >= 0.0 else 0x7FC00000
        else:
            raise SimError("bad R2 op %r" % m)
        if instr.rd:
            regs[instr.rd] = value & MASK32
    elif fmt == Fmt.LOAD:
        size, signed = _LOAD_SIZE[m]
        addr = to_u32(regs[instr.rs1] + instr.imm)
        if instr.rd:
            regs[instr.rd] = mem.load(addr, size, signed)
        else:
            mem.load(addr, size, signed)
    elif fmt == Fmt.STORE:
        addr = to_u32(regs[instr.rs1] + instr.imm)
        mem.store(addr, _STORE_SIZE[m], regs[instr.rs2])
    elif fmt == Fmt.AMO:
        addr = regs[instr.rs1]
        old = mem.amo(m, addr, regs[instr.rs2])
        if instr.rd:
            regs[instr.rd] = old
    elif fmt == Fmt.BRANCH:
        taken = _BRANCH[m](regs[instr.rs1], regs[instr.rs2])
        if taken:
            next_pc = pc + instr.imm
    elif fmt == Fmt.XLOOP:
        # Traditional execution: conditional backward branch while the
        # loop index (rs1) is below the bound (rs2).
        taken = to_s32(regs[instr.rs1]) < to_s32(regs[instr.rs2])
        if taken:
            next_pc = pc + instr.imm
    elif fmt == Fmt.JAL:
        if instr.rd:
            regs[instr.rd] = to_u32(pc + 4)
        next_pc = pc + instr.imm
        taken = True
    elif fmt == Fmt.JALR:
        target = to_u32(regs[instr.rs1] + instr.imm) & ~1
        if instr.rd:
            regs[instr.rd] = to_u32(pc + 4)
        next_pc = target
        taken = True
    elif fmt == Fmt.LUI:
        if instr.rd:
            regs[instr.rd] = to_u32(instr.imm << 12)
    elif fmt == Fmt.NONE:
        pass  # fence: ordering only; no architectural effect here
    else:  # pragma: no cover
        raise SimError("unimplemented format %r" % fmt)
    return next_pc, addr, taken


# ---------------------------------------------------------------------------
# pre-decoded dispatch: one specialized closure per static instruction
# ---------------------------------------------------------------------------
#
# ``execute`` re-derives format, mnemonic, and operand fields on every
# dynamic instruction.  ``decode_program`` does that work once per
# *static* instruction, producing a PC-indexed table of handlers
# ``(regs, mem) -> (next_pc, addr, taken)`` with operands, immediates,
# and semantic functions bound in the closure.  Handlers are exact
# behavioural replicas of :func:`execute` (the unit suite and the
# kernel goldens cross-check them), so cycle/energy results are
# bit-identical whichever path runs.

def _fp_div(a, b):
    fb = bits_to_f32(b)
    return f32_to_bits(bits_to_f32(a) / fb) if fb != 0.0 else 0x7FC00000


_FP_R = {
    "fadd.s": lambda a, b: f32_to_bits(bits_to_f32(a) + bits_to_f32(b)),
    "fsub.s": lambda a, b: f32_to_bits(bits_to_f32(a) - bits_to_f32(b)),
    "fmul.s": lambda a, b: f32_to_bits(bits_to_f32(a) * bits_to_f32(b)),
    "fdiv.s": _fp_div,
    "fmin.s": lambda a, b: f32_to_bits(min(bits_to_f32(a),
                                           bits_to_f32(b))),
    "fmax.s": lambda a, b: f32_to_bits(max(bits_to_f32(a),
                                           bits_to_f32(b))),
    "flt.s": lambda a, b: 1 if bits_to_f32(a) < bits_to_f32(b) else 0,
    "fle.s": lambda a, b: 1 if bits_to_f32(a) <= bits_to_f32(b) else 0,
    "feq.s": lambda a, b: 1 if bits_to_f32(a) == bits_to_f32(b) else 0,
}

_MULDIV_R = {m: (lambda a, b, _m=m: _muldiv(_m, a, b))
             for m in ("mul", "mulh", "div", "divu", "rem", "remu")}

_R2_OPS = {
    "fcvt.s.w": lambda a: f32_to_bits(float(to_s32(a))),
    "fcvt.w.s": lambda a: int(bits_to_f32(a)),
    "fsqrt.s": lambda a: (f32_to_bits(bits_to_f32(a) ** 0.5)
                          if bits_to_f32(a) >= 0.0 else 0x7FC00000),
}


def decode_instr(instr, pc=None):
    """Specialized handler ``(regs, mem) -> (next_pc, addr, taken)``
    for one static instruction at byte address *pc* (default:
    ``instr.pc``)."""
    op = instr.op
    m = op.mnemonic
    fmt = op.fmt
    if pc is None:
        pc = instr.pc
    pc4 = pc + 4
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

    if fmt == Fmt.R or fmt == Fmt.XI_R:
        fn = _ALU_R.get(m) or _FP_R.get(m) or _MULDIV_R.get(m)
        if fn is not None:
            if rd:
                def h(regs, mem):
                    regs[rd] = fn(regs[rs1], regs[rs2]) & MASK32
                    return pc4, None, False
            else:
                def h(regs, mem):
                    return pc4, None, False
            return h
    elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I):
        fn = _ALU_I[m]
        if rd:
            def h(regs, mem):
                regs[rd] = fn(regs[rs1], imm) & MASK32
                return pc4, None, False
        else:
            def h(regs, mem):
                return pc4, None, False
        return h
    elif fmt == Fmt.R2:
        fn = _R2_OPS.get(m)
        if fn is not None:
            # always evaluate: fcvt.w.s can raise on NaN/inf inputs even
            # with rd == x0, matching :func:`execute`
            if rd:
                def h(regs, mem):
                    regs[rd] = fn(regs[rs1]) & MASK32
                    return pc4, None, False
            else:
                def h(regs, mem):
                    fn(regs[rs1])
                    return pc4, None, False
            return h
    elif fmt == Fmt.LOAD:
        size, signed = _LOAD_SIZE[m]
        if rd:
            def h(regs, mem):
                addr = (regs[rs1] + imm) & MASK32
                regs[rd] = mem.load(addr, size, signed)
                return pc4, addr, False
        else:
            def h(regs, mem):
                addr = (regs[rs1] + imm) & MASK32
                mem.load(addr, size, signed)
                return pc4, addr, False
        return h
    elif fmt == Fmt.STORE:
        size = _STORE_SIZE[m]

        def h(regs, mem):
            addr = (regs[rs1] + imm) & MASK32
            mem.store(addr, size, regs[rs2])
            return pc4, addr, False
        return h
    elif fmt == Fmt.AMO:
        if rd:
            def h(regs, mem):
                addr = regs[rs1]
                regs[rd] = mem.amo(m, addr, regs[rs2])
                return pc4, addr, False
        else:
            def h(regs, mem):
                addr = regs[rs1]
                mem.amo(m, addr, regs[rs2])
                return pc4, addr, False
        return h
    elif fmt == Fmt.BRANCH:
        cond = _BRANCH[m]
        target = pc + imm

        def h(regs, mem):
            if cond(regs[rs1], regs[rs2]):
                return target, None, True
            return pc4, None, False
        return h
    elif fmt == Fmt.XLOOP:
        target = pc + imm

        def h(regs, mem):
            if to_s32(regs[rs1]) < to_s32(regs[rs2]):
                return target, None, True
            return pc4, None, False
        return h
    elif fmt == Fmt.JAL:
        target = pc + imm
        link = to_u32(pc + 4)
        if rd:
            def h(regs, mem):
                regs[rd] = link
                return target, None, True
        else:
            def h(regs, mem):
                return target, None, True
        return h
    elif fmt == Fmt.JALR:
        link = to_u32(pc + 4)
        if rd:
            def h(regs, mem):
                target = (regs[rs1] + imm) & MASK32 & ~1
                regs[rd] = link
                return target, None, True
        else:
            def h(regs, mem):
                return (regs[rs1] + imm) & MASK32 & ~1, None, True
        return h
    elif fmt == Fmt.LUI:
        if rd:
            value = to_u32(imm << 12)

            def h(regs, mem):
                regs[rd] = value
                return pc4, None, False
        else:
            def h(regs, mem):
                return pc4, None, False
        return h
    elif fmt == Fmt.NONE:
        def h(regs, mem):
            return pc4, None, False
        return h

    # anything unrecognized falls back to the generic interpreter so a
    # new mnemonic degrades gracefully instead of silently diverging
    def h(regs, mem, _i=instr, _pc=pc):
        return execute(_i, regs, mem, _pc)
    return h


def decode_program(program):
    """PC-indexed handler table for *program*, cached on the object."""
    cached = getattr(program, "_decoded", None)
    if cached is not None and len(cached) == len(program.instrs):
        return cached
    table = [decode_instr(ins) for ins in program.instrs]
    program._decoded = table
    return table


class FunctionalCore:
    """Sequential golden-model core.

    Runs a :class:`~repro.asm.program.Program` against a
    :class:`~repro.sim.memory.Memory`.  ``step()`` returns a
    :class:`StepInfo` that online timing models consume (one reused
    record per core; see :class:`StepInfo`).
    """

    def __init__(self, program, mem=None):
        self.program = program
        self.mem = mem if mem is not None else Memory()
        self.regs = [0] * 32
        self.pc = program.text_base
        self.icount = 0
        self.halted = False
        self.mem.load_program(program)
        self._decoded = decode_program(program)
        self._instrs = program.instrs
        self._base = program.text_base
        self._n = len(program.instrs)
        self._info = StepInfo(None, 0, 0, False, None)

    # -- ABI helpers ----------------------------------------------------------

    def setup_call(self, entry, args=(), sp=0x0080_0000):
        """Arrange to call *entry* with integer *args* then halt."""
        if isinstance(entry, str):
            entry = self.program.entry(entry)
        self.pc = entry
        self.regs = [0] * 32
        self.regs[1] = HALT_PC           # ra -> halt sentinel
        self.regs[2] = sp
        for i, a in enumerate(args):
            if i >= 8:
                raise SimError("more than 8 arguments unsupported")
            self.regs[10 + i] = to_u32(int(a))
        self.halted = False
        return self

    # -- execution -------------------------------------------------------------

    def step(self):
        if self.halted:
            raise SimError("core is halted")
        pc = self.pc
        idx = (pc - self._base) >> 2
        if pc & 3 or not 0 <= idx < self._n:
            raise IndexError("bad instruction fetch at pc=0x%x" % pc)
        next_pc, addr, taken = self._decoded[idx](self.regs, self.mem)
        self.pc = next_pc
        self.icount += 1
        if next_pc == HALT_PC:
            self.halted = True
        info = self._info
        info.instr = self._instrs[idx]
        info.pc = pc
        info.next_pc = next_pc
        info.taken = taken
        info.addr = addr
        return info

    def run(self, max_steps=50_000_000, fast=True):
        """Run to completion; returns the dynamic instruction count.

        With *fast* (the default) straight-line runs execute through
        fused superblock closures (:mod:`repro.sim.fusion`) — one
        dispatch per basic block; unknown pcs fall back to
        :meth:`step`.  Architectural results are identical either way.
        """
        steps0 = self.icount
        step = self.step
        if fast:
            from .fusion import fused_blocks
            get = fused_blocks(self.program, "func").get
            while not self.halted:
                blk = get(self.pc)
                if blk is None:
                    step()
                elif blk(self) == HALT_PC:
                    self.halted = True
                if self.icount - steps0 > max_steps:
                    raise LivelockError("exceeded %d steps (livelock?)"
                                        % max_steps)
            return self.icount - steps0
        while not self.halted:
            step()
            if self.icount - steps0 > max_steps:
                raise LivelockError("exceeded %d steps (livelock?)"
                                    % max_steps)
        return self.icount - steps0

    @property
    def return_value(self):
        return to_s32(self.regs[10])


def run_program(program, entry="main", args=(), mem=None,
                max_steps=50_000_000, fast=True):
    """One-shot helper: call *entry* with *args*; returns the core."""
    core = FunctionalCore(program, mem)
    core.setup_call(entry, args)
    core.run(max_steps, fast=fast)
    return core
