"""Table V area / cycle-time model tests (paper Section V)."""

import pytest
from hypothesis import given, strategies as st

from repro.vlsi import (buffer_array, cache_macro, cycle_time_ns,
                        gpp_area, lpsu_area, sram, table5_rows)


class TestCactiLite:
    @given(b=st.integers(min_value=64, max_value=1 << 20))
    def test_area_monotone(self, b):
        assert sram(2 * b).area_mm2 > sram(b).area_mm2
        assert buffer_array(2 * b).area_mm2 > buffer_array(b).area_mm2

    def test_buffers_less_dense_than_sram(self):
        assert buffer_array(512).area_mm2 > sram(512).area_mm2

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            sram(0)
        with pytest.raises(ValueError):
            buffer_array(-4)

    def test_cache_macro_includes_tags(self):
        assert cache_macro(16 * 1024).area_mm2 > sram(16 * 1024).area_mm2


class TestTable5:
    def test_gpp_baseline_area(self):
        # paper: 0.25 mm^2 in 40 nm
        assert gpp_area().total_mm2 == pytest.approx(0.25, abs=0.01)

    def test_primary_design_overhead(self):
        # paper: lpsu+i128+ln4 is ~43% larger than the GPP ("only 40%
        # area overhead" in the abstract)
        base = gpp_area()
        primary = lpsu_area(lanes=4, ib_entries=128)
        assert 0.35 < primary.overhead_vs(base) < 0.50

    def test_lane_sweep_range(self):
        # paper: 24-77% overhead for 2-8 lanes at 128 IB entries
        base = gpp_area()
        two = lpsu_area(lanes=2).overhead_vs(base)
        eight = lpsu_area(lanes=8).overhead_vs(base)
        assert 0.20 < two < 0.30
        assert 0.70 < eight < 0.85

    def test_area_roughly_linear_in_lanes(self):
        base = gpp_area()
        areas = [lpsu_area(lanes=k).lpsu_mm2 for k in (2, 4, 6, 8)]
        diffs = [b - a for a, b in zip(areas, areas[1:])]
        assert max(diffs) - min(diffs) < 1e-9   # exactly linear model

    def test_ib_sweep_modest(self):
        # paper: 41-48% across 96-192 entries
        base = gpp_area()
        overheads = [lpsu_area(4, ib).overhead_vs(base)
                     for ib in (96, 128, 160, 192)]
        assert overheads == sorted(overheads)
        assert overheads[-1] - overheads[0] < 0.10

    def test_cycle_time_grows_with_lanes(self):
        cts = [cycle_time_ns(k, 128) for k in (2, 4, 6, 8)]
        assert cts == sorted(cts)
        assert 1.9 < cts[0] < 2.1      # paper: 1.98
        assert 2.4 < cts[-1] < 2.7     # paper: 2.54

    def test_table5_rows_shape(self):
        rows = table5_rows()
        assert rows[0][0] == "scalar"
        names = [r[0] for r in rows]
        assert "lpsu+i128+ln4" in names
        assert len(rows) == 8

    def test_breakdown_sums(self):
        rep = lpsu_area()
        assert rep.total_mm2 == pytest.approx(
            sum(rep.breakdown.values()))
        assert rep.lpsu_mm2 < rep.total_mm2
