"""Disk-cache administration: code-fingerprint key salting, usage
stats, size-bounded pruning, and the ``repro cache`` CLI."""

import os
import time

from repro.cli import main
from repro.eval import diskcache


def _populate(tmp_path, n=4, size=1000):
    diskcache.configure(cache_dir=str(tmp_path))
    keys = []
    for i in range(n):
        key = diskcache.cache_key("admin", i)
        diskcache.store(key, b"x" * size)
        keys.append(key)
    return keys


class TestCodeFingerprintSalt:
    def test_key_changes_with_code_fingerprint(self, monkeypatch):
        key = diskcache.cache_key("point", 1)
        assert key == diskcache.cache_key("point", 1)  # deterministic
        monkeypatch.setattr(diskcache, "_code_fp", "different-code")
        assert diskcache.cache_key("point", 1) != key

    def test_fingerprint_hashed_once_per_interpreter(self,
                                                     monkeypatch):
        # the package walk + hash is paid at most once per process:
        # repeated runner.run entry points (and every cache_key call)
        # must reuse the memoized digest
        calls = []
        real_walk = os.walk

        def counting_walk(*args, **kw):
            calls.append(args)
            return real_walk(*args, **kw)

        monkeypatch.setattr(diskcache, "_code_fp", None)
        monkeypatch.setattr(diskcache.os, "walk", counting_walk)
        fp = diskcache.code_fingerprint()
        assert diskcache.code_fingerprint() == fp
        diskcache.cache_key("point", 1)
        diskcache.cache_key("point", 2)
        assert len(calls) == 1

    def test_fingerprint_covers_package_sources(self):
        fp = diskcache.code_fingerprint()
        assert fp == diskcache.code_fingerprint()  # memoized
        assert len(fp) == 64
        # the fingerprint hashes this very package: its root holds
        # the repro sources the walk is defined over
        root = os.path.dirname(os.path.abspath(diskcache.__file__))
        assert os.path.exists(os.path.join(root, "diskcache.py"))


class TestDiskStatsAndPrune:
    def test_stats_count_records_and_bytes(self, tmp_path):
        _populate(tmp_path, n=3)
        st = diskcache.disk_stats()
        assert st["dir"] == str(tmp_path)
        assert st["records"] == 3
        assert st["bytes"] > 3 * 1000

    def test_prune_keeps_newest_within_budget(self, tmp_path):
        keys = _populate(tmp_path, n=4)
        # make the first record clearly the oldest
        old = diskcache._record_path(keys[0])
        past = time.time() - 1000
        os.utime(old, (past, past))
        st = diskcache.disk_stats()
        budget = st["bytes"] - 1  # force exactly one eviction
        removed, freed = diskcache.prune(budget)
        assert removed == 1
        assert freed > 0
        assert not os.path.exists(old)
        assert diskcache.load(keys[-1]) is not None

    def test_prune_to_zero_removes_everything(self, tmp_path):
        _populate(tmp_path, n=3)
        removed, _freed = diskcache.prune(0)
        assert removed == 3
        assert diskcache.disk_stats()["records"] == 0


class TestDefaultFast:
    def test_env_var_disables(self, monkeypatch):
        from repro.eval import runner
        monkeypatch.setattr(runner, "_DEFAULT_FAST", None)
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        assert runner.default_fast() is False
        monkeypatch.setattr(runner, "_DEFAULT_FAST", None)
        monkeypatch.delenv("REPRO_NO_FAST")
        assert runner.default_fast() is True

    def test_set_default_fast_mirrors_env(self, monkeypatch):
        from repro.eval import runner
        saved = runner._DEFAULT_FAST
        monkeypatch.setenv("REPRO_NO_FAST", "keep")  # restored on exit
        try:
            runner.set_default_fast(False)
            assert os.environ.get("REPRO_NO_FAST") == "1"
            assert runner.default_fast() is False
            runner.set_default_fast(True)
            assert "REPRO_NO_FAST" not in os.environ
            assert runner.default_fast() is True
        finally:
            runner._DEFAULT_FAST = saved


class TestCacheCLI:
    def test_stats(self, tmp_path, capsys):
        _populate(tmp_path, n=2)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "2" in out

    def test_clear(self, tmp_path, capsys):
        _populate(tmp_path, n=2)
        assert main(["cache", "clear"]) == 0
        assert diskcache.disk_stats()["records"] == 0

    def test_prune_with_size_suffix(self, tmp_path, capsys):
        _populate(tmp_path, n=4, size=1024)
        assert main(["cache", "prune", "--max-size", "2K"]) == 0
        assert diskcache.disk_stats()["bytes"] <= 2048

    def test_cache_dir_flag(self, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        other.mkdir()
        assert main(["cache", "stats",
                     "--cache-dir", str(other)]) == 0
        assert str(other) in capsys.readouterr().out
