import pytest

from repro.asm import AsmSyntaxError, assemble, split_li
from repro.asm.program import DATA_BASE, TEXT_BASE
from repro.isa import decode, encode


def test_basic_layout_and_symbols():
    prog = assemble("""
        .text
    main:
        addi a0, zero, 5
        add  a0, a0, a0
        ret
    """)
    assert prog.entry("main") == TEXT_BASE
    assert len(prog.instrs) == 3
    assert [i.pc for i in prog.instrs] == [TEXT_BASE, TEXT_BASE + 4,
                                           TEXT_BASE + 8]


def test_branch_offsets_are_pc_relative():
    prog = assemble("""
    top:
        addi t0, t0, 1
        bne  t0, t1, top
        beq  t0, t1, done
        nop
    done:
        ret
    """)
    bne = prog.instrs[1]
    assert bne.imm == -4
    beq = prog.instrs[2]
    assert beq.branch_target() == prog.entry("done")


def test_xloop_body_label_must_be_backward():
    with pytest.raises(AsmSyntaxError):
        assemble("""
            xloop.uc t0, t1, fwd
        fwd:
            nop
        """)


def test_xloop_assembles_with_backward_label():
    prog = assemble("""
    body:
        addi t0, t0, 1
        xloop.om t0, a1, body
    """)
    x = prog.instrs[1]
    assert x.mnemonic == "xloop.om"
    assert x.branch_target() == prog.entry("body")


def test_pseudo_expansions():
    prog = assemble("""
        nop
        mv   t0, t1
        neg  t2, t3
        not  t4, t5
        seqz a0, a1
        snez a2, a3
        j    end
        jr   ra
        ret
    end:
        call end
    """)
    ms = [i.mnemonic for i in prog.instrs]
    assert ms == ["addi", "addi", "sub", "xori", "sltiu", "sltu",
                  "jal", "jalr", "jalr", "jal"]


def test_li_values_execute_correctly():
    from repro.sim import FunctionalCore, to_s32
    prog = assemble("""
    main:
        li a0, 0x12345
        li a1, -100000
        li a2, 2047
        li a3, -2048
        ret
    """)
    core = FunctionalCore(prog)
    core.setup_call("main")
    core.run()
    assert core.regs[10] == 0x12345
    assert to_s32(core.regs[11]) == -100000
    assert to_s32(core.regs[12]) == 2047
    assert to_s32(core.regs[13]) == -2048


def test_split_li_reconstructs():
    for v in (0, 1, -1, 2047, -2048, 2048, 0x12345, -0x12345,
              (1 << 28) - 1, -(1 << 28)):
        hi, lo = split_li(v)
        assert (hi << 12) + lo == v
        assert -(1 << 11) <= lo < (1 << 11)
    with pytest.raises(ValueError):
        split_li(1 << 29)


def test_la_and_data_directives():
    prog = assemble("""
        .data
    tbl:    .word 1, 2, 3
    msg:    .asciiz "hi"
    buf:    .space 8
    flt:    .float 1.5
        .text
    main:
        la a0, tbl
        ret
    """)
    assert prog.symbols["tbl"] == DATA_BASE
    assert prog.symbols["msg"] == DATA_BASE + 12
    assert prog.symbols["buf"] == DATA_BASE + 15
    assert prog.symbols["flt"] == DATA_BASE + 23
    assert prog.data[:4] == b"\x01\x00\x00\x00"
    assert prog.data[12:15] == b"hi\x00"


def test_align_directive():
    prog = assemble("""
        .data
    a:  .byte 1
        .align 2
    b:  .word 7
    """)
    assert prog.symbols["b"] == DATA_BASE + 4


def test_duplicate_label_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("x:\n nop\nx:\n nop\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(" la a0, nowhere\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(" frobnicate a0, a1\n")


def test_operand_count_checked():
    with pytest.raises(AsmSyntaxError):
        assemble(" add a0, a1\n")


def test_memory_operand_forms():
    prog = assemble("""
        lw t0, 8(sp)
        lw t1, (sp)
        sw t0, -4(s0)
        amo.add t2, t3, (a0)
    """)
    assert prog.instrs[0].imm == 8
    assert prog.instrs[1].imm == 0
    assert prog.instrs[2].imm == -4
    amo = prog.instrs[3]
    assert (amo.rd, amo.rs2, amo.rs1) == (7, 28, 10)


def test_comments_and_blank_lines_ignored():
    prog = assemble("""
        # full-line comment
        nop      # trailing comment
        nop      // c++ style

    """)
    assert len(prog.instrs) == 2


def test_whole_program_encodes():
    prog = assemble("""
    main:
        li   t0, 0
        li   t1, 100
    loop:
        addi t0, t0, 1
        xloop.uc t0, t1, loop
        ret
    """)
    for ins in prog.instrs:
        out = decode(encode(ins), pc=ins.pc)
        assert out.mnemonic == ins.mnemonic
        assert out.imm == ins.imm


def test_listing_contains_labels_and_mnemonics():
    prog = assemble("main:\n addi a0, zero, 1\n ret\n")
    listing = prog.listing()
    assert "main:" in listing
    assert "addi" in listing


class TestRoundTripFixpoint:
    """Assemble -> disassemble -> reassemble must be a fixpoint."""

    SOURCES = [
        """
main:
    li   t0, 0
    li   t1, 64
body:
    slli t2, t0, 2
    add  t3, a0, t2
    lw   t4, 0(t3)
    amo.add t5, t4, (a1)
    addi t0, t0, 1
    xloop.uc t0, t1, body
    ret
""",
        """
f:
    addi sp, sp, -16
    sw   ra, 0(sp)
    fadd.s a0, a1, a2
    fcvt.w.s a0, a0
    call f
    lw   ra, 0(sp)
    addi sp, sp, 16
    ret
""",
        """
s:
    li  t0, 5
loop:
    addiu.xi t1, t1, 8
    addu.xi  t2, t2, t3
    addi t0, t0, 1
    xloop.orm.db t0, t4, loop
    xloop.break out
out:
    ret
""",
    ]

    @pytest.mark.parametrize("idx", range(3))
    def test_fixpoint(self, idx):
        from repro.asm import format_instr
        src = self.SOURCES[idx]
        prog1 = assemble(src)
        # rebuild source from the disassembly (labels via branch targets)
        lines = []
        for ins in prog1.instrs:
            label = prog1.label_at(ins.pc)
            if label:
                lines.append("%s:" % label)
            text = format_instr(ins)
            lines.append("    " + text)
        prog2 = assemble("\n".join(lines) + "\n")
        assert len(prog1.instrs) == len(prog2.instrs)
        for a, b in zip(prog1.instrs, prog2.instrs):
            assert a.mnemonic == b.mnemonic
            assert (a.rd, a.rs1, a.rs2, a.imm) == (b.rd, b.rs1, b.rs2,
                                                   b.imm), a
