"""Functional semantics of the .de extension instructions."""

import pytest

from repro.asm import assemble
from repro.sim import run_program


def test_xbreak_is_forward_jump_traditionally():
    core = run_program(assemble("""
main:
    li   t0, 0
    li   t1, 10
body:
    addi t0, t0, 1
    li   t2, 3
    bne  t0, t2, skip
    xloop.break out
skip:
    xloop.uc.de t0, t1, body
out:
    mv   a0, t0
    ret
"""), "main")
    assert core.return_value == 3   # exited at the third iteration


def test_de_xloop_taken_like_branch():
    core = run_program(assemble("""
main:
    li   t0, 0
    li   t1, 4
body:
    addi t0, t0, 1
    xloop.or.de t0, t1, body
    mv   a0, t0
    ret
"""), "main")
    assert core.return_value == 4   # no break: runs to the bound


def test_all_de_mnemonics_assemble_and_encode():
    from repro.isa import decode, encode
    for data in ("uc", "or", "om", "orm", "ua"):
        prog = assemble("""
main:
body:
    addi t0, t0, 1
    xloop.%s.de t0, t1, body
    ret
""" % data)
        x = prog.instrs[1]
        assert x.op.xloop_kind.control.value == "de"
        out = decode(encode(x), pc=x.pc)
        assert out.mnemonic == x.mnemonic
