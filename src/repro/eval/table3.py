"""Table III reproduction: the cycle-level configuration parameters of
the baseline GPPs and the LPSU."""

from __future__ import annotations

from .configs import CONFIGS
from .report import render_table


def build_table3():
    rows = []
    for name in ("io", "ooo/2", "ooo/4"):
        gpp = CONFIGS[name].gpp
        rows.append([
            name, gpp.kind, gpp.width, gpp.rob_entries, gpp.mem_ports,
            gpp.llfus, gpp.mispredict_penalty,
            "%dKB" % (gpp.cache.size_bytes // 1024), "-"])
    lpsu = CONFIGS["io+x"].lpsu
    rows.append([
        "LPSU", "lanes", lpsu.lanes, "-", lpsu.mem_ports, lpsu.llfus,
        lpsu.branch_penalty,
        "IB %d" % lpsu.ib_entries,
        "LSQ %d+%d" % (lpsu.lsq_loads, lpsu.lsq_stores)])
    return rows


def render_table3(rows=None):
    rows = rows or build_table3()
    headers = ["Config", "Kind", "Width/Lanes", "ROB", "MemPorts",
               "LLFUs", "BrPenalty", "Cache/IB", "LSQ"]
    return render_table(headers, rows,
                        title="Table III: cycle-level configurations")
