"""Compiler driver: annotated MiniC source -> assembled Program.

Pipeline: lex/parse -> sema -> xloop dependence analysis -> per-function
codegen (with linear-scan allocation) -> assembly -> Program.

``compile_source(..., xloops=False)`` produces the paper's GP-ISA
baseline binary from the *same* source (annotations ignored).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asm import assemble
from ..asm.program import DATA_BASE, TEXT_BASE, Program
from .ast_nodes import For, Function, Unit, walk_stmts
from .codegen import CodegenOptions, FuncCodegen
from .lexer import CompileError
from .parser import parse
from .passes.depend import analyze_unit_loops
from .sema import Sema


@dataclass
class LoopInfo:
    """Per-annotated-loop compilation record (for tests / reports)."""

    function: str
    line: int
    annotation: str
    mnemonic: str              # e.g. "xloop.om"
    cirs: Tuple[str, ...]
    dynamic_bound: bool
    body_insns: int = 0        # static body size (Table II "Num Insns")


@dataclass
class CompiledProgram:
    """A compiled kernel: the assembled program plus compiler metadata."""

    program: Program
    asm_text: str
    loops: List[LoopInfo] = field(default_factory=list)
    unit: Optional[Unit] = None

    def entry(self, name="main"):
        return self.program.entry(name)

    def loop_kinds(self):
        return tuple(l.mnemonic for l in self.loops)


def compile_source(source, xloops=True, xi_enabled=True, sr_enabled=True,
                   schedule_cirs=False, text_base=TEXT_BASE,
                   data_base=DATA_BASE, annotate="pragma"):
    """Compile MiniC *source*; returns a :class:`CompiledProgram`.

    ``annotate="pragma"`` (default) trusts ``#pragma xloops``
    annotations; ``annotate="auto"`` additionally runs the symbolic
    dependence prover over unannotated canonical loops and specializes
    them with proved patterns (``unordered`` only when every memory
    pair is certified independent, else ``ordered``)."""
    unit = parse(source)
    sema = Sema(unit)
    sema.run()
    if annotate == "auto":
        from .passes.prover import auto_annotate_unit
        auto_annotate_unit(unit)
    elif annotate != "pragma":
        raise ValueError("annotate must be 'pragma' or 'auto', got %r"
                         % (annotate,))
    analyze_unit_loops(unit)

    options = CodegenOptions(xloops=xloops, xi_enabled=xi_enabled,
                             sr_enabled=sr_enabled,
                             schedule_cirs=schedule_cirs)
    text_lines: List[str] = ["    .text"]
    data_lines: List[str] = []
    loops: List[LoopInfo] = []
    for func in unit.functions:
        func._symbols = sema.symbols_of[func.name]
        cg = FuncCodegen(func, unit, options)
        lines, data = cg.run()
        text_lines.extend(lines)
        data_lines.extend(data)
        for stmt in walk_stmts(func.body):
            if isinstance(stmt, For) and stmt.annotation:
                loops.append(LoopInfo(
                    function=func.name, line=stmt.line,
                    annotation=stmt.annotation,
                    mnemonic=stmt.xloop.mnemonic,
                    cirs=stmt.cir_names,
                    dynamic_bound=stmt.bound_is_dynamic))

    asm_text = "\n".join(text_lines)
    if data_lines:
        asm_text += "\n    .data\n" + "\n".join(
            "    " + line if not line.rstrip().endswith(":") else line
            for line in data_lines)
    asm_text += "\n"
    program = assemble(asm_text, text_base=text_base, data_base=data_base)
    # static body sizes: pair each LoopInfo with an emitted xloop of the
    # same mnemonic (nesting flips emission order vs. source order)
    sizes_by_mnemonic = {}
    for ins in program.instrs:
        if ins.op.is_xloop:
            sizes_by_mnemonic.setdefault(ins.mnemonic, []).append(
                (ins.pc - ins.branch_target()) // 4)
    for info in loops:
        bucket = sizes_by_mnemonic.get(info.mnemonic)
        if bucket:
            info.body_insns = bucket.pop(0)
    return CompiledProgram(program=program, asm_text=asm_text,
                           loops=loops, unit=unit)
