"""Persistent, content-addressed cache for simulation results.

A cache record is one pickled :class:`~repro.eval.runner.KernelRun`
stored under ``<cache-dir>/<key[:2]>/<key>.pkl``, where *key* is the
SHA-256 of everything that determines the result bit-for-bit:

* the kernel's MiniC source (and serial source, when that is the
  binary being simulated),
* the full platform configuration (``repr`` of the frozen
  :class:`~repro.uarch.params.SystemConfig` tree),
* the package version (stale results die on upgrade),
* the run parameters (mode, binary, xi, scale, seed, scheduling).

Because the key is derived from content rather than names, editing a
kernel or a config invalidates exactly the affected points.

Writes are process-safe: records are written to a temporary file in
the destination directory and published with :func:`os.replace`, so a
concurrent reader sees either nothing or a complete record, and two
workers racing on the same point both write the same bytes.

Records are integrity-checked: the on-disk format is a ``RPR1`` magic,
the SHA-256 of the pickled payload, then the payload itself.  A record
that fails its checksum or does not unpickle (truncation, bit rot, a
crashed writer that somehow bypassed the atomic rename) is *never*
served: it counts as a miss and is moved to ``<cache-dir>/quarantine/``
for post-mortem instead of being silently trusted or deleted.  Bare
pickle records from older versions are still readable.  ``repro cache
fsck`` (:func:`fsck`) audits the whole cache offline.

The store is *sharded*: records bucket into 256 two-hex-digit shard
directories, and each shard carries a persistent index (under
``<cache-dir>/index/<shard>.json``) recording every record's size and
mtime plus the shard directory's mtime at the moment the index was
written.  ``disk_stats``/``prune`` read the 256 small index files
instead of stat()ing every record, so they stay fast at millions of
records.  The index is *advisory and self-healing*: record lookups
never consult it, a shard whose directory mtime disagrees with its
index is rescanned on the spot (deletes and foreign writers invalidate
automatically, because unlink/rename bump the directory mtime), and
``repro cache fsck`` rebuilds every index from scratch.  Caches written
by older versions simply have no index and are indexed lazily.

On top of the disk tier sits a bounded in-memory *hot tier*: a
process-local LRU of decoded records (keyed by record key + code
fingerprint) so a repeated in-process hit skips the file read, the
checksum, and the unpickle entirely.  ``REPRO_CACHE_HOT_MB`` bounds it
(default 64 MiB, ``0`` disables); :func:`disk_stats` reports its
hits/evictions.  Records are content-addressed and immutable, so a hot
entry can never go stale -- at worst it outlives a pruned file, which
still serves the same bits.

Environment knobs (read at call time, so they work for forked pool
workers too):

``REPRO_CACHE_DIR``
    overrides the default ``~/.cache/repro`` location.
``REPRO_NO_CACHE``
    any of ``1/true/yes`` disables the disk cache entirely (used by CI
    to stay hermetic).
``REPRO_CACHE_HOT_MB``
    size bound of the in-memory decoded-record hot tier in MiB
    (default 64; 0 disables the tier).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"
ENV_HOT_MB = "REPRO_CACHE_HOT_MB"

_TRUTHY = ("1", "true", "yes", "on")

#: process-local override (set by :func:`configure`); beats the env var
_dir_override = None
_force_disabled = False

#: process-local counters, reported in sweep summaries
stats = {"hits": 0, "misses": 0, "writes": 0, "errors": 0,
         "corrupt": 0, "quarantined": 0,
         "hot_hits": 0, "hot_evictions": 0, "index_rebuilds": 0}

#: record-format magic: MAGIC + sha256(payload) + payload
MAGIC = b"RPR1"

#: on-disk per-shard index format version
INDEX_VERSION = 1

#: subdirectory of the cache root holding the per-shard index files
#: (outside the shard dirs, so writing an index never perturbs the
#: shard mtime the staleness check is based on)
INDEX_DIRNAME = "index"

#: default hot-tier bound when ``REPRO_CACHE_HOT_MB`` is unset
HOT_DEFAULT_MB = 64.0


def configure(cache_dir=None, enabled=None):
    """Set the cache directory and/or force-disable the disk cache for
    this process (and, via the environment, for forked workers)."""
    global _dir_override, _force_disabled
    if cache_dir is not None:
        _dir_override = str(cache_dir)
        os.environ[ENV_CACHE_DIR] = str(cache_dir)
    if enabled is not None:
        _force_disabled = not enabled
        if enabled:
            os.environ.pop(ENV_NO_CACHE, None)
        else:
            os.environ[ENV_NO_CACHE] = "1"


def reset_stats():
    for k in stats:
        stats[k] = 0


def enabled():
    if _force_disabled:
        return False
    return os.environ.get(ENV_NO_CACHE, "").lower() not in _TRUTHY


def cache_dir():
    if _dir_override:
        return _dir_override
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


#: memoized fingerprint of the package's own source code
_code_fp = None


def code_fingerprint():
    """SHA-256 over every ``.py`` file in the installed ``repro``
    package (path + contents, in sorted order).

    Folded into every :func:`cache_key`, this guarantees a result
    simulated by *older code* is never served after any source change
    -- even an unreleased, unversioned edit during development.  The
    version string alone only protects across releases."""
    global _code_fp
    if _code_fp is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                h.update(os.path.relpath(path, root).encode("utf-8"))
                try:
                    with open(path, "rb") as f:
                        h.update(f.read())
                except OSError:
                    pass
        _code_fp = h.hexdigest()
    return _code_fp


def cache_key(*parts):
    """SHA-256 fingerprint of the ``repr`` of *parts*, salted with
    :func:`code_fingerprint`."""
    payload = code_fingerprint() + repr(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _record_path(key):
    return os.path.join(cache_dir(), key[:2], key + ".pkl")


class CorruptRecord(Exception):
    """A cache record failed its checksum or did not deserialize."""


# ---------------------------------------------------------------------------
# in-memory hot tier (decoded-record LRU)
# ---------------------------------------------------------------------------

#: hot-tier LRU: (key, code fingerprint) -> (decoded object, byte cost)
_hot: "OrderedDict[tuple, tuple]" = OrderedDict()
_hot_bytes = 0


def hot_limit_bytes():
    """The hot tier's byte budget (``REPRO_CACHE_HOT_MB``)."""
    raw = os.environ.get(ENV_HOT_MB)
    if raw is None or not raw.strip():
        mb = HOT_DEFAULT_MB
    else:
        try:
            mb = float(raw)
        except ValueError:
            mb = HOT_DEFAULT_MB
    return max(0, int(mb * (1 << 20)))


def _hot_get(key):
    entry = _hot.get((key, code_fingerprint()))
    if entry is None:
        return None
    _hot.move_to_end((key, code_fingerprint()))
    stats["hot_hits"] += 1
    return entry[0]


def _hot_put(key, obj, nbytes):
    """Install a decoded record, evicting least-recently-used entries
    down to the byte budget.  An over-budget single record is simply
    not cached (it would evict everything for one entry)."""
    global _hot_bytes
    limit = hot_limit_bytes()
    if limit <= 0 or nbytes > limit:
        return
    hk = (key, code_fingerprint())
    old = _hot.pop(hk, None)
    if old is not None:
        _hot_bytes -= old[1]
    _hot[hk] = (obj, nbytes)
    _hot_bytes += nbytes
    while _hot_bytes > limit and _hot:
        _evicted, (_obj, cost) = _hot.popitem(last=False)
        _hot_bytes -= cost
        stats["hot_evictions"] += 1


def hot_clear():
    """Drop every hot-tier entry (keeps the counters)."""
    global _hot_bytes
    _hot.clear()
    _hot_bytes = 0


def hot_stats():
    """Hot-tier occupancy and lifetime counters."""
    return {"entries": len(_hot), "bytes": _hot_bytes,
            "limit_bytes": hot_limit_bytes(),
            "hits": stats["hot_hits"],
            "evictions": stats["hot_evictions"]}


# ---------------------------------------------------------------------------
# per-shard persistent index
# ---------------------------------------------------------------------------


def _index_dir():
    return os.path.join(cache_dir(), INDEX_DIRNAME)


def _index_path(shard):
    return os.path.join(_index_dir(), shard + ".json")


def _shard_dir(shard):
    return os.path.join(cache_dir(), shard)


def _shard_names():
    """The two-hex-digit shard directories that exist on disk."""
    root = cache_dir()
    try:
        subs = sorted(os.listdir(root))
    except OSError:
        return
    for sub in subs:
        if len(sub) == 2 and os.path.isdir(os.path.join(root, sub)):
            yield sub


def _dir_mtime_ns(path):
    try:
        return os.stat(path).st_mtime_ns
    except OSError:
        return None


def _scan_shard(shard):
    """``name -> [size, mtime]`` for every record (and writer-droppings
    ``.tmp``) in one shard directory -- the O(shard) slow path the
    index exists to avoid."""
    records = {}
    subdir = _shard_dir(shard)
    try:
        names = os.listdir(subdir)
    except OSError:
        return records
    for name in names:
        if not (name.endswith(".pkl") or name.endswith(".tmp")):
            continue
        try:
            st = os.stat(os.path.join(subdir, name))
        except OSError:
            continue
        records[name] = [st.st_size, st.st_mtime]
    return records


def _read_index(shard):
    try:
        with open(_index_path(shard)) as f:
            idx = json.load(f)
    except (OSError, ValueError):
        return None
    if not isinstance(idx, dict) or idx.get("v") != INDEX_VERSION \
            or not isinstance(idx.get("records"), dict):
        return None
    return idx


def _write_index(shard, records, mtime_ns):
    payload = {"v": INDEX_VERSION, "mtime_ns": mtime_ns,
               "count": len(records),
               "bytes": sum(r[0] for r in records.values()),
               "records": records}
    directory = _index_dir()
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, _index_path(shard))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None   # an unwritable index is merely a missing index
    return payload


def _shard_index(shard, rebuild=False):
    """The current index payload for *shard*, rescanning (and
    rewriting) it when missing or stale.  Staleness is the shard
    directory's mtime_ns disagreeing with the one recorded at index
    write time: any unlink, rename, or foreign write bumps it."""
    mtime_ns = _dir_mtime_ns(_shard_dir(shard))
    if mtime_ns is None:
        return None
    if not rebuild:
        idx = _read_index(shard)
        if idx is not None and idx.get("mtime_ns") == mtime_ns:
            return idx
    stats["index_rebuilds"] += 1
    # mtime sampled *before* the scan: a writer landing mid-scan
    # leaves the index stale (rescanned next time), never blessed
    mtime_ns = _dir_mtime_ns(_shard_dir(shard))
    records = _scan_shard(shard)
    payload = _write_index(shard, records, mtime_ns)
    if payload is None:
        payload = {"v": INDEX_VERSION, "mtime_ns": mtime_ns,
                   "count": len(records),
                   "bytes": sum(r[0] for r in records.values()),
                   "records": records}
    return payload


def _index_note_store(path, pre_mtime_ns):
    """Incrementally fold one freshly published record into its
    shard's index.  *pre_mtime_ns* is the shard directory's mtime
    before the write began: if the existing index does not match it,
    the index had already missed other writers, so the shard is
    rescanned instead of blessed.

    Two writers racing on one shard can still lose an increment (the
    index is read-modify-write without a lock); the loss is bounded to
    stats/prune accuracy -- lookups never consult the index -- and
    heals at the next mtime mismatch or ``fsck``."""
    subdir = os.path.dirname(path)
    shard = os.path.basename(subdir)
    idx = _read_index(shard)
    if idx is None or idx.get("mtime_ns") != pre_mtime_ns:
        _shard_index(shard, rebuild=True)
        return
    try:
        st = os.stat(path)
    except OSError:
        return
    records = idx["records"]
    records[os.path.basename(path)] = [st.st_size, st.st_mtime]
    _write_index(shard, records, _dir_mtime_ns(subdir))


def shard_stats():
    """Per-shard record counts and byte sizes (index-served)."""
    out = {}
    for shard in _shard_names():
        idx = _shard_index(shard)
        if idx is not None and idx["count"]:
            out[shard] = {"records": idx["count"],
                          "bytes": idx["bytes"]}
    return out


def _decode(blob):
    """Deserialize one on-disk record (checksummed or legacy bare
    pickle); raises :class:`CorruptRecord` on any damage."""
    if blob.startswith(MAGIC):
        digest, payload = blob[4:36], blob[36:]
        if len(digest) != 32 \
                or hashlib.sha256(payload).digest() != digest:
            raise CorruptRecord("checksum mismatch")
    else:
        payload = blob   # legacy record: bare pickle, best effort
    try:
        return pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError, TypeError,
            MemoryError) as exc:
        raise CorruptRecord("%s: %s" % (type(exc).__name__, exc))


def _quarantine(path):
    """Move a damaged record to ``<cache-dir>/quarantine/`` for
    post-mortem; returns the destination (or None if the move
    failed -- the record is then simply left in place)."""
    qdir = os.path.join(cache_dir(), "quarantine")
    try:
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, os.path.basename(path))
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = os.path.join(qdir,
                                "%s.%d" % (os.path.basename(path), n))
        os.replace(path, dest)
    except OSError:
        return None
    stats["quarantined"] += 1
    return dest


def load(key):
    """Return the cached object for *key*, or None.  A truncated,
    checksum-failing, or otherwise unreadable record counts as a miss
    and is quarantined (the caller re-simulates and overwrites).

    A warm in-process hit is served from the decoded-record hot tier
    without re-reading or re-hashing the file; the first disk hit
    installs the decoded object there."""
    if not enabled():
        return None
    obj = _hot_get(key)
    if obj is not None:
        stats["hits"] += 1
        return obj
    path = _record_path(key)
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError:
        stats["misses"] += 1
        return None
    try:
        obj = _decode(blob)
    except CorruptRecord:
        stats["corrupt"] += 1
        stats["misses"] += 1
        _quarantine(path)
        return None
    stats["hits"] += 1
    _hot_put(key, obj, len(blob))
    return obj


def store(key, obj):
    """Atomically publish *obj* under *key* (write-to-temp + rename),
    wrapped in the checksummed record format."""
    if not enabled():
        return False
    path = _record_path(key)
    directory = os.path.dirname(path)
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        os.makedirs(directory, exist_ok=True)
        pre_mtime_ns = _dir_mtime_ns(directory)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(MAGIC)
                f.write(hashlib.sha256(payload).digest())
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        stats["errors"] += 1
        return False
    stats["writes"] += 1
    _index_note_store(path, pre_mtime_ns)
    return True


def _iter_records():
    """Yield ``(path, size, mtime)`` for every record on disk."""
    root = cache_dir()
    if not os.path.isdir(root):
        return
    for sub in sorted(os.listdir(root)):
        subdir = os.path.join(root, sub)
        if not (len(sub) == 2 and os.path.isdir(subdir)):
            continue
        for name in sorted(os.listdir(subdir)):
            if not (name.endswith(".pkl") or name.endswith(".tmp")):
                continue
            path = os.path.join(subdir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            yield path, st.st_size, st.st_mtime


def disk_stats():
    """Totals for the on-disk cache (index-served: the per-shard
    indexes are read instead of stat()ing every record, with only
    stale shards rescanned) plus the in-memory hot tier."""
    records = 0
    total = 0
    shards = 0
    for shard in _shard_names():
        idx = _shard_index(shard)
        if idx is None:
            continue
        if idx["count"]:
            shards += 1
        records += idx["count"]
        total += idx["bytes"]
    return {"dir": cache_dir(), "records": records, "bytes": total,
            "shards": shards, "hot": hot_stats(),
            "index_rebuilds": stats["index_rebuilds"]}


def fsck(remove_stale_tmp=True, tmp_age=300.0):
    """Audit every record on disk: verify checksums, quarantine
    damaged records, and sweep stale ``.tmp`` droppings older than
    *tmp_age* seconds (a crashed writer's leftovers; young ones may
    belong to a live writer and are kept).

    Every shard index is rebuilt from the audited state at the end, so
    an fsck also repairs stale or missing indexes (``indexed`` reports
    how many shards were re-indexed).

    Returns a report dict: ``checked``, ``ok``, ``legacy`` (readable
    pre-checksum records), ``corrupt``, ``quarantined`` (destination
    paths), ``stale_tmp`` (removed count), ``indexed``.
    """
    import time
    report = {"dir": cache_dir(), "checked": 0, "ok": 0, "legacy": 0,
              "corrupt": 0, "quarantined": [], "stale_tmp": 0,
              "indexed": 0}
    now = time.time()
    for path, _size, mtime in list(_iter_records()):
        if path.endswith(".tmp"):
            if remove_stale_tmp and now - mtime > tmp_age:
                try:
                    os.unlink(path)
                    report["stale_tmp"] += 1
                except OSError:
                    pass
            continue
        report["checked"] += 1
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError:
            continue
        try:
            _decode(blob)
        except CorruptRecord:
            report["corrupt"] += 1
            stats["corrupt"] += 1
            dest = _quarantine(path)
            if dest:
                report["quarantined"].append(dest)
            continue
        report["ok"] += 1
        if not blob.startswith(MAGIC):
            report["legacy"] += 1
    for shard in _shard_names():
        _shard_index(shard, rebuild=True)
        report["indexed"] += 1
    return report


def prune(max_bytes):
    """Shrink the cache to at most *max_bytes* by deleting the
    least-recently-touched records first (loads don't update mtime, so
    this approximates oldest-first).  Returns ``(removed, freed)``.

    The candidate list comes from the per-shard indexes, not a full
    directory walk; every shard a deletion touches gets its index
    rebuilt afterwards (the unlinks have already invalidated it)."""
    entries = []
    for shard in _shard_names():
        idx = _shard_index(shard)
        if idx is None:
            continue
        base = _shard_dir(shard)
        for name, (size, mtime) in idx["records"].items():
            entries.append((os.path.join(base, name), size, mtime,
                            shard))
    entries.sort(key=lambda e: e[2], reverse=True)
    kept = 0
    removed = 0
    freed = 0
    touched = set()
    for path, size, _mtime, shard in entries:
        if kept + size <= max_bytes:
            kept += size
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        removed += 1
        freed += size
        touched.add(shard)
    for shard in touched:
        _shard_index(shard, rebuild=True)
    return removed, freed


def clear():
    """Delete every cache record under the active cache directory
    (including the per-shard indexes) and drop the hot tier."""
    hot_clear()
    root = cache_dir()
    if not os.path.isdir(root):
        return 0
    removed = 0
    for sub in os.listdir(root):
        subdir = os.path.join(root, sub)
        if not (len(sub) == 2 and os.path.isdir(subdir)):
            continue
        for name in os.listdir(subdir):
            if name.endswith(".pkl") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(subdir, name))
                    removed += 1
                except OSError:
                    pass
        try:
            os.rmdir(subdir)
        except OSError:
            pass
    idx_dir = _index_dir()
    if os.path.isdir(idx_dir):
        for name in os.listdir(idx_dir):
            if name.endswith(".json") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(idx_dir, name))
                except OSError:
                    pass
        try:
            os.rmdir(idx_dir)
        except OSError:
            pass
    return removed
