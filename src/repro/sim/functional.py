"""Functional (instruction-set level) executor — the golden model.

Semantics are factored as per-mnemonic handlers operating on a register
file, a memory *interface*, and a PC, so that the same handlers drive:

* the GPP functional core (traditional execution, trace generation for
  the timing models), and
* the LPSU lanes (which substitute an LSQ-backed memory interface and a
  private register file during specialized execution).

Traditional-execution semantics for the XLOOPS extensions follow the
paper (Section II-C): ``xloop.*`` behaves as a conditional backward
branch (taken while index < bound) and ``*.xi`` behaves as a plain add.
"""

from __future__ import annotations

from ..isa.instructions import OPS, Fmt, Instr
from .memory import (MASK32, Memory, bits_to_f32, f32_to_bits, to_s32,
                     to_u32)

#: jumping here terminates execution (the harness seeds ra with it)
HALT_PC = 0x0000_0BAD & ~3


class SimError(Exception):
    """Functional-simulation failure (bad fetch, unimplemented op...)."""


class StepInfo:
    """Per-instruction record handed to timing models."""

    __slots__ = ("instr", "pc", "next_pc", "taken", "addr")

    def __init__(self, instr, pc, next_pc, taken, addr):
        self.instr = instr
        self.pc = pc
        self.next_pc = next_pc
        self.taken = taken
        self.addr = addr

    def __repr__(self):
        return ("StepInfo(pc=0x%x, %s, next=0x%x)"
                % (self.pc, self.instr.mnemonic, self.next_pc))


# ---------------------------------------------------------------------------
# semantics handlers: (instr, regs, mem, pc) -> (next_pc, addr, taken)
# regs is a 32-entry list of canonical u32; handlers must keep x0 == 0.
# ---------------------------------------------------------------------------

def _flt(bits):
    return bits_to_f32(bits)


_ALU_R = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: to_s32(a) >> (b & 31),
    "slt": lambda a, b: 1 if to_s32(a) < to_s32(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "addu.xi": lambda a, b: a + b,
}

_ALU_I = {
    "addi": lambda a, i: a + i,
    "andi": lambda a, i: a & to_u32(i),
    "ori": lambda a, i: a | to_u32(i),
    "xori": lambda a, i: a ^ to_u32(i),
    "slti": lambda a, i: 1 if to_s32(a) < i else 0,
    "sltiu": lambda a, i: 1 if a < to_u32(i) else 0,
    "slli": lambda a, i: a << (i & 31),
    "srli": lambda a, i: a >> (i & 31),
    "srai": lambda a, i: to_s32(a) >> (i & 31),
    "addiu.xi": lambda a, i: a + i,
}


def _muldiv(mnemonic, a, b):
    sa, sb = to_s32(a), to_s32(b)
    if mnemonic == "mul":
        return sa * sb
    if mnemonic == "mulh":
        return (sa * sb) >> 32
    if mnemonic == "div":
        if sb == 0:
            return MASK32
        q = abs(sa) // abs(sb)
        return q if (sa < 0) == (sb < 0) else -q
    if mnemonic == "divu":
        return a // b if b else MASK32
    if mnemonic == "rem":
        if sb == 0:
            return sa
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return sa - q * sb
    if mnemonic == "remu":
        return a % b if b else a
    raise SimError("bad muldiv %r" % mnemonic)


def _fp(mnemonic, a, b):
    fa, fb = _flt(a), _flt(b)
    if mnemonic == "fadd.s":
        return f32_to_bits(fa + fb)
    if mnemonic == "fsub.s":
        return f32_to_bits(fa - fb)
    if mnemonic == "fmul.s":
        return f32_to_bits(fa * fb)
    if mnemonic == "fdiv.s":
        return f32_to_bits(fa / fb) if fb != 0.0 else 0x7FC00000
    if mnemonic == "fmin.s":
        return f32_to_bits(min(fa, fb))
    if mnemonic == "fmax.s":
        return f32_to_bits(max(fa, fb))
    if mnemonic == "flt.s":
        return 1 if fa < fb else 0
    if mnemonic == "fle.s":
        return 1 if fa <= fb else 0
    if mnemonic == "feq.s":
        return 1 if fa == fb else 0
    raise SimError("bad fp op %r" % mnemonic)


_BRANCH = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_s32(a) < to_s32(b),
    "bge": lambda a, b: to_s32(a) >= to_s32(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

_LOAD_SIZE = {"lw": (4, False), "lh": (2, True), "lhu": (2, False),
              "lb": (1, True), "lbu": (1, False)}
_STORE_SIZE = {"sw": 4, "sh": 2, "sb": 1}


def execute(instr, regs, mem, pc):
    """Execute one instruction; returns ``(next_pc, addr, taken)``.

    *mem* must provide ``load(addr, size, signed)``,
    ``store(addr, size, value)`` and ``amo(kind, addr, value)``.
    """
    op = instr.op
    m = op.mnemonic
    fmt = op.fmt
    next_pc = pc + 4
    addr = None
    taken = False

    if fmt == Fmt.R or fmt == Fmt.XI_R:
        a, b = regs[instr.rs1], regs[instr.rs2]
        if m in _ALU_R:
            value = _ALU_R[m](a, b)
        elif op.is_fp:
            value = _fp(m, a, b)
        else:
            value = _muldiv(m, a, b)
        if instr.rd:
            regs[instr.rd] = value & MASK32
    elif fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.XI_I):
        value = _ALU_I[m](regs[instr.rs1], instr.imm)
        if instr.rd:
            regs[instr.rd] = value & MASK32
    elif fmt == Fmt.R2:
        a = regs[instr.rs1]
        if m == "fcvt.s.w":
            value = f32_to_bits(float(to_s32(a)))
        elif m == "fcvt.w.s":
            value = int(_flt(a))
        elif m == "fsqrt.s":
            fa = _flt(a)
            value = f32_to_bits(fa ** 0.5) if fa >= 0.0 else 0x7FC00000
        else:
            raise SimError("bad R2 op %r" % m)
        if instr.rd:
            regs[instr.rd] = value & MASK32
    elif fmt == Fmt.LOAD:
        size, signed = _LOAD_SIZE[m]
        addr = to_u32(regs[instr.rs1] + instr.imm)
        if instr.rd:
            regs[instr.rd] = mem.load(addr, size, signed)
        else:
            mem.load(addr, size, signed)
    elif fmt == Fmt.STORE:
        addr = to_u32(regs[instr.rs1] + instr.imm)
        mem.store(addr, _STORE_SIZE[m], regs[instr.rs2])
    elif fmt == Fmt.AMO:
        addr = regs[instr.rs1]
        old = mem.amo(m, addr, regs[instr.rs2])
        if instr.rd:
            regs[instr.rd] = old
    elif fmt == Fmt.BRANCH:
        taken = _BRANCH[m](regs[instr.rs1], regs[instr.rs2])
        if taken:
            next_pc = pc + instr.imm
    elif fmt == Fmt.XLOOP:
        # Traditional execution: conditional backward branch while the
        # loop index (rs1) is below the bound (rs2).
        taken = to_s32(regs[instr.rs1]) < to_s32(regs[instr.rs2])
        if taken:
            next_pc = pc + instr.imm
    elif fmt == Fmt.JAL:
        if instr.rd:
            regs[instr.rd] = to_u32(pc + 4)
        next_pc = pc + instr.imm
        taken = True
    elif fmt == Fmt.JALR:
        target = to_u32(regs[instr.rs1] + instr.imm) & ~1
        if instr.rd:
            regs[instr.rd] = to_u32(pc + 4)
        next_pc = target
        taken = True
    elif fmt == Fmt.LUI:
        if instr.rd:
            regs[instr.rd] = to_u32(instr.imm << 12)
    elif fmt == Fmt.NONE:
        pass  # fence: ordering only; no architectural effect here
    else:  # pragma: no cover
        raise SimError("unimplemented format %r" % fmt)
    return next_pc, addr, taken


class FunctionalCore:
    """Sequential golden-model core.

    Runs a :class:`~repro.asm.program.Program` against a
    :class:`~repro.sim.memory.Memory`.  ``step()`` returns a
    :class:`StepInfo` that online timing models consume.
    """

    def __init__(self, program, mem=None):
        self.program = program
        self.mem = mem if mem is not None else Memory()
        self.regs = [0] * 32
        self.pc = program.text_base
        self.icount = 0
        self.halted = False
        self.mem.load_program(program)

    # -- ABI helpers ----------------------------------------------------------

    def setup_call(self, entry, args=(), sp=0x0080_0000):
        """Arrange to call *entry* with integer *args* then halt."""
        if isinstance(entry, str):
            entry = self.program.entry(entry)
        self.pc = entry
        self.regs = [0] * 32
        self.regs[1] = HALT_PC           # ra -> halt sentinel
        self.regs[2] = sp
        for i, a in enumerate(args):
            if i >= 8:
                raise SimError("more than 8 arguments unsupported")
            self.regs[10 + i] = to_u32(int(a))
        self.halted = False
        return self

    # -- execution -------------------------------------------------------------

    def step(self):
        if self.halted:
            raise SimError("core is halted")
        pc = self.pc
        instr = self.program.instr_at(pc)
        next_pc, addr, taken = execute(instr, self.regs, self.mem, pc)
        self.pc = next_pc
        self.icount += 1
        if next_pc == HALT_PC:
            self.halted = True
        return StepInfo(instr, pc, next_pc, taken, addr)

    def run(self, max_steps=50_000_000):
        """Run to completion; returns the dynamic instruction count."""
        steps0 = self.icount
        while not self.halted:
            self.step()
            if self.icount - steps0 > max_steps:
                raise SimError("exceeded %d steps (livelock?)" % max_steps)
        return self.icount - steps0

    @property
    def return_value(self):
        return to_s32(self.regs[10])


def run_program(program, entry="main", args=(), mem=None,
                max_steps=50_000_000):
    """One-shot helper: call *entry* with *args*; returns the core."""
    core = FunctionalCore(program, mem)
    core.setup_call(entry, args)
    core.run(max_steps)
    return core
