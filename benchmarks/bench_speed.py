"""Simulator speed bench: wall-time per dependence pattern, fast path
vs slow path, and cached-vs-cold artifact regeneration.

Three sections, emitted as a stable-schema JSON report
(``BENCH_speed.json`` at the repository root):

``patterns``
    One representative point per inter-iteration dependence pattern
    (uc / or / om / ua / db), timed fully cold (fresh memo, compile
    included, no disk cache) with the fast path on and off, plus a
    warm pass served from the persistent result cache.  Measured at
    large scale so steady-state simulation, not the fixed compile +
    fusion-codegen cost (~10ms), dominates the wall time.

``long_kernels``
    The long-running kernels the fast path is asked to carry: cold
    fast-vs-slow wall time at large scale, both traditional (io) and
    specialized (io+x) points.  The acceptance bar for the fast path
    is >=3x on at least two of the traditional points and fast/slow
    parity or better on every specialized one.

``table2``
    A full Table II regeneration cold vs warm.  The warm pass must be
    served entirely from the persistent result cache -- it is asserted
    to complete without invoking ``SystemSimulator``.

``backends``
    The backend ladder measured rung by rung on the long steady-state
    streaming kernels: every point timed fully cold under ``interp``,
    ``fused`` and ``turbo``, plus a warm turbo re-run (schedule memos
    retained).  Unlike the sections above these time the simulation
    alone -- workload generation, memory setup, and the golden verify
    are identical across rungs and excluded, since the axis exists to
    compare the rungs.  Turbo must stay at or above the fused floor
    on every one of these points.

``branchy``
    The opposite shape: branchy/aperiodic kernels whose iteration
    schedules never repeat, so the turbo memo goes dead and only the
    vector tier's whole-block batching has anything left to offer.
    Every point is timed fully cold on all four rungs.  Where the
    vector engine engages (``vector_engaged``) it must stay at or
    above the fused floor; the remaining points (worklist/ua bodies,
    data-dependent exits) document honest fallback -- vector runs
    them exactly as turbo does.

``service``
    Serving throughput of the sweep server: a live server on a unix
    socket, a tiny two-kernel Table II sweep submitted cold and then
    resubmitted warm over the same connection.  The warm pass is the
    product axis -- every point must come back cache-served
    (``warm_served_fraction``) without a single simulator invocation
    (``warm_simulator_invocations``), and ``warm_points_per_sec``
    tracks the round-trip serving rate the protocol + cache stack
    sustains.

``distributed``
    The same two-kernel sweep pushed through the distributed worker
    pool: a ``--distributed`` server whose cache misses are leased to
    external workers instead of simulated in-process, measured cold
    with one worker and again with four (fresh cache each), plus a
    warm resubmission against the running 4-worker deployment.  Two
    contracts: adding workers must actually buy wall time
    (``scaling_4_over_1`` stays above a conservative floor -- lease
    RPCs, pickling and forked children all tax the distributed path),
    and the warm pass must behave exactly like the local tier --
    entirely cache-served at the front door, zero points enqueued,
    zero simulator invocations.  The scaling floor is only gated on
    hosts with >= 2 CPUs (``host_cpus`` is recorded): simulations are
    CPU-bound, so on a single-core box the 4-worker pool honestly
    cannot beat the 1-worker pool, and the number documents overhead
    parity instead.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py            # write baseline
    PYTHONPATH=src python benchmarks/bench_speed.py --check    # CI regression gate

``--check`` re-measures and fails (exit 1) if any cold wall-time
regressed more than 25% against the committed ``BENCH_speed.json``,
if any specialized point's fast path falls below fast/slow parity,
if turbo drops below the fused floor on a steady-state point, if
the vector rung engages but falls below the fused floor on a branchy
point, if the sweep server's warm pass falls below 95%
cache-served, invokes the simulator at all, or loses more than 25%
of its baseline serving rate, or if the distributed pool stops
scaling (4 workers below the floor over 1 worker, multi-core hosts
only) or lets a warm point reach the work queue or the simulator.

``--sections patterns backends ...`` re-measures only the named
sections and merges them into the existing report, so a
single-section change does not force the expensive full sweep.
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.eval import build_table2, diskcache
from repro.eval import runner
from repro.eval.runner import clear_cache, run

#: schema version of BENCH_speed.json; bump on layout changes
SCHEMA = 6

#: every measurable report section, in emission order
SECTIONS = ("patterns", "long_kernels", "table2", "backends",
            "branchy", "service", "distributed")

#: committed baseline location (repository root)
REPORT_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_speed.json")

#: one kernel per inter-iteration dependence pattern (paper Table I)
PATTERN_POINTS = {
    "uc": ("sgemm-uc", "io+x", "specialized", "large"),
    "or": ("adpcm-or", "io+x", "specialized", "large"),
    "om": ("dynprog-om", "io+x", "specialized", "large"),
    "ua": ("btree-ua", "io+x", "specialized", "large"),
    "db": ("qsort-uc-db", "io+x", "specialized", "large"),
}

#: long-running points the fast path must carry (>=3x on >=2 of the
#: traditional ones); traditional io runs are dominated by the
#: fused-superblock GPP model, the specialized io+x points by the
#: fused-lane LPSU engine
LONG_POINTS = {
    "sgemm-uc": ("io", "traditional", "large"),
    "rgb2cmyk-uc": ("io", "traditional", "large"),
    "hsort-ua": ("io", "traditional", "large"),
    "viterbi-uc": ("io", "traditional", "large"),
    "adpcm-or": ("io+x", "specialized", "large"),
    "btree-ua": ("io+x", "specialized", "large"),
}

#: the long steady-state streaming kernels the turbo backend is asked
#: to carry -- the per-backend ladder axis is measured on these.  All
#: specialized io+x points: that is the only place turbo engages.
BACKEND_POINTS = {
    "vvadd-uc": ("io+x", "specialized", "large"),
    "saxpy-uc": ("io+x", "specialized", "large"),
    "vvdiv-uc": ("io+x", "specialized", "large"),
    "divchain-uc": ("io+x", "specialized", "large"),
    "cmult-uc": ("io+x", "specialized", "large"),
}

#: branchy/aperiodic kernels (dead turbo memos): the vector tier's
#: whole-block batching engages on the long uc bodies; the ua /
#: worklist / data-dependent-exit points document honest fallback.
#: All specialized io+x points, like the backend-ladder axis.
BRANCHY_POINTS = {
    "bmix-uc": ("io+x", "specialized", "large"),
    "qclip-uc": ("io+x", "specialized", "large"),
    "hsort-ua": ("io+x", "specialized", "large"),
    "bfs-uc": ("io+x", "specialized", "large"),
    "ssearch-de": ("io+x", "specialized", "large"),
}

#: cold regression tolerance for --check (fraction over baseline)
TOLERANCE = 0.25

#: the kernels the nightly CI smoke job re-measures (--smoke): two
#: traditional GPP points plus one specialized (io+x) LPSU point
SMOKE_KERNELS = ("rgb2cmyk-uc", "viterbi-uc", "adpcm-or")

#: the backend-ladder point the smoke job re-measures (small scale so
#: the interp rung stays cheap)
SMOKE_BACKEND_KERNELS = ("vvadd-uc",)

#: the branchy point the nightly vector smoke job re-measures (small
#: scale keeps interp cheap; the 4096-iteration trip still clears the
#: vector tier's engagement floor)
SMOKE_BRANCHY_KERNELS = ("qclip-uc",)

#: the two-kernel Table II slice the service section round-trips
#: through a live server (tiny scale: the axis is serving overhead,
#: not simulation time)
SERVICE_KERNELS = ("vvadd-uc", "saxpy-uc")

#: warm-pass floor the service section must clear under --check
SERVICE_SERVED_FLOOR = 0.95

#: serving-rate floor as a fraction of the baseline rate.  The warm
#: pass takes single-digit milliseconds, so scheduler noise dwarfs
#: the usual 25% cold-time tolerance; halving the rate is the signal
#: that the serving stack itself regressed.
SERVICE_RATE_FLOOR = 0.5

#: cold-scaling floor the 4-worker pool must clear over the 1-worker
#: pool on the distributed sweep.  Deliberately far below the ideal
#: 4x: the tiny-scale points are dominated by per-point overhead
#: (lease RPC + pickle + forked child), and the floor exists to catch
#: "adding workers no longer helps at all", not to benchmark Amdahl.
DISTRIBUTED_SCALING_FLOOR = 1.3


def _cold(kernel, config, mode, scale, fast=None, backend=None,
          repeats=3):
    """Best-of-*repeats* wall time of a fully cold point (compile +
    simulate, no caches, no retained turbo memos)."""
    best = None
    for _ in range(repeats):
        clear_cache(keep_disk=True)
        t0 = time.perf_counter()
        run(kernel, config, mode=mode, scale=scale,
            use_disk_cache=False, fast=fast, backend=backend)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best


def _backend_point(kernel, config, mode, scale, repeats=2):
    """Simulation-only wall time of one point on every backend rung.

    Returns ``(interp, fused, turbo_cold, turbo_warm)`` best-of-
    *repeats* seconds.  Compile, workload generation, memory setup,
    and the golden verify run outside the timed region: they are
    byte-identical across rungs, and this axis exists to compare the
    rungs, not the harness around them."""
    from repro.eval.configs import config as named_config
    from repro.kernels import get_kernel
    from repro.lang import compile_source
    from repro.sim import Memory, turbo as turbo_mod
    from repro.uarch import simulate

    spec = get_kernel(kernel)
    program = compile_source(spec.source).program
    sysconfig = named_config(config)

    def one(backend, keep_memos=False):
        best = None
        for _ in range(repeats):
            if not keep_memos:
                turbo_mod.clear()
            mem = Memory()
            wl = spec.workload(scale, 0)
            args = wl.apply(mem)
            t0 = time.perf_counter()
            simulate(program, sysconfig, entry=spec.entry, args=args,
                     mem=mem, mode=mode, backend=backend)
            dt = time.perf_counter() - t0
            wl.check(mem)
            if best is None or dt < best:
                best = dt
        return best

    interp = one("interp")
    fused = one("fused")
    cold = one("turbo")               # memos populated by the last rep
    warm = one("turbo", keep_memos=True)
    return interp, fused, cold, warm


def _branchy_point(kernel, config, mode, scale, repeats=2):
    """Simulation-only wall time of one branchy point on all four
    rungs, fully cold (turbo memos and vector engines dropped before
    every rep).  Returns ``(interp, fused, turbo, vector, engaged)``
    where *engaged* reports whether the vector engine actually batched
    iterations (the remaining points measure honest fallback)."""
    from repro.eval.configs import config as named_config
    from repro.kernels import get_kernel
    from repro.lang import compile_source
    from repro.sim import Memory, turbo as turbo_mod, vector as vector_mod
    from repro.uarch import simulate

    spec = get_kernel(kernel)
    program = compile_source(spec.source).program
    sysconfig = named_config(config)
    engaged = False

    def one(backend):
        nonlocal engaged
        best = None
        for _ in range(repeats):
            turbo_mod.clear()
            vector_mod.clear()
            mem = Memory()
            wl = spec.workload(scale, 0)
            args = wl.apply(mem)
            t0 = time.perf_counter()
            result = simulate(program, sysconfig, entry=spec.entry,
                              args=args, mem=mem, mode=mode,
                              backend=backend)
            dt = time.perf_counter() - t0
            wl.check(mem)
            if backend == "vector" \
                    and result.backend_stats.get("vector_iterations"):
                engaged = True
            if best is None or dt < best:
                best = dt
        return best

    interp = one("interp")
    fused = one("fused")
    turbo = one("turbo")
    vector = one("vector")
    return interp, fused, turbo, vector, engaged


def _service_section(jobs=2):
    """Round-trip a tiny two-kernel Table II sweep through a live
    sweep server: cold submission (simulations fill the shared
    cache), then a warm resubmission of the identical points after
    the in-process memo is dropped.  The warm pass must be entirely
    cache-served with zero simulator invocations -- that is the
    contract ``--check`` gates."""
    from repro.eval import parallel
    from repro.serve import ServeClient, ServerThread

    points = parallel.table2_points(list(SERVICE_KERNELS), "tiny", 0)
    with ServerThread(jobs=jobs) as server:
        with ServeClient(server.address) as client:
            t0 = time.perf_counter()
            cold_summary = client.submit(points)
            cold = time.perf_counter() - t0
            assert cold_summary.ok, cold_summary.render()
            # drop the in-process memo: the warm pass must be served
            # by the hot tier / disk store, not this process's dict.
            # Best-of-3: a few milliseconds of serving is pure
            # scheduler-noise territory otherwise.
            warm = warm_summary = None
            for _ in range(3):
                clear_cache(keep_disk=True)
                t0 = time.perf_counter()
                summary = client.submit(points)
                dt = time.perf_counter() - t0
                assert summary.ok, summary.render()
                if warm is None or dt < warm:
                    warm, warm_summary = dt, summary
    n = warm_summary.points
    return {
        "kernels": list(SERVICE_KERNELS), "points": n, "jobs": jobs,
        "cold_seconds": round(cold, 4),
        "cold_simulated": cold_summary.misses,
        "warm_seconds": round(warm, 4),
        "warm_points_per_sec": round(n / warm, 1) if warm else None,
        "warm_served_fraction": round(warm_summary.hits / n, 4)
        if n else 0.0,
        "warm_simulator_invocations": warm_summary.misses,
    }


def _distributed_section():
    """The two-kernel sweep through the distributed worker pool: cold
    with 1 worker, cold again with 4 (fresh cache each), then a warm
    resubmission against the running 4-worker deployment.  Workers are
    :class:`WorkerThread` harnesses over a real unix socket -- the
    same lease/heartbeat/complete protocol ``repro worker`` speaks,
    minus only the second OS process."""
    from repro.eval import parallel
    from repro.serve import ServeClient, ServerThread, WorkerThread

    points = parallel.table2_points(list(SERVICE_KERNELS), "tiny", 0)
    section = {"kernels": list(SERVICE_KERNELS), "points": len(points),
               "host_cpus": os.cpu_count() or 1}

    def one_pool(n_workers, warm_too=False):
        clear_cache(keep_disk=False)        # fully cold: empty store
        with ServerThread(distributed=True, lease_ttl=10.0) as server:
            workers = [WorkerThread(server.address, jobs=1,
                                    name="bench-%d" % i).start()
                       for i in range(n_workers)]
            try:
                with ServeClient(server.address) as client:
                    t0 = time.perf_counter()
                    summary = client.submit(points)
                    cold = time.perf_counter() - t0
                    assert summary.ok, summary.render()
                    entry = {"workers": n_workers,
                             "cold_seconds": round(cold, 4),
                             "cold_simulated": summary.misses}
                    if not warm_too:
                        return entry
                    # warm: served at the front door, nothing leased
                    warm = warm_summary = None
                    for _ in range(3):
                        clear_cache(keep_disk=True)
                        t0 = time.perf_counter()
                        s = client.submit(points)
                        dt = time.perf_counter() - t0
                        assert s.ok, s.render()
                        if warm is None or dt < warm:
                            warm, warm_summary = dt, s
                    n = warm_summary.points
                    queued = client.stats()["queue"]["counters"]
                    entry.update({
                        "warm_seconds": round(warm, 4),
                        "warm_points_per_sec":
                            round(n / warm, 1) if warm else None,
                        "warm_served_fraction":
                            round(warm_summary.hits / n, 4) if n else 0.0,
                        "warm_simulator_invocations": warm_summary.misses,
                        "warm_enqueued":
                            queued["enqueued"] - entry["cold_simulated"],
                    })
                    return entry
            finally:
                for w in workers:
                    w.stop()

    one = one_pool(1)
    four = one_pool(4, warm_too=True)
    section["workers_1"] = one
    warm_keys = ("warm_seconds", "warm_points_per_sec",
                 "warm_served_fraction", "warm_simulator_invocations",
                 "warm_enqueued")
    section["workers_4"] = {k: v for k, v in four.items()
                            if k not in warm_keys}
    for k in warm_keys:
        section[k] = four[k]
    section["scaling_4_over_1"] = round(
        one["cold_seconds"] / four["cold_seconds"], 2) \
        if four["cold_seconds"] else None
    return section


def _warm(kernel, config, mode, scale):
    """Wall time of the same point served from the disk cache."""
    clear_cache(keep_disk=True)                     # force a real run...
    run(kernel, config, mode=mode, scale=scale)     # ...that stores to disk
    clear_cache(keep_disk=True)                     # drop the memo
    t0 = time.perf_counter()
    run(kernel, config, mode=mode, scale=scale)     # disk hit
    return time.perf_counter() - t0


def speed_report(scale="small", smoke=False, sections=None):
    """Measure every section (or, with *smoke*, just the two nightly
    smoke kernels; or, with *sections*, only the named sections) and
    return the report dict."""
    want = (lambda name: True) if sections is None \
        else (lambda name: name in sections)
    report = {"schema": SCHEMA, "scale": scale, "patterns": {},
              "long_kernels": {}, "table2": {}, "backends": {},
              "branchy": {}, "service": {}, "distributed": {}}
    pattern_points = {} if smoke or not want("patterns") \
        else PATTERN_POINTS
    long_points = {k: v for k, v in LONG_POINTS.items()
                   if want("long_kernels")
                   and (not smoke or k in SMOKE_KERNELS)}
    backend_points = {k: v for k, v in BACKEND_POINTS.items()
                      if want("backends")
                      and (not smoke or k in SMOKE_BACKEND_KERNELS)}
    branchy_points = {k: v for k, v in BRANCHY_POINTS.items()
                      if want("branchy")
                      and (not smoke or k in SMOKE_BRANCHY_KERNELS)}
    from repro.sim.vector import HAS_NUMPY
    if not HAS_NUMPY:
        # numpy-free host: the vector rung does not exist, so the
        # branchy section is skipped (and --check skips its gates)
        print("note: numpy not importable -- skipping the branchy "
              "(vector-backend) section", file=sys.stderr)
        branchy_points = {}

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        saved = diskcache._dir_override
        saved_env = os.environ.get(diskcache.ENV_CACHE_DIR)
        diskcache.configure(cache_dir=tmp)
        try:
            for pattern, (kernel, config, mode,
                          kscale) in pattern_points.items():
                fast = _cold(kernel, config, mode, kscale, True)
                slow = _cold(kernel, config, mode, kscale, False)
                warm = _warm(kernel, config, mode, kscale)
                report["patterns"][pattern] = {
                    "kernel": kernel, "config": config, "mode": mode,
                    "scale": kscale,
                    "cold_fast_seconds": round(fast, 4),
                    "cold_slow_seconds": round(slow, 4),
                    "warm_seconds": round(warm, 4),
                    "speedup": round(slow / fast, 2)}

            for kernel, (config, mode, kscale) in long_points.items():
                fast = _cold(kernel, config, mode, kscale, True)
                slow = _cold(kernel, config, mode, kscale, False)
                report["long_kernels"][kernel] = {
                    "config": config, "mode": mode, "scale": kscale,
                    "cold_fast_seconds": round(fast, 4),
                    "cold_slow_seconds": round(slow, 4),
                    "speedup": round(slow / fast, 2)}

            for kernel, (config, mode, kscale) in backend_points.items():
                if smoke:
                    kscale = "small"    # keep the interp rung cheap
                interp, fused, turbo, warm = _backend_point(
                    kernel, config, mode, kscale)
                report["backends"][kernel] = {
                    "config": config, "mode": mode, "scale": kscale,
                    "interp_seconds": round(interp, 4),
                    "fused_seconds": round(fused, 4),
                    "turbo_cold_seconds": round(turbo, 4),
                    "turbo_warm_seconds": round(warm, 4),
                    "turbo_over_interp": round(interp / turbo, 2),
                    "turbo_over_fused": round(fused / turbo, 2)}

            for kernel, (config, mode, kscale) in branchy_points.items():
                if smoke:
                    kscale = "small"    # keep the interp rung cheap
                interp, fused, turbo, vector, engaged = _branchy_point(
                    kernel, config, mode, kscale)
                report["branchy"][kernel] = {
                    "config": config, "mode": mode, "scale": kscale,
                    "interp_seconds": round(interp, 4),
                    "fused_seconds": round(fused, 4),
                    "turbo_seconds": round(turbo, 4),
                    "vector_seconds": round(vector, 4),
                    "vector_engaged": engaged,
                    "vector_over_fused": round(fused / vector, 2),
                    "vector_over_turbo": round(turbo / vector, 2)}

            measured_table2 = False
            if not smoke and want("table2"):
                # Table II: cold (fresh cache dir) vs warm (disk-served)
                clear_cache(keep_disk=True)
                t0 = time.perf_counter()
                build_table2(scale=scale)
                cold = time.perf_counter() - t0

                clear_cache(keep_disk=True)
                sims_before = runner.simulations
                t0 = time.perf_counter()
                build_table2(scale=scale)
                warm = time.perf_counter() - t0
                warm_simulations = runner.simulations - sims_before
                # the warm pass must never touch the simulator
                assert warm_simulations == 0, warm_simulations
                measured_table2 = True

            if want("service"):
                clear_cache(keep_disk=False)
                report["service"] = _service_section()

            if not smoke and want("distributed"):
                # excluded from --smoke: two cold sweeps + a worker
                # pool is the expensive end of the serving sections
                report["distributed"] = _distributed_section()
        finally:
            diskcache._dir_override = saved
            if saved_env is None:
                os.environ.pop(diskcache.ENV_CACHE_DIR, None)
            else:
                os.environ[diskcache.ENV_CACHE_DIR] = saved_env
            clear_cache(keep_disk=True)

    if measured_table2:
        report["table2"] = {
            "cold_seconds": round(cold, 3),
            "warm_seconds": round(warm, 3),
            "warm_over_cold": round(warm / cold, 4) if cold else None,
            "warm_simulator_invocations": warm_simulations,
        }
    return report


def _check(report, baseline):
    """Compare *report* against *baseline*; returns a list of
    regression strings (empty = pass).  Only keys present in both are
    compared, so adding or renaming points never fails the gate."""
    problems = []

    def cmp(label, now, then):
        if then and now > then * (1 + TOLERANCE):
            problems.append(
                "%s: cold %.3fs vs baseline %.3fs (+%d%%)"
                % (label, now, then, round(100 * (now / then - 1))))

    for section in ("patterns", "long_kernels"):
        base = baseline.get(section, {})
        for key, entry in report.get(section, {}).items():
            b = base.get(key)
            if b is not None:
                cmp("%s/%s" % (section, key),
                    entry["cold_fast_seconds"],
                    b.get("cold_fast_seconds"))
            # the fast path must stay a win on specialized points, not
            # just avoid getting slower than its own baseline: below
            # fast/slow parity means it is actively hurting
            if entry.get("mode") == "specialized" \
                    and entry["speedup"] < 1.0:
                problems.append(
                    "%s/%s: specialized fast path below fast/slow "
                    "parity (%.2fx)" % (section, key, entry["speedup"]))
    for kernel, entry in report.get("backends", {}).items():
        b = baseline.get("backends", {}).get(kernel)
        if b is not None and entry["scale"] == b.get("scale"):
            cmp("backends/%s" % kernel, entry["turbo_cold_seconds"],
                b.get("turbo_cold_seconds"))
        # the turbo floor: on steady-state streaming kernels turbo
        # must never lose to the tier below it
        if entry["turbo_over_fused"] < 1.0:
            problems.append(
                "backends/%s: turbo below the fused floor (%.2fx)"
                % (kernel, entry["turbo_over_fused"]))
    for kernel, entry in report.get("branchy", {}).items():
        b = baseline.get("branchy", {}).get(kernel)
        if b is not None and entry["scale"] == b.get("scale"):
            cmp("branchy/%s" % kernel, entry["vector_seconds"],
                b.get("vector_seconds"))
        # the vector floor: wherever whole-block batching engages it
        # must never lose to the fused tier (the non-engaging points
        # fall back to the turbo path, whose memo thrash on aperiodic
        # schedules is exactly what this section documents)
        if entry["vector_engaged"] and entry["vector_over_fused"] < 1.0:
            problems.append(
                "branchy/%s: vector below the fused floor (%.2fx)"
                % (kernel, entry["vector_over_fused"]))
    now = report.get("table2", {}).get("cold_seconds")
    if now is not None:
        cmp("table2", now, baseline.get("table2", {}).get("cold_seconds"))
    svc = report.get("service") or {}
    if svc:
        # absolute contract first: a warm resubmission through the
        # server is the product, and it must be served, not simulated
        if svc["warm_served_fraction"] < SERVICE_SERVED_FLOOR:
            problems.append(
                "service: warm pass only %.1f%% cache-served "
                "(floor %.0f%%)" % (100 * svc["warm_served_fraction"],
                                    100 * SERVICE_SERVED_FLOOR))
        if svc["warm_simulator_invocations"]:
            problems.append(
                "service: warm pass invoked the simulator %d time(s)"
                % svc["warm_simulator_invocations"])
        b = baseline.get("service") or {}
        then = b.get("warm_points_per_sec")
        if then and b.get("points") == svc.get("points") \
                and svc["warm_points_per_sec"] < then * SERVICE_RATE_FLOOR:
            problems.append(
                "service: warm serving rate %.0f points/s vs baseline "
                "%.0f (-%d%%)"
                % (svc["warm_points_per_sec"], then,
                   round(100 * (1 - svc["warm_points_per_sec"] / then))))
    dist = report.get("distributed") or {}
    if dist:
        # absolute contracts: workers must buy wall time (only
        # gateable where the host can run them in parallel at all),
        # and the warm pass must never reach the queue, let alone the
        # simulator
        if dist.get("host_cpus", 1) >= 2 \
                and dist["scaling_4_over_1"] is not None \
                and dist["scaling_4_over_1"] < DISTRIBUTED_SCALING_FLOOR:
            problems.append(
                "distributed: 4-worker pool only %.2fx over 1 worker "
                "(floor %.2fx)" % (dist["scaling_4_over_1"],
                                   DISTRIBUTED_SCALING_FLOOR))
        if dist["warm_served_fraction"] < SERVICE_SERVED_FLOOR:
            problems.append(
                "distributed: warm pass only %.1f%% cache-served "
                "(floor %.0f%%)" % (100 * dist["warm_served_fraction"],
                                    100 * SERVICE_SERVED_FLOOR))
        if dist["warm_simulator_invocations"]:
            problems.append(
                "distributed: warm pass invoked the simulator %d "
                "time(s)" % dist["warm_simulator_invocations"])
        if dist.get("warm_enqueued"):
            problems.append(
                "distributed: warm pass enqueued %d point(s) instead "
                "of serving them from the cache"
                % dist["warm_enqueued"])
        b = baseline.get("distributed") or {}
        then = b.get("warm_points_per_sec")
        if then and b.get("points") == dist.get("points") \
                and dist["warm_points_per_sec"] < then * SERVICE_RATE_FLOOR:
            problems.append(
                "distributed: warm serving rate %.0f points/s vs "
                "baseline %.0f (-%d%%)"
                % (dist["warm_points_per_sec"], then,
                   round(100 * (1 - dist["warm_points_per_sec"] / then))))
    return problems


def test_speed(benchmark):
    from conftest import run_once
    report = run_once(benchmark, speed_report)
    print()
    print("BENCH_SPEED_JSON " + json.dumps(report))


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", default="small",
                    choices=("tiny", "small", "large"),
                    help="table2 workload scale (default small; "
                         "pattern and long-kernel points always run "
                         "at their own fixed scale)")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed "
                         "BENCH_speed.json instead of overwriting it; "
                         "exit 1 on a >25%% cold regression")
    ap.add_argument("--smoke", action="store_true",
                    help="nightly CI mode: only the %s long-kernel "
                         "points plus small-scale %s backend-ladder "
                         "and %s branchy points, no patterns or "
                         "table2 section"
                         % (SMOKE_KERNELS, SMOKE_BACKEND_KERNELS,
                            SMOKE_BRANCHY_KERNELS))
    ap.add_argument("--sections", nargs="+", choices=SECTIONS,
                    metavar="SECTION",
                    help="re-measure only these sections (%s) and "
                         "merge them into the existing report instead "
                         "of re-running the full sweep"
                         % ", ".join(SECTIONS))
    ap.add_argument("--output", default=REPORT_PATH, metavar="FILE",
                    help="report destination (default repo root)")
    args = ap.parse_args(argv)

    report = speed_report(scale=args.scale, smoke=args.smoke,
                          sections=args.sections)
    print(json.dumps(report, indent=2, sort_keys=True))

    if args.check:
        try:
            with open(args.output) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            print("no usable baseline at %s (%s); nothing to check"
                  % (args.output, exc), file=sys.stderr)
            return 0
        problems = _check(report, baseline)
        for p in problems:
            print("REGRESSION " + p, file=sys.stderr)
        if problems:
            return 1
        print("within %d%% of the committed baseline"
              % round(TOLERANCE * 100))
        return 0

    if args.smoke:
        # a smoke report is partial by design: never let it replace
        # the full committed baseline
        print("smoke report not written (use --check to gate on it)")
        return 0
    if args.sections:
        # merge mode: update only the measured sections, keeping the
        # rest of the committed baseline intact
        try:
            with open(args.output) as f:
                merged = json.load(f)
        except (OSError, ValueError):
            merged = {}
        merged["schema"] = report["schema"]
        merged.setdefault("scale", report["scale"])
        for name in args.sections:
            merged[name] = report[name]
        report = merged
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
