"""Vector-backend edge cases.

The vector tier batches whole blocks of iterations through numpy
array programs, so its riskiest inputs are the ones that break the
batch: branch divergence collapsing the active mask mid-block, a
data-dependent ``xloop.break`` (statically ineligible -- the body
must fall back), trip counts below the block size or below the
engagement floor, and hosts without numpy (where ``auto`` must
quietly top out at turbo).  In every case the run must stay
bit-identical to the reference interpreter -- phase 1 is rolled back
on refusal, so not even final memory may differ.
"""

import pytest

from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.sim import backends as backends_mod
from repro.sim import vector as vector_mod
from repro.sim.backends import resolve_backend
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

pytestmark = pytest.mark.skipif(not vector_mod.HAS_NUMPY,
                                reason="vector tier needs numpy")

_BRANCHY_SRC = """
void bmixy(int* x, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int a = x[i] ^ 9871;
        if ((a & 1) == 1) { a = a * 3 + 1; } else { a = a >> 1; }
        if (a < 0) { a = 0 - a; }
        z[i] = a + i;
    }
}
"""

_SPIN_SRC = """
void spin(int* x, int* z, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        int t = x[i];
        int a = 0;
        while (t > 0) { a = a + t; t = t - 1; }
        z[i] = a;
    }
}
"""

_FIND_SRC = """
int find(int* x, int n) {
    int hit = 0 - 1;
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        if (x[i] == 777) {
            hit = i;
            break;
        }
    }
    return hit;
}
"""


def _config():
    return SystemConfig("t", IO, LPSUConfig())


def _identical(a, b):
    (ra, ma), (rb, mb) = a, b
    assert ra.cycles == rb.cycles
    assert ra.return_value == rb.return_value
    assert repr(ra.lpsu_stats) == repr(rb.lpsu_stats)
    assert dict(vars(ra.events)) == dict(vars(rb.events))
    assert ma.pages_equal(mb)


def _run_src(src, entry, backend, n, data=None):
    program = compile_source(src).program
    mem = Memory()
    xa, za = 0x100000, 0x180000
    words = data if data is not None \
        else [(1103515245 * i + 12345) & 0xFFFFFFFF for i in range(n)]
    mem.write_words(xa, words)
    vector_mod.clear()
    args = (xa, n) if entry == "find" else (xa, za, n)
    r = simulate(program, _config(), entry=entry, args=args, mem=mem,
                 mode="specialized", backend=backend)
    return r, mem


def _kernel_run(name, backend, scale="tiny"):
    spec = get_kernel(name)
    program = compile_source(spec.source).program
    mem = Memory()
    args = spec.workload(scale, 0).apply(mem)
    vector_mod.clear()
    r = simulate(program, _config(), entry=spec.entry, args=args,
                 mem=mem, mode="specialized", backend=backend)
    return r, mem


class TestBatchBoundaries:
    # the rotated loop peels its first iteration onto the GPP (the
    # xloop sits at the loop bottom), so the batched trip is n - 1
    @pytest.mark.parametrize("n", (65, 100, 256, 257, 500, 513))
    def test_trip_below_and_across_block_size(self, n):
        # partial blocks, exact blocks, and block+1 tails must all
        # replay bit-identically (every n here clears the trip floor)
        vec = _run_src(_BRANCHY_SRC, "bmixy", "vector", n)
        assert vec[0].backend_stats.get("vector_iterations") == n - 1
        _identical(vec, _run_src(_BRANCHY_SRC, "bmixy", "interp", n))

    def test_trip_below_engagement_floor(self):
        # below MIN_TRIP the per-iteration replay overhead beats the
        # batch win: the engine must decline (without dying) and the
        # invocation runs on the turbo path underneath
        n = vector_mod.MIN_TRIP
        vec = _run_src(_BRANCHY_SRC, "bmixy", "vector", n)
        assert vec[0].backend_stats.get("vector_iterations", 0) == 0
        assert vec[0].backend_stats.get("vector_dead", 0) == 0
        _identical(vec, _run_src(_BRANCHY_SRC, "bmixy", "interp", n))

    def test_min_trip_override(self, monkeypatch):
        monkeypatch.setattr(vector_mod, "MIN_TRIP", 1)
        n = 8
        vec = _run_src(_BRANCHY_SRC, "bmixy", "vector", n)
        assert vec[0].backend_stats.get("vector_iterations") == n - 1
        _identical(vec, _run_src(_BRANCHY_SRC, "bmixy", "interp", n))


class TestDivergenceAndFallback:
    def test_mask_collapse_mid_block(self):
        # one lane spins 200k inner iterations while the rest of the
        # block retires immediately: utilization falls through the
        # floor, phase 1 refuses, and the rollback must leave no trace
        # -- cycles, events, and memory all match interp
        n = 65
        data = [1] * n
        data[3] = 200_000
        vec = _run_src(_SPIN_SRC, "spin", "vector", n, data)
        assert vec[0].backend_stats.get("vector_refusals") == 1
        assert vec[0].backend_stats.get("vector_dead") == 1
        _identical(vec, _run_src(_SPIN_SRC, "spin", "interp", n, data))

    def test_xbreak_in_batch_falls_back(self):
        # a data-dependent exit can cut a batch short at any lane: the
        # body is statically ineligible for batching, and the vector
        # rung must run it exactly as turbo/interp would
        n = 512
        data = [(4 * i + 2) & 0x3FFFFFFF for i in range(n)]  # all even
        data[300] = 777
        vec = _run_src(_FIND_SRC, "find", "vector", n, data)
        assert vec[0].return_value == 300
        assert "vector_iterations" not in vec[0].backend_stats
        _identical(vec, _run_src(_FIND_SRC, "find", "interp", n, data))

    @pytest.mark.parametrize("kernel", (
        "bmix-uc",          # uc: unordered concurrent
        "adpcm-or",         # or: ordered through registers
        "dynprog-om",       # om: ordered through memory
        "btree-ua",         # ua: unordered atomic
        "qsort-uc-db",      # db: dynamic-bound worklist
    ))
    def test_bit_identity_across_dependence_patterns(self, kernel,
                                                     monkeypatch):
        # every Table I dependence pattern through the vector rung:
        # uc engages the batcher, the rest must take the honest
        # fallback -- all bit-identical to the reference interpreter
        monkeypatch.setattr(vector_mod, "MIN_TRIP", 1)
        _identical(_kernel_run(kernel, "vector"),
                   _kernel_run(kernel, "interp"))


class TestBackendSelection:
    def test_numpy_absent_demotes_auto_to_turbo(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_TURBO", raising=False)
        monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
        monkeypatch.setattr(backends_mod, "_have_numpy", lambda: False)
        assert resolve_backend("auto").name == "turbo"
        # an explicit request must fail loudly, not degrade silently
        with pytest.raises(ValueError):
            resolve_backend("vector")

    def test_no_vector_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_TURBO", raising=False)
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        assert resolve_backend("auto").name == "turbo"
        # the hatch only governs "auto": explicit vector still works
        assert resolve_backend("vector").name == "vector"

    def test_engagement_counters_in_backend_stats(self):
        n = 300
        r, _ = _run_src(_BRANCHY_SRC, "bmixy", "vector", n)
        bs = r.backend_stats
        assert bs["vector_invocations"] == 1
        assert bs["vector_iterations"] == n - 1
        assert bs["vector_refusals"] == 0
        assert bs["vector_dead"] == 0
