"""XLOOPS dependence-pattern taxonomy (paper Table I).

Every ``xloop`` instruction names an inter-iteration *data*-dependence
pattern and an inter-iteration *control*-dependence pattern:

data patterns
    ``uc``  unordered concurrent - iterations may run in any order,
            concurrently; races possible; AMOs available for sync.
    ``or``  ordered through registers - cross-iteration registers (CIRs)
            must observe serial values.
    ``om``  ordered through memory - memory reads/writes must match a
            serial execution.
    ``orm`` ordered through registers *and* memory.
    ``ua``  unordered atomic - any iteration order, but each iteration's
            memory updates appear atomic.

control patterns
    ``fixed``  loop bound is loop-invariant (default, no suffix).
    ``db``     dynamic bound - iterations may monotonically increase the
               bound (worklist-style loops).
"""

from __future__ import annotations

import enum


class DataPattern(enum.Enum):
    """Inter-iteration data-dependence pattern (``xloop`` suffix 1)."""

    UC = "uc"
    OR = "or"
    OM = "om"
    ORM = "orm"
    UA = "ua"

    @property
    def ordered_through_registers(self):
        return self in (DataPattern.OR, DataPattern.ORM)

    @property
    def ordered_through_memory(self):
        return self in (DataPattern.OM, DataPattern.ORM)

    @property
    def needs_memory_disambiguation(self):
        """True when specialized execution needs per-lane LSQs."""
        return self in (DataPattern.OM, DataPattern.ORM, DataPattern.UA)

    @property
    def unordered(self):
        return self in (DataPattern.UC, DataPattern.UA)


class ControlPattern(enum.Enum):
    """Inter-iteration control-dependence pattern (``xloop`` suffix 2).

    ``DATA_DEPENDENT_EXIT`` is the extension the paper leaves to future
    work ("we leave exploring data-dependent-exit control-dependence
    patterns to future work", Section II-A): an iteration may terminate
    the loop early via the ``xloop.break`` instruction, and specialized
    execution control-speculates younger iterations (their memory
    effects are buffered and discarded when an older iteration exits).
    """

    FIXED = "fixed"
    DYNAMIC_BOUND = "db"
    DATA_DEPENDENT_EXIT = "de"


#: Lattice of "least restrictive" encodings (paper II-A): any valid
#: xloop.uc is a valid xloop.or; any valid xloop.ua is a valid xloop.om;
#: any fixed-bound xloop is a valid xloop.orm.
WEAKER_THAN = {
    DataPattern.UC: (DataPattern.OR, DataPattern.OM, DataPattern.ORM, DataPattern.UA),
    DataPattern.UA: (DataPattern.OM, DataPattern.ORM),
    DataPattern.OR: (DataPattern.ORM,),
    DataPattern.OM: (DataPattern.ORM,),
    DataPattern.ORM: (),
}


def refines(weak, strong):
    """Return True when a loop valid under *weak* is also valid under
    *strong* (i.e. *strong* is at least as restrictive)."""
    return weak is strong or strong in WEAKER_THAN[weak]


class XLoopKind:
    """The (data, control) pattern pair encoded by one xloop mnemonic."""

    __slots__ = ("data", "control")

    def __init__(self, data, control=ControlPattern.FIXED):
        self.data = data
        self.control = control

    @property
    def mnemonic(self):
        name = "xloop." + self.data.value
        if self.control is ControlPattern.DYNAMIC_BOUND:
            name += ".db"
        elif self.control is ControlPattern.DATA_DEPENDENT_EXIT:
            name += ".de"
        return name

    @classmethod
    def from_mnemonic(cls, mnemonic):
        parts = mnemonic.split(".")
        if parts[0] != "xloop" or len(parts) not in (2, 3):
            raise ValueError("not an xloop mnemonic: %r" % (mnemonic,))
        data = DataPattern(parts[1])
        control = ControlPattern.FIXED
        if len(parts) == 3:
            if parts[2] == "db":
                control = ControlPattern.DYNAMIC_BOUND
            elif parts[2] == "de":
                control = ControlPattern.DATA_DEPENDENT_EXIT
            else:
                raise ValueError("bad xloop control suffix: %r"
                                 % (mnemonic,))
        return cls(data, control)

    def __eq__(self, other):
        return (isinstance(other, XLoopKind)
                and self.data is other.data and self.control is other.control)

    def __hash__(self):
        return hash((self.data, self.control))

    def __repr__(self):
        return "XLoopKind(%s)" % self.mnemonic


#: all xloop mnemonics in the ISA (Table I)
ALL_XLOOP_KINDS = tuple(
    XLoopKind(d, c) for d in DataPattern for c in ControlPattern
)

#: human-readable descriptions, as printed by Table I reproductions
PATTERN_DESCRIPTIONS = {
    "xloop.uc": "unordered concurrent inter-iteration data dependence",
    "xloop.or": "ordered through registers",
    "xloop.om": "ordered through memory",
    "xloop.orm": "ordered through registers and memory",
    "xloop.ua": "unordered atomic",
    "xloop.uc.db": "unordered concurrent, dynamic bound",
    "xloop.or.db": "ordered through registers, dynamic bound",
    "xloop.om.db": "ordered through memory, dynamic bound",
    "xloop.orm.db": "ordered through registers and memory, dynamic bound",
    "xloop.ua.db": "unordered atomic, dynamic bound",
    "xloop.uc.de": "unordered concurrent, data-dependent exit (ext.)",
    "xloop.or.de": "ordered through registers, data-dependent exit (ext.)",
    "xloop.om.de": "ordered through memory, data-dependent exit (ext.)",
    "xloop.orm.de": "ordered regs+memory, data-dependent exit (ext.)",
    "xloop.ua.de": "unordered atomic, data-dependent exit (ext.)",
}
