"""Functional simulation substrate: sparse memory with AMOs and the
instruction-set-level golden-model executor."""

from .memory import (Memory, MASK32, to_u32, to_s32, f32_to_bits,
                     bits_to_f32)
from .functional import (FunctionalCore, LivelockError, StepInfo,
                         SimError, execute,
                         decode_instr, decode_program, run_program,
                         HALT_PC)

__all__ = ["Memory", "MASK32", "to_u32", "to_s32", "f32_to_bits",
           "bits_to_f32", "FunctionalCore", "StepInfo", "SimError",
           "LivelockError", "execute", "decode_instr", "decode_program",
           "run_program", "HALT_PC"]
