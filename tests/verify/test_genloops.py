"""Shared loop generators: determinism, compilability, coverage."""

import random

import pytest

from repro.lang import compile_source
from repro.sim import Memory
from repro.verify.genloops import (GenCase, RandomChooser, gen_expr,
                                   gen_uc_body, random_cases)


class TestRandomChooser:
    def test_accepts_seed_or_rng(self):
        a = RandomChooser(42)
        b = RandomChooser(random.Random(42))
        assert [a.integers(0, 100) for _ in range(5)] \
            == [b.integers(0, 100) for _ in range(5)]

    def test_sampled_from(self):
        ch = RandomChooser(0)
        seq = ("p", "q", "r")
        assert all(ch.sampled_from(seq) in seq for _ in range(10))


class TestGeneratorCore:
    def test_expr_is_deterministic_per_seed(self):
        assert gen_expr(RandomChooser(9)) == gen_expr(RandomChooser(9))
        bodies = {gen_uc_body(RandomChooser(s)) for s in range(8)}
        assert len(bodies) > 1  # actually varies across seeds

    def test_every_generated_case_compiles_both_ways(self):
        for case in random_cases(seed=11, count=10):
            xl = compile_source(case.source)
            compile_source(case.source, xloops=False)
            assert xl.loop_kinds(), case.name

    def test_random_cases_cycle_families(self):
        names = [c.name for c in random_cases(seed=0, count=5)]
        assert names == ["uc-0", "or-1", "om-2", "de-3", "ua-4"]

    def test_random_cases_deterministic(self):
        a = random_cases(seed=5, count=6)
        b = random_cases(seed=5, count=6)
        assert [c.source for c in a] == [c.source for c in b]
        assert [c.init_words for c in a] == [c.init_words for c in b]


class TestGenCase:
    def test_apply_and_outputs_round_trip(self):
        case = GenCase(name="t", source="", entry="k", args=[1, 2],
                       init_words=[(0x1000, [7, 8, 9])],
                       out_regions=[(0x1000, 3)], compare_return=True)
        mem = Memory()
        assert case.apply(mem) == [1, 2]
        out = case.outputs(mem, return_value=99)
        assert out == ((7, 8, 9), 99)

    def test_masks_negative_init_words(self):
        case = GenCase(name="t", source="", entry="k", args=[],
                       init_words=[(0x1000, [-1])],
                       out_regions=[(0x1000, 1)])
        mem = Memory()
        case.apply(mem)
        assert case.outputs(mem) == ((0xFFFFFFFF,),)


class TestHypothesisAdapters:
    def test_strategies_present_when_hypothesis_installed(self):
        hypothesis = pytest.importorskip("hypothesis")  # noqa: F841
        from repro.verify.genloops import or_loop_body, uc_loop_body
        from hypothesis import given, settings

        seen = []

        @given(body=uc_loop_body(), update=or_loop_body())
        @settings(max_examples=5, deadline=None)
        def probe(body, update):
            seen.append((body, update))
            assert "b[i] = x;" in body
            assert "acc" in update

        probe()
        assert seen
