"""Scan-phase loop analysis — the static work the LMU performs while
instructions stream into the LPSU instruction buffers (paper II-D).

Given the xloop instruction and the program text, this module extracts
a :class:`LoopDescriptor`:

* the loop body (static instructions between label L and the xloop);
* the index and bound registers;
* cross-iteration registers (CIRs): registers *read before written* in
  static body order, excluding the index and MIV registers — exactly
  the LMU's two-bit-vector scheme;
* the "last CIR write": the largest PC writing each CIR, which gets
  the special bit in the instruction buffer;
* the mutual-induction-variable table (MIVT): one entry per ``xi``
  instruction, with the loop-invariant increment resolved against the
  live-in register values captured at scan time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..isa.instructions import Instr
from ..isa.xloops import XLoopKind


class ScanError(Exception):
    """The xloop body violates an ISA/implementation constraint."""


@dataclass
class MIVEntry:
    """One MIVT row: a register advanced by a loop-invariant stride."""

    reg: int
    increment: int            # resolved at scan time (u32 arithmetic)


@dataclass
class LoopDescriptor:
    """Everything the LPSU needs to execute one xloop specialized."""

    kind: XLoopKind
    xloop_pc: int
    body_start_pc: int
    body: List[Instr]
    idx_reg: int
    bound_reg: int
    cirs: FrozenSet[int] = frozenset()
    last_cir_write_pc: Dict[int, int] = field(default_factory=dict)
    mivt: Dict[int, MIVEntry] = field(default_factory=dict)
    live_in_reads: int = 0    # distinct registers read before written
    has_exit: bool = False    # body contains xloop.break (.de loops)
    #: registers the LMU copies back from the exiting lane (.de):
    #: every body-written register except the index and MIVs
    exit_copy_regs: FrozenSet[int] = frozenset()

    @property
    def body_len(self):
        return len(self.body)

    def body_index(self, pc):
        """Instruction-buffer slot of byte address *pc*."""
        return (pc - self.body_start_pc) >> 2

    def in_body(self, pc):
        return self.body_start_pc <= pc < self.xloop_pc and pc % 4 == 0


def scan_loop(program, xloop_instr, live_in_regs):
    """Build a :class:`LoopDescriptor` (the LMU scan-phase analysis).

    *live_in_regs* is the GPP register file at the moment the xloop is
    reached; it resolves ``addu.xi`` loop-invariant increments.
    """
    if not xloop_instr.op.is_xloop:
        raise ScanError("not an xloop instruction: %r"
                        % xloop_instr.mnemonic)
    xloop_pc = xloop_instr.pc
    body_start = xloop_instr.branch_target()
    if body_start >= xloop_pc:
        raise ScanError("xloop body label must precede the xloop")

    body = []
    pc = body_start
    while pc < xloop_pc:
        body.append(program.instr_at(pc))
        pc += 4

    kind = xloop_instr.op.xloop_kind
    idx_reg = xloop_instr.rs1
    bound_reg = xloop_instr.rs2

    # data-dependent exits: xloop.break must jump exactly past the
    # xloop, and only .de loops may contain one
    has_exit = False
    from ..isa.xloops import ControlPattern
    for instr in body:
        if instr.op.is_xbreak:
            if kind.control is not ControlPattern.DATA_DEPENDENT_EXIT:
                raise ScanError(
                    "xloop.break inside a %s loop (only .de loops may "
                    "exit early)" % kind.mnemonic)
            if instr.branch_target() != xloop_pc + 4:
                raise ScanError(
                    "xloop.break must target the xloop fall-through")
            has_exit = True

    # MIVT: one entry per xi instruction (scan order).
    mivt = {}
    for instr in body:
        if instr.op.is_xi:
            if instr.rd != instr.rs1:
                raise ScanError("xi destination must equal its source "
                                "(MIV register), got %s" % instr)
            if instr.mnemonic == "addiu.xi":
                inc = instr.imm
            else:
                inc = live_in_regs[instr.rs2]
            if instr.rd in mivt:
                raise ScanError("register x%d has two MIVT entries"
                                % instr.rd)
            mivt[instr.rd] = MIVEntry(instr.rd, inc & 0xFFFFFFFF)

    # Two-bit-vector CIR detection: first-read-then-written registers.
    read_first = set()
    written = set()
    for instr in body:
        for s in instr.src_regs():
            if s and s not in written:
                read_first.add(s)
        d = instr.dst_reg()
        if d is not None:
            written.add(d)
    cirs = (read_first & written) - {idx_reg} - set(mivt)

    # Last-CIR-write bits (largest PC updating each CIR).
    last_write = {}
    for instr in body:
        d = instr.dst_reg()
        if d in cirs:
            last_write[d] = instr.pc
    for instr in body:
        instr.last_cir_write = (instr.dst_reg() in last_write
                                and last_write.get(instr.dst_reg())
                                == instr.pc)

    if cirs and not kind.data.ordered_through_registers:
        # The compiler guarantees this never happens for well-formed
        # binaries; hand-written code that trips it would race.
        raise ScanError(
            "xloop.%s body carries register dependences through %s but "
            "the pattern does not order registers"
            % (kind.data.value, sorted("x%d" % c for c in cirs)))

    exit_copy = frozenset()
    if has_exit:
        exit_copy = frozenset(written) - {idx_reg} - set(mivt)

    return LoopDescriptor(
        kind=kind, xloop_pc=xloop_pc, body_start_pc=body_start, body=body,
        idx_reg=idx_reg, bound_reg=bound_reg, cirs=frozenset(cirs),
        last_cir_write_pc=last_write, mivt=mivt,
        live_in_reads=len(read_first), has_exit=has_exit,
        exit_copy_regs=exit_copy)
