"""Regenerate paper Table IV: hand-optimized xloop.or kernels and loop
transformations (specialized execution on io+x, ooo/2+x, ooo/4+x).

Expected shape: the -opt kernels beat their baselines (the paper sees
50-70%; our compiler starts from better-scheduled code, so gains are
smaller but strictly positive), and simply annotating serial kernels
(Table II) is often competitive with transformed versions.
"""

from conftest import run_once

from repro.eval import build_table4, opt_improvements, render_table4


def test_table4(benchmark):
    rows = run_once(benchmark, build_table4, scale="small")
    print()
    print(render_table4(rows))
    gains = opt_improvements(scale="small")
    print("\nhand-optimization gains on io+x: %s"
          % {k: round(v, 2) for k, v in gains.items()})
    assert all(g > 1.0 for g in gains.values())
