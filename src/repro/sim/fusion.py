"""Basic-block fusion: superblock closures over the decoded program.

:func:`~repro.sim.functional.decode_program` removed per-instruction
*decode* work; this module removes per-instruction *dispatch* work.  At
first use it partitions the text section into basic blocks (straight
-line runs ending at a control instruction or a join point) and
``exec``-compiles one Python function per block that inlines the
functional semantics of every instruction in the block — one call per
block instead of one table lookup + closure call per instruction.

Three flavours are generated, sharing the block layout:

``func``
    ``blk(core) -> next_pc``: architectural state only.  Used by
    :meth:`FunctionalCore.run` and the LPSU-free portions of system
    simulation.
``io``
    ``blk(core, timing, events) -> next_pc``: additionally inlines the
    :class:`~repro.uarch.inorder.InOrderTiming` scoreboard update and
    energy-event accounting for the whole block (static event counts
    are folded into one batched update per block).
``ooo``
    ``blk(core, timing) -> next_pc``: inlines functional semantics and
    feeds the out-of-order model through its
    :meth:`~repro.uarch.ooo.OOOTiming.consume_op` entry point (the OOO
    window state is too dynamic to fold statically).

Every generated function is an exact behavioural replica of the
step-at-a-time path: same architectural updates in the same order, same
cache/predictor access sequence, same stall and energy accounting.
``repro verify --fast-slow`` and the tier-1 suite enforce this
bit-for-bit.  Instructions the generator does not recognize are simply
left out of any block; the drivers fall back to single-stepping them
through the decoded-handler path, so unknown ops degrade gracefully
instead of diverging.
"""

from __future__ import annotations

from ..isa.instructions import FU, Fmt
from .functional import (_ALU_I, _BRANCH, _LOAD_SIZE, _STORE_SIZE, _fp_div,
                         _muldiv)
from .memory import bits_to_f32, f32_to_bits, to_s32, to_u32

#: 0xFFFFFFFF as a decimal literal for emitted source
_M = "4294967295"


def _fsqrt(a):
    fa = bits_to_f32(a)
    return f32_to_bits(fa ** 0.5) if fa >= 0.0 else 0x7FC00000


# ---------------------------------------------------------------------------
# per-mnemonic expression templates ({A}/{B} are register value exprs);
# each mirrors the corresponding decode_instr handler exactly
# ---------------------------------------------------------------------------

_ALU_R_EXPR = {
    "add": "({A} + {B})",
    "addu.xi": "({A} + {B})",
    "sub": "({A} - {B})",
    "and": "({A} & {B})",
    "or": "({A} | {B})",
    "xor": "({A} ^ {B})",
    "sll": "({A} << ({B} & 31))",
    "srl": "({A} >> ({B} & 31))",
    "sra": "(s32({A}) >> ({B} & 31))",
    "slt": "(1 if s32({A}) < s32({B}) else 0)",
    "sltu": "(1 if {A} < {B} else 0)",
}

_FP_R_EXPR = {
    "fadd.s": "f2b(b2f({A}) + b2f({B}))",
    "fsub.s": "f2b(b2f({A}) - b2f({B}))",
    "fmul.s": "f2b(b2f({A}) * b2f({B}))",
    "fdiv.s": "fdivb({A}, {B})",
    "fmin.s": "f2b(min(b2f({A}), b2f({B})))",
    "fmax.s": "f2b(max(b2f({A}), b2f({B})))",
    "flt.s": "(1 if b2f({A}) < b2f({B}) else 0)",
    "fle.s": "(1 if b2f({A}) <= b2f({B}) else 0)",
    "feq.s": "(1 if b2f({A}) == b2f({B}) else 0)",
}

_MULDIV_MNEMONICS = ("mul", "mulh", "div", "divu", "rem", "remu")

_R2_EXPR = {
    "fcvt.s.w": "f2b(float(s32({A})))",
    "fcvt.w.s": "int(b2f({A}))",
    "fsqrt.s": "fsqrtb({A})",
}

_BR_EXPR = {
    "beq": "{A} == {B}",
    "bne": "{A} != {B}",
    "blt": "s32({A}) < s32({B})",
    "bge": "s32({A}) >= s32({B})",
    "bltu": "{A} < {B}",
    "bgeu": "{A} >= {B}",
}


def _alu_i_expr(m, a, imm):
    if m == "addi" or m == "addiu.xi":
        return "(%s + %d)" % (a, imm)
    if m == "andi":
        return "(%s & %d)" % (a, to_u32(imm))
    if m == "ori":
        return "(%s | %d)" % (a, to_u32(imm))
    if m == "xori":
        return "(%s ^ %d)" % (a, to_u32(imm))
    if m == "slti":
        return "(1 if s32(%s) < %d else 0)" % (a, imm)
    if m == "sltiu":
        return "(1 if %s < %d else 0)" % (a, to_u32(imm))
    if m == "slli":
        return "(%s << %d)" % (a, imm & 31)
    if m == "srli":
        return "(%s >> %d)" % (a, imm & 31)
    if m == "srai":
        return "(s32(%s) >> %d)" % (a, imm & 31)
    return None


def emittable(instr):
    """Can this instruction be inlined into a fused block?"""
    op = instr.op
    fmt = op.fmt
    m = op.mnemonic
    if fmt == Fmt.R or fmt == Fmt.XI_R:
        return (m in _ALU_R_EXPR or m in _FP_R_EXPR
                or m in _MULDIV_MNEMONICS)
    if fmt == Fmt.I or fmt == Fmt.I_SHIFT or fmt == Fmt.XI_I:
        return m in _ALU_I
    if fmt == Fmt.R2:
        return m in _R2_EXPR
    if fmt == Fmt.LOAD:
        return m in _LOAD_SIZE
    if fmt == Fmt.STORE:
        return m in _STORE_SIZE
    if fmt == Fmt.BRANCH:
        return m in _BRANCH
    return fmt in (Fmt.AMO, Fmt.XLOOP, Fmt.JAL, Fmt.JALR, Fmt.LUI,
                   Fmt.NONE)


# ---------------------------------------------------------------------------
# block layout
# ---------------------------------------------------------------------------

def block_runs(program, break_pcs=frozenset()):
    """Partition the text section into fusable straight-line runs.

    Returns a list of index lists.  A run starts at every join point
    (program entry, control-flow target, post-control fall-through,
    symbol, and every pc in *break_pcs* — the system simulator passes
    xloop pcs so the dispatch check happens between blocks) and ends at
    the first control instruction.  Unrecognized instructions belong to
    no run; the drivers single-step them.
    """
    instrs = program.instrs
    n = len(instrs)
    base = program.text_base
    leaders = set()
    if n:
        leaders.add(0)
    for i, ins in enumerate(instrs):
        op = ins.op
        if op.is_branch or op.is_xloop or op.is_jump:
            if i + 1 < n:
                leaders.add(i + 1)
            if op.fmt != Fmt.JALR:
                t = ins.pc + ins.imm
                if not t & 3:
                    ti = (t - base) >> 2
                    if 0 <= ti < n:
                        leaders.add(ti)
    for a in program.symbols.values():
        if not a & 3:
            ti = (a - base) >> 2
            if 0 <= ti < n:
                leaders.add(ti)
    for pc in break_pcs:
        ti = (pc - base) >> 2
        if 0 <= ti < n:
            leaders.add(ti)

    runs = []
    cur = []
    for i in range(n):
        if i in leaders and cur:
            runs.append(cur)
            cur = []
        ins = instrs[i]
        if not emittable(ins):
            if cur:
                runs.append(cur)
                cur = []
            continue
        cur.append(i)
        op = ins.op
        if op.is_branch or op.is_xloop or op.is_jump:
            runs.append(cur)
            cur = []
    if cur:
        runs.append(cur)
    return runs


# ---------------------------------------------------------------------------
# code emission
# ---------------------------------------------------------------------------

def _sem_value_expr(ins):
    """Value expression for register-writing compute ops, or None."""
    op = ins.op
    m = op.mnemonic
    fmt = op.fmt
    A = "R[%d]" % ins.rs1
    B = "R[%d]" % ins.rs2
    if fmt == Fmt.R or fmt == Fmt.XI_R:
        t = _ALU_R_EXPR.get(m) or _FP_R_EXPR.get(m)
        if t is not None:
            return t.format(A=A, B=B)
        return "md(%r, %s, %s)" % (m, A, B)
    if fmt == Fmt.I or fmt == Fmt.I_SHIFT or fmt == Fmt.XI_I:
        return _alu_i_expr(m, A, ins.imm)
    if fmt == Fmt.R2:
        return _R2_EXPR[m].format(A=A)
    if fmt == Fmt.LUI:
        return "%d" % to_u32(ins.imm << 12)
    return None


def _emit_sem(out, ins):
    """Append the pure functional statements for a non-control *ins*.

    Mem ops leave the access address in ``_a``.  Mirrors the
    ``decode_instr`` handlers: compute ops with rd == x0 are no-ops
    except R2 (evaluated for exceptions, like the slow path)."""
    op = ins.op
    fmt = op.fmt
    m = op.mnemonic
    rd = ins.rd
    if fmt == Fmt.LOAD:
        size, signed = _LOAD_SIZE[m]
        out.append("_a = (R[%d] + %d) & %s" % (ins.rs1, ins.imm, _M))
        if rd:
            out.append("R[%d] = mem.load(_a, %d, %r)" % (rd, size, signed))
        else:
            out.append("mem.load(_a, %d, %r)" % (size, signed))
        return
    if fmt == Fmt.STORE:
        out.append("_a = (R[%d] + %d) & %s" % (ins.rs1, ins.imm, _M))
        out.append("mem.store(_a, %d, R[%d])"
                   % (_STORE_SIZE[m], ins.rs2))
        return
    if fmt == Fmt.AMO:
        out.append("_a = R[%d]" % ins.rs1)
        if rd:
            out.append("R[%d] = mem.amo(%r, _a, R[%d])" % (rd, m, ins.rs2))
        else:
            out.append("mem.amo(%r, _a, R[%d])" % (m, ins.rs2))
        return
    if fmt == Fmt.NONE:
        return
    expr = _sem_value_expr(ins)
    if rd:
        if fmt == Fmt.LUI:
            out.append("R[%d] = %s" % (rd, expr))
        else:
            out.append("R[%d] = %s & %s" % (rd, expr, _M))
    elif fmt == Fmt.R2:
        out.append(expr)  # may raise (fcvt.w.s on NaN), like slow path


def _ctrl_of(ins):
    """Terminator description for a control *ins*.

    ``("cond", cond_expr, target, fallthrough)`` for branches/xloops,
    ``("jump", target_expr, link_lines)`` for jal/jalr, None otherwise.
    """
    op = ins.op
    fmt = op.fmt
    pc = ins.pc
    A = "R[%d]" % ins.rs1
    B = "R[%d]" % ins.rs2
    if fmt == Fmt.BRANCH:
        cond = _BR_EXPR[op.mnemonic].format(A=A, B=B)
        return ("cond", cond, pc + ins.imm, pc + 4)
    if fmt == Fmt.XLOOP:
        return ("cond", "s32(%s) < s32(%s)" % (A, B), pc + ins.imm, pc + 4)
    if fmt == Fmt.JAL:
        link = []
        if ins.rd:
            link.append("R[%d] = %d" % (ins.rd, to_u32(pc + 4)))
        return ("jump", "%d" % (pc + ins.imm), link)
    if fmt == Fmt.JALR:
        # target is computed before the link write, like decode_instr
        link = ["_t = (R[%d] + %d) & 4294967294" % (ins.rs1, ins.imm)]
        if ins.rd:
            link.append("R[%d] = %d" % (ins.rd, to_u32(pc + 4)))
        return ("jump", "_t", link)
    return None


def _nonzero_srcs(ins):
    """(dedup'd nonzero sources for the scoreboard, raw rf_read count)"""
    srcs = ins.src_regs()
    nz = []
    count = 0
    for s in srcs:
        if s:
            count += 1
            if s not in nz:
                nz.append(s)
    return nz, count


def _gen_func(name, instrs, idxs, lines):
    lines.append("def %s(c):" % name)
    lines.append(" R = c.regs")
    lines.append(" mem = c.mem")
    body = []
    ctrl = None
    for i in idxs:
        ins = instrs[i]
        ctrl = _ctrl_of(ins)
        if ctrl is None:
            _emit_sem(body, ins)
        elif ctrl[0] == "jump":
            body.extend(ctrl[2])
    for ln in body:
        lines.append(" " + ln)
    last = instrs[idxs[-1]]
    if ctrl is None:
        lines.append(" _n = %d" % (last.pc + 4))
    elif ctrl[0] == "cond":
        lines.append(" if %s:" % ctrl[1])
        lines.append("  _n = %d" % ctrl[2])
        lines.append(" else:")
        lines.append("  _n = %d" % ctrl[3])
    else:
        lines.append(" _n = %s" % ctrl[1])
    lines.append(" c.icount += %d" % len(idxs))
    lines.append(" c.pc = _n")
    lines.append(" return _n")
    lines.append("")


def _gen_io(name, instrs, idxs, lines, config):
    """In-order flavour: functional semantics + inlined scoreboard."""
    lat = config.latencies
    hit = config.cache.hit_latency
    pen = config.mispredict_penalty
    has_mem = any(instrs[i].op.is_mem and not instrs[i].op.is_fence
                  for i in idxs)
    has_pred = any(instrs[i].op.is_branch or instrs[i].op.is_xloop
                   for i in idxs)
    has_ctrl = has_pred or any(instrs[i].op.is_jump for i in idxs)
    has_srcs = any(_nonzero_srcs(instrs[i])[0] for i in idxs)

    lines.append("def %s(c, t, ev):" % name)
    lines.append(" R = c.regs")
    lines.append(" mem = c.mem")
    lines.append(" rr = t.reg_ready")
    lines.append(" cyc = t.cycle")
    if has_mem:
        lines.append(" cache = t.cache")
        lines.append(" smem = 0")
        lines.append(" dcm = 0")
    if has_pred:
        lines.append(" pred = t.predictor")
    if has_srcs:
        lines.append(" sraw = 0")
    if has_ctrl:
        lines.append(" sbr = 0")

    n_rf_read = n_rf_write = n_bpred = n_mem = 0
    fu_counts = {}
    ctrl = None

    for i in idxs:
        ins = instrs[i]
        op = ins.op
        nz, raw_count = _nonzero_srcs(ins)
        n_rf_read += raw_count
        if ins.dst_reg() is not None:
            n_rf_write += 1
        fu = op.fu
        if fu == FU.BR or fu == FU.XLOOP:
            fu_counts["alu_op"] = fu_counts.get("alu_op", 0) + 1
        elif fu == FU.ALU:
            fu_counts["alu_op"] = fu_counts.get("alu_op", 0) + 1
        elif fu == FU.MUL:
            fu_counts["mul_op"] = fu_counts.get("mul_op", 0) + 1
        elif fu == FU.DIV:
            fu_counts["div_op"] = fu_counts.get("div_op", 0) + 1
        elif fu == FU.FPU:
            fu_counts["fpu_op"] = fu_counts.get("fpu_op", 0) + 1
        elif fu == FU.FDIV:
            fu_counts["fdiv_op"] = fu_counts.get("fdiv_op", 0) + 1

        # issue cycle: max(cyc, reg_ready[srcs])
        if not nz:
            issue = "cyc"
        else:
            issue = "_i"
            lines.append(" _i = rr[%d]" % nz[0])
            for s in nz[1:]:
                lines.append(" _x = rr[%d]" % s)
                lines.append(" if _x > _i: _i = _x")
            lines.append(" if _i < cyc: _i = cyc")
            lines.append(" sraw += _i - cyc")

        ctrl = _ctrl_of(ins)
        dst = ins.dst_reg()

        if op.is_mem and not op.is_fence:
            n_mem += 1
            body = []
            _emit_sem(body, ins)
            for ln in body:
                lines.append(" " + ln)
            lines.append(" _x = cache.access(_a, %r)" % bool(op.is_store))
            if op.is_amo:
                if dst is not None:
                    lines.append(" rr[%d] = %s + %d + _x"
                                 % (dst, issue, lat.amo - hit))
            elif op.is_load:
                if dst is not None:
                    lines.append(" rr[%d] = %s + _x" % (dst, issue))
            else:
                pass  # store writes no register
            lines.append(" if _x > %d:" % hit)
            lines.append("  dcm += 1")
            lines.append("  smem += _x - %d" % hit)
            lines.append(" cyc = %s + 1" % issue)
        elif ctrl is None:
            body = []
            _emit_sem(body, ins)
            for ln in body:
                lines.append(" " + ln)
            if dst is not None:
                if fu in (FU.MUL, FU.DIV, FU.FPU, FU.FDIV):
                    latency = lat.for_fu(fu)
                else:
                    latency = 1
                lines.append(" rr[%d] = %s + %d" % (dst, issue, latency))
            lines.append(" cyc = %s + 1" % issue)
        elif ctrl[0] == "cond":
            n_bpred += 1
            lines.append(" if %s:" % ctrl[1])
            lines.append("  _n = %d" % ctrl[2])
            lines.append("  if pred.predict_and_update(%d, True):"
                         % ins.pc)
            lines.append("   cyc = %s + %d" % (issue, 1 + pen))
            lines.append("   sbr += %d" % pen)
            lines.append("  else:")
            lines.append("   cyc = %s + 1" % issue)
            lines.append(" else:")
            lines.append("  _n = %d" % ctrl[3])
            lines.append("  if pred.predict_and_update(%d, False):"
                         % ins.pc)
            lines.append("   cyc = %s + %d" % (issue, 1 + pen))
            lines.append("   sbr += %d" % pen)
            lines.append("  else:")
            lines.append("   cyc = %s + 1" % issue)
        else:  # jump (jal / jalr / xloop.break)
            for ln in ctrl[2]:
                lines.append(" " + ln)
            if dst is not None:
                lines.append(" rr[%d] = %s + 1" % (dst, issue))
            lines.append(" _n = %s" % ctrl[1])
            lines.append(" cyc = %s + 2" % issue)
            lines.append(" sbr += 1")

    last = instrs[idxs[-1]]
    if ctrl is None:
        lines.append(" _n = %d" % (last.pc + 4))
    lines.append(" t.cycle = cyc")
    if has_srcs:
        lines.append(" t.stall_raw += sraw")
    if has_mem:
        lines.append(" t.stall_mem += smem")
    if has_ctrl:
        lines.append(" t.stall_branch += sbr")
    lines.append(" t.retired += %d" % len(idxs))
    lines.append(" c.icount += %d" % len(idxs))
    lines.append(" c.pc = _n")
    lines.append(" ev.ic_access += %d" % len(idxs))
    if n_rf_read:
        lines.append(" ev.rf_read += %d" % n_rf_read)
    if n_rf_write:
        lines.append(" ev.rf_write += %d" % n_rf_write)
    for field, count in sorted(fu_counts.items()):
        lines.append(" ev.%s += %d" % (field, count))
    if n_mem:
        lines.append(" ev.dc_access += %d" % n_mem)
        lines.append(" ev.dc_miss += dcm")
    if n_bpred:
        lines.append(" ev.bpred += %d" % n_bpred)
    lines.append(" return _n")
    lines.append("")


def _gen_ooo(name, instrs, idxs, lines):
    """OOO flavour: inline semantics, feed timing via consume_op."""
    lines.append("def %s(c, t):" % name)
    lines.append(" R = c.regs")
    lines.append(" mem = c.mem")
    lines.append(" co = t.consume_op")
    ctrl = None
    for i in idxs:
        ins = instrs[i]
        op = ins.op
        ctrl = _ctrl_of(ins)
        iname = "I%d" % i
        if ctrl is None:
            body = []
            _emit_sem(body, ins)
            for ln in body:
                lines.append(" " + ln)
            addr = "_a" if (op.is_mem and not op.is_fence) else "None"
            lines.append(" co(%s, %d, %s, False)" % (iname, ins.pc, addr))
        elif ctrl[0] == "cond":
            lines.append(" if %s:" % ctrl[1])
            lines.append("  _n = %d" % ctrl[2])
            lines.append("  co(%s, %d, None, True)" % (iname, ins.pc))
            lines.append(" else:")
            lines.append("  _n = %d" % ctrl[3])
            lines.append("  co(%s, %d, None, False)" % (iname, ins.pc))
        else:
            for ln in ctrl[2]:
                lines.append(" " + ln)
            lines.append(" _n = %s" % ctrl[1])
            lines.append(" co(%s, %d, None, True)" % (iname, ins.pc))
    last = instrs[idxs[-1]]
    if ctrl is None:
        lines.append(" _n = %d" % (last.pc + 4))
    lines.append(" c.icount += %d" % len(idxs))
    lines.append(" c.pc = _n")
    lines.append(" return _n")
    lines.append("")


# ---------------------------------------------------------------------------
# build + cache
# ---------------------------------------------------------------------------

def _build(program, flavor, break_pcs, config):
    instrs = program.instrs
    runs = block_runs(program, break_pcs)
    ns = {
        "s32": to_s32,
        "f2b": f32_to_bits,
        "b2f": bits_to_f32,
        "md": _muldiv,
        "fdivb": _fp_div,
        "fsqrtb": _fsqrt,
    }
    lines = []
    names = []
    for idxs in runs:
        name = "_b%d" % idxs[0]
        names.append(name)
        if flavor == "func":
            _gen_func(name, instrs, idxs, lines)
        elif flavor == "io":
            _gen_io(name, instrs, idxs, lines, config)
        elif flavor == "ooo":
            for i in idxs:
                ns["I%d" % i] = instrs[i]
            _gen_ooo(name, instrs, idxs, lines)
        else:
            raise ValueError("unknown fusion flavor %r" % flavor)
    src = "\n".join(lines)
    code = compile(src, "<fused:%s>" % flavor, "exec")
    exec(code, ns)
    return {instrs[idxs[0]].pc: ns[name]
            for idxs, name in zip(runs, names)}


def fused_blocks(program, flavor="func", break_pcs=(), config=None):
    """PC-indexed dict of fused block functions, cached on *program*.

    *config* (a :class:`~repro.uarch.params.GPPConfig`) is required for
    the ``io`` flavour, whose latencies/penalties are folded into the
    generated code.
    """
    bk = frozenset(break_pcs)
    if flavor == "io":
        ck = (config.mispredict_penalty, repr(config.latencies),
              repr(config.cache))
    else:
        ck = None
    key = (flavor, bk, ck)
    cache = getattr(program, "_fused", None)
    if cache is None:
        cache = program._fused = {}
    tbl = cache.get(key)
    if tbl is None:
        tbl = _build(program, flavor, bk, config)
        cache[key] = tbl
    return tbl
