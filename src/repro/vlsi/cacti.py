"""CACTI-lite: first-order SRAM area / access-energy estimates.

The paper models cache tag/data SRAMs and the LPSU instruction-buffer
SRAM with CACTI [26] because no memory compiler was available for the
40 nm target.  We reproduce that with a simple linear-plus-overhead
model calibrated so that the paper's two anchor points hold:

* a 16 KB cache macro is a substantial fraction of the 0.25 mm² core;
* one instruction-buffer access costs ~10x less than an
  instruction-cache access (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

#: mm^2 per byte of SRAM payload (40 nm, 6T cell + array overheads)
_MM2_PER_BYTE = 4.0e-6
#: fixed periphery overhead per macro (decoders, sense amps), mm^2
_MACRO_OVERHEAD = 0.0013
#: pJ scaling for access energy: E = base + slope * sqrt(bytes)
_E_BASE_PJ = 0.9
_E_SLOPE_PJ = 0.31


@dataclass(frozen=True)
class SRAMEstimate:
    """Area and per-access energy of one SRAM macro."""

    bytes: int
    area_mm2: float
    read_energy_pj: float


def sram(bytes_):
    """Estimate an SRAM macro of *bytes_* payload bytes."""
    if bytes_ <= 0:
        raise ValueError("SRAM size must be positive")
    area = _MACRO_OVERHEAD + _MM2_PER_BYTE * bytes_
    energy = _E_BASE_PJ + _E_SLOPE_PJ * (bytes_ ** 0.5)
    return SRAMEstimate(bytes=bytes_, area_mm2=area,
                        read_energy_pj=energy)


#: mm^2 per byte for small latch/flop-based buffers (IB, IDQ, CIB):
#: far less dense than a compiled SRAM macro
_MM2_PER_BUFFER_BYTE = 1.139e-5


def buffer_array(bytes_):
    """Estimate a small flop/latch-based buffer (LPSU instruction
    buffer, index queues, CIBs)."""
    if bytes_ <= 0:
        raise ValueError("buffer size must be positive")
    area = _MACRO_OVERHEAD + _MM2_PER_BUFFER_BYTE * bytes_
    energy = 0.5 + 0.12 * (bytes_ ** 0.5)
    return SRAMEstimate(bytes=bytes_, area_mm2=area,
                        read_energy_pj=energy)


def cache_macro(size_bytes, line_bytes=32, ways=4):
    """A cache = data array + tag array (tags ~7% of data bits)."""
    tags = int(size_bytes * 0.07)
    data = sram(size_bytes)
    tag = sram(max(64, tags))
    return SRAMEstimate(
        bytes=size_bytes,
        area_mm2=data.area_mm2 + tag.area_mm2,
        read_energy_pj=data.read_energy_pj + tag.read_energy_pj)
