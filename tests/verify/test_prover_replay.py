"""Counterexample replay: a prover refutation becomes a directed
GenCase, and the differential conformance harness must catch the
unsound pragma as an observable traditional-vs-specialized divergence
(or an invariant-monitor violation) on at least one sweep point."""

import pytest

from repro.lang.parser import parse
from repro.lang.passes.prover import prove_source
from repro.verify import (case_from_counterexample, check_case,
                          check_counterexample)

WRONG_UC = """
void k(int* a, int n) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        a[i + 1] = a[i] + 1;
    }
}
"""


def entry_params(source, entry):
    return {f.name: f for f in parse(source).functions}[entry].params


class TestCaseFromCounterexample:
    def test_case_shape(self):
        proof = prove_source(WRONG_UC)[0]
        assert proof.verdict == "refuted"
        case = case_from_counterexample(
            "cex", WRONG_UC, "k", entry_params(WRONG_UC, "k"),
            proof.counterexample)
        assert case.entry == "k"
        base = case.init_words[0][0]
        assert case.args[0] == base            # pointer -> region base
        assert case.args[1] >= proof.counterexample.trip  # bound raised
        assert case.out_regions == [(base, 64)]

    def test_symbol_values_flow_into_args(self):
        src = """
void k(int* a, int n, int s) {
    #pragma xloops unordered
    for (int i = 0; i < n; i++) {
        a[i * s] = a[i] + 1;
    }
}
"""
        proof = prove_source(src)[0]
        assert proof.verdict == "refuted"
        wit = proof.counterexample
        assert "s" in wit.symbols
        case = case_from_counterexample(
            "cex-sym", src, "k", entry_params(src, "k"), wit)
        assert case.args[2] == wit.symbols["s"] & 0xFFFFFFFF


class TestReplayCatchesUnsoundPragma:
    def test_wrong_unordered_diverges(self):
        proof = prove_source(WRONG_UC)[0]
        res = check_counterexample(WRONG_UC, "k",
                                   entry_params(WRONG_UC, "k"), proof)
        assert not res.ok, (
            "prover-refuted pragma produced no divergence")

    def test_correct_pragma_replay_stays_clean(self):
        # same loop shape, honestly annotated: the directed case must
        # pass — the harness flags the pragma, not the dependence
        src = WRONG_UC.replace("unordered", "ordered")
        wrong = prove_source(WRONG_UC)[0]
        case = case_from_counterexample(
            "om-ok", src, "k", entry_params(src, "k"),
            wrong.counterexample)
        res = check_case(case)
        assert res.ok, res.detail

    def test_missing_counterexample_rejected(self):
        src = WRONG_UC.replace("unordered", "ordered")
        proof = prove_source(src)[0]
        assert proof.verdict == "proved"
        # om loops may carry a dependence witness, but a proof without
        # one cannot be replayed
        if proof.counterexample is None:
            with pytest.raises(ValueError):
                check_counterexample(src, "k",
                                     entry_params(src, "k"), proof)
