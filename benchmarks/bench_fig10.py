"""Regenerate paper Fig 10: VLSI (RTL-calibrated) energy efficiency vs
performance for the uc kernels, compiled without xi instructions and
priced with the 40nm table; performance includes post-PnR cycle times.

Expected shape (paper Section V-C): 2.4-4x wall-clock speedup and
1.6-2.1x energy-efficiency improvement; sgemm suffers most from the
missing xi encoding.
"""

from conftest import run_once

from repro.eval import render_fig10
from repro.eval.figures import fig10_data


def test_fig10(benchmark):
    points = run_once(benchmark, fig10_data, scale="small")
    print()
    print(render_fig10(points))
    for p in points:
        assert p.performance > 1.2, p.kernel
        assert p.efficiency > 1.0, p.kernel
