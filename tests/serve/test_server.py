"""The sweep server end to end: global in-flight dedup across
concurrent clients, crash -> retry -> quarantine without stalling
anyone, warm resubmissions served entirely from the cache, and
bit-identity with a direct in-process run.

The server runs on a background thread (:class:`ServerThread`) over a
real unix socket, its simulations in real forked workers -- the same
machinery ``repro serve`` deploys, minus only the second OS process.
"""

import dataclasses
import json
import os
import threading

import pytest

from repro.eval import diskcache, hardening, runner
from repro.eval.parallel import SweepPoint
from repro.serve import ServeClient, ServerThread
from repro.serve import protocol
from repro.serve.client import connect

SCALE = "tiny"

POINTS = [
    SweepPoint("sgemm-uc", "io", scale=SCALE),
    SweepPoint("sgemm-uc", "io+x", mode="specialized", scale=SCALE),
    SweepPoint("dither-or", "io+x", mode="specialized", scale=SCALE),
]


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    """Fresh cache dir + enabled cache per test, restored after (CI
    runs the suite with REPRO_NO_CACHE=1; serving warm resubmissions
    is exactly the disk-cache behaviour these tests are about)."""
    saved = (diskcache._dir_override, diskcache._force_disabled,
             os.environ.get(diskcache.ENV_CACHE_DIR),
             os.environ.get(diskcache.ENV_NO_CACHE))
    diskcache.configure(cache_dir=str(tmp_path / "cache"), enabled=True)
    runner.clear_cache()
    monkeypatch.delenv(hardening.CHAOS_ENV, raising=False)
    yield
    diskcache._dir_override, diskcache._force_disabled = saved[:2]
    for var, value in ((diskcache.ENV_CACHE_DIR, saved[2]),
                       (diskcache.ENV_NO_CACHE, saved[3])):
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value
    diskcache.reset_stats()
    runner.clear_cache(keep_disk=True)


@pytest.fixture()
def server(tmp_path):
    with ServerThread(jobs=2, retries=2, backoff=0.01,
                      socket_dir=str(tmp_path)) as st:
        yield st


def _snapshot(result):
    """KernelRun as plain data, minus the process-wide backend_stats
    diagnostics (identical policy to the parallel-executor tests)."""
    data = dataclasses.asdict(result)
    data.pop("backend_stats", None)
    return data


class TestServing:
    def test_cold_then_warm(self, server):
        with ServeClient(server.address) as client:
            first = client.submit(POINTS)
            assert first.ok, first.render()
            assert first.points == len(POINTS)
            assert first.misses == len(POINTS)   # all simulated

            # drop the in-process memo: the warm pass must come from
            # the hot tier / disk store, not this process's dict
            runner.clear_cache(keep_disk=True)
            second = client.submit(POINTS)
            assert second.ok, second.render()
            assert second.misses == 0            # zero simulator runs
            assert second.hits == len(POINTS)    # 100% cache-served

    def test_results_bit_identical_to_direct_run(self, server):
        reference = {}
        for pt in POINTS:
            r = runner.run(pt.kernel, pt.config, use_disk_cache=False,
                           **pt.run_kwargs())
            reference[pt.memo_key()] = _snapshot(r)
        runner.clear_cache()    # fresh memo + disk: the server recomputes

        with ServeClient(server.address) as client:
            summary = client.submit(POINTS)
        assert summary.ok, summary.render()
        # submit() seeded the memo with the server's records
        for pt in POINTS:
            r = runner.run(pt.kernel, pt.config, **pt.run_kwargs())
            assert _snapshot(r) == reference[pt.memo_key()], pt.label()

    def test_ping_and_stats(self, server):
        with ServeClient(server.address) as client:
            pong = client.ping()
            assert pong["ok"] and "version" in pong
            client.submit(POINTS[:1])
            stats = client.stats()
            assert stats["counters"]["points"] == 1
            assert "hot" in stats["cache"]

    def test_unknown_kernel_is_structured_failure(self, server):
        with ServeClient(server.address) as client:
            bad = [SweepPoint("no-such-kernel", "io", scale=SCALE)]
            summary = client.submit(bad + POINTS[:1])
            assert len(summary.failures) == 1
            assert "no-such-kernel" in summary.failures[0].error
            # the good point still came back
            assert len(summary.outcomes) == 1


class TestConcurrentDedup:
    def test_exactly_one_simulation_per_unique_point(self, server):
        """N clients race the same cold point: the server runs ONE
        simulation and fans the record out to every waiter."""
        point = [SweepPoint("dynprog-om", "io+x", mode="specialized",
                            scale=SCALE)]
        summaries = []
        errors = []

        def one_client():
            try:
                with ServeClient(server.address) as client:
                    summaries.append(client.submit(point))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one_client)
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(summaries) == 8
        assert all(s.ok for s in summaries)
        # the accounting: the simulated flag is granted to exactly one
        # waiter; everyone else was served the same in-flight record
        total_sims = sum(s.misses for s in summaries)
        assert total_sims == 1
        with ServeClient(server.address) as client:
            counters = client.stats()["counters"]
        assert counters["simulated"] == 1
        assert counters["served_inflight"] + \
            counters["served_cache"] == 7

    def test_duplicate_points_in_one_submission(self, server):
        dup = [SweepPoint("sgemm-uc", "io", scale=SCALE)] * 5
        with ServeClient(server.address) as client:
            summary = client.submit(dup)
            assert summary.ok
            assert summary.points == 5
            assert summary.misses == 1   # one simulation, five answers


class TestProtocolEdges:
    """Hostile or broken bytes on the wire: the server must drop that
    one connection (or answer an error frame) and keep serving every
    other client untouched."""

    def _assert_healthy(self, server):
        with ServeClient(server.address, reconnects=0) as client:
            assert client.ping()["ok"]

    def test_garbage_bytes_on_connect(self, server):
        sock = connect(server.address)
        try:
            # not even a plausible header: 4 bytes promising ~3.2 GB
            sock.sendall(b"\xbe\xef\xca\xfe garbage that is not json")
            assert protocol.recv_frame(sock) is None   # dropped
        finally:
            sock.close()
        self._assert_healthy(server)

    def test_oversized_frame_is_refused(self, server):
        sock = connect(server.address)
        try:
            # header alone announces > MAX_FRAME; the server must bail
            # before trying to buffer the body
            sock.sendall(protocol._HEADER.pack(protocol.MAX_FRAME + 1))
            assert protocol.recv_frame(sock) is None
        finally:
            sock.close()
        self._assert_healthy(server)

    def test_truncated_frame_mid_read(self, server):
        sock = connect(server.address)
        try:
            # promise 64 bytes, deliver 10, hang up mid-frame
            sock.sendall(protocol._HEADER.pack(64) + b'{"op": "pi')
        finally:
            sock.close()
        self._assert_healthy(server)

    def test_valid_frame_invalid_op_gets_error_frame(self, server):
        sock = connect(server.address)
        try:
            protocol.send_frame(sock, {"op": "make-me-a-sandwich"})
            reply = protocol.recv_frame(sock)
            assert "error" in reply
            # the connection itself survives a polite error
            protocol.send_frame(sock, {"op": "ping"})
            assert protocol.recv_frame(sock)["ok"]
        finally:
            sock.close()
        self._assert_healthy(server)

    def test_bad_frames_do_not_disturb_a_concurrent_client(self, server):
        """A vandal floods junk while a healthy client submits a real
        sweep on another connection."""
        stop = threading.Event()

        def vandal():
            while not stop.is_set():
                sock = connect(server.address)
                try:
                    sock.sendall(b"\x00\x00\x00\x08notjson!")
                    protocol.recv_frame(sock)
                except protocol.ProtocolError:
                    pass
                finally:
                    sock.close()

        thread = threading.Thread(target=vandal, daemon=True)
        thread.start()
        try:
            with ServeClient(server.address) as client:
                summary = client.submit(POINTS)
            assert summary.ok, summary.render()
            assert summary.points == len(POINTS)
        finally:
            stop.set()
            thread.join(timeout=10)


class TestChaosThroughServer:
    def test_crash_is_retried_transparently(self, server, monkeypatch):
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"sgemm-uc/io/traditional": {"crash": [0]}}))
        with ServeClient(server.address) as client:
            summary = client.submit(POINTS)
        assert summary.ok, summary.render()
        assert summary.points == len(POINTS)
        with ServeClient(server.address) as client:
            assert client.stats()["counters"]["retried"] >= 1

    def test_quarantine_does_not_stall_other_clients(self, server,
                                                     monkeypatch):
        """One client's point crashes on every attempt and is
        quarantined; a concurrent client's healthy points all come
        back fine."""
        monkeypatch.setenv(hardening.CHAOS_ENV, json.dumps(
            {"dynprog-om": {"crash": [0, 1, 2]}}))
        doomed = [SweepPoint("dynprog-om", "io+x", mode="specialized",
                             scale=SCALE)]
        results = {}

        def doomed_client():
            with ServeClient(server.address) as client:
                results["doomed"] = client.submit(doomed)

        def healthy_client():
            with ServeClient(server.address) as client:
                results["healthy"] = client.submit(POINTS)

        threads = [threading.Thread(target=doomed_client),
                   threading.Thread(target=healthy_client)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert results["healthy"].ok, results["healthy"].render()
        assert results["healthy"].points == len(POINTS)
        assert not results["doomed"].ok
        failure = results["doomed"].failures[0]
        assert failure.kind == "crash"
        assert failure.attempts == 2     # retries=2 on this server
        # the server survives for the next customer
        with ServeClient(server.address) as client:
            assert client.ping()["ok"]
