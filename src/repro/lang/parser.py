"""Recursive-descent parser for MiniC.

Grammar (precedence climbing for expressions)::

    unit      := function*
    function  := type ident '(' params ')' block
    block     := '{' stmt* '}'
    stmt      := decl | if | while | for | return | break | continue
               | assign/expr ';' | block
    pragma    := '#pragma' 'xloops' ('unordered'|'ordered'|'atomic')

Compound assignments (``+=`` etc.), ``++``/``--``, and ``for`` headers
are desugared here so later passes see one canonical form.
"""

from __future__ import annotations

import copy
from typing import List, Optional

from .ast_nodes import (AddrOf, Assign, Binary, Break, Call, Cast, CHAR,
                        Continue, Decl, Expr, ExprStmt, FLOAT, FloatLit,
                        For, Function, If, Index, INT, IntLit, Param,
                        Return, Stmt, Type, Unary, Unit, Var, VOID, While)
from .lexer import CompileError, Token, tokenize

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

_ANNOTATIONS = ("unordered", "ordered", "atomic")


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0
        self._pending_pragma: Optional[str] = None

    # -- token helpers ------------------------------------------------------

    @property
    def tok(self):
        return self.tokens[self.pos]

    def advance(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind, text=None):
        tok = self.tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        tok = self.accept(kind, text)
        if tok is None:
            raise CompileError(
                "expected %s, got %r" % (text or kind, self.tok.text),
                self.tok.line)
        return tok

    def _error(self, message):
        raise CompileError(message, self.tok.line)

    # -- pragmas ---------------------------------------------------------

    def _take_pragmas(self):
        while self.tok.kind == "pragma":
            tok = self.advance()
            parts = tok.text.split()
            if len(parts) < 3 or parts[1] != "xloops":
                raise CompileError("malformed pragma %r" % tok.text,
                                   tok.line)
            keyword = parts[2]
            if keyword not in _ANNOTATIONS:
                raise CompileError(
                    "unknown xloops annotation %r (expected one of %s)"
                    % (keyword, ", ".join(_ANNOTATIONS)), tok.line)
            if self._pending_pragma is not None:
                raise CompileError("duplicate #pragma xloops", tok.line)
            self._pending_pragma = keyword

    def _consume_pragma(self):
        pragma, self._pending_pragma = self._pending_pragma, None
        return pragma

    # -- types ----------------------------------------------------------------

    def _try_type(self):
        tok = self.tok
        if tok.kind == "kw" and tok.text in ("void", "int", "float", "char"):
            self.advance()
            ptr = 0
            while self.accept("op", "*"):
                ptr += 1
            if ptr > 1:
                self._error("only single-level pointers are supported")
            return Type(tok.text, ptr)
        return None

    def _expect_type(self):
        ty = self._try_type()
        if ty is None:
            self._error("expected a type")
        return ty

    # -- top level ----------------------------------------------------------------

    def parse_unit(self):
        unit = Unit()
        self._take_pragmas()
        if self._pending_pragma:
            self._error("#pragma xloops must precede a for loop")
        while self.tok.kind != "eof":
            unit.functions.append(self._function())
            self._take_pragmas()
            if self._pending_pragma:
                self._error("#pragma xloops must precede a for loop")
        return unit

    def _function(self):
        line = self.tok.line
        rtype = self._expect_type()
        name = self.expect("ident").text
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            while True:
                ptype = self._expect_type()
                pname = self.expect("ident").text
                if ptype == VOID:
                    self._error("void parameter")
                params.append(Param(ptype, pname))
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self._block()
        return Function(name, rtype, params, body, line)

    # -- statements ----------------------------------------------------------------

    def _block(self):
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            if self.tok.kind == "eof":
                self._error("unterminated block")
            stmts.extend(self._statement())
        return stmts

    def _statement(self):
        """Parse one statement; returns a list (desugaring may split)."""
        self._take_pragmas()
        tok = self.tok
        if self._pending_pragma and not (tok.kind == "kw"
                                         and tok.text == "for"):
            self._error("#pragma xloops must precede a for loop")
        if tok.kind == "op" and tok.text == "{":
            return self._block()
        if tok.kind == "kw":
            if tok.text in ("int", "float", "char", "void"):
                return self._decl()
            if tok.text == "if":
                return [self._if()]
            if tok.text == "while":
                return [self._while()]
            if tok.text == "for":
                return [self._for()]
            if tok.text == "return":
                line = self.advance().line
                value = None
                if not self.accept("op", ";"):
                    value = self._expr()
                    self.expect("op", ";")
                return [Return(line=line, value=value)]
            if tok.text == "break":
                line = self.advance().line
                self.expect("op", ";")
                return [Break(line=line)]
            if tok.text == "continue":
                line = self.advance().line
                self.expect("op", ";")
                return [Continue(line=line)]
        return [self._simple_stmt(expect_semi=True)]

    def _decl(self):
        line = self.tok.line
        ty = self._expect_type()
        if ty == VOID:
            self._error("cannot declare void variable")
        name = self.expect("ident").text
        if self.accept("op", "["):
            size_tok = self.expect("int")
            self.expect("op", "]")
            self.expect("op", ";")
            return [Decl(line=line, type=ty, name=name,
                         array_size=size_tok.value)]
        init = None
        if self.accept("op", "="):
            init = self._expr()
        self.expect("op", ";")
        return [Decl(line=line, type=ty, name=name, init=init)]

    def _if(self):
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        then = self._statement_or_block()
        orelse = []
        if self.accept("kw", "else"):
            orelse = self._statement_or_block()
        return If(line=line, cond=cond, then=then, orelse=orelse)

    def _while(self):
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        body = self._statement_or_block()
        return While(line=line, cond=cond, body=body)

    def _for(self):
        pragma = self._consume_pragma()
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not self.accept("op", ";"):
            if self.tok.kind == "kw" and self.tok.text in ("int", "float",
                                                           "char"):
                decls = self._decl()   # consumes ';'
                init = decls[0]
            else:
                init = self._simple_stmt(expect_semi=True)
        cond = None
        if not self.accept("op", ";"):
            cond = self._expr()
            self.expect("op", ";")
        step = None
        if not self.accept("op", ")"):
            step = self._simple_stmt(expect_semi=False)
            self.expect("op", ")")
        body = self._statement_or_block()
        return For(line=line, init=init, cond=cond, step=step, body=body,
                   annotation=pragma)

    def _statement_or_block(self):
        if self.tok.kind == "op" and self.tok.text == "{":
            return self._block()
        return self._statement()

    def _simple_stmt(self, expect_semi):
        """Assignment, ++/--, or bare expression."""
        line = self.tok.line
        expr = self._expr()
        tok = self.tok
        if tok.kind == "op" and tok.text == "=":
            self.advance()
            value = self._expr()
            stmt = Assign(line=line, target=expr, value=value)
        elif tok.kind == "op" and tok.text in _COMPOUND_OPS:
            op = _COMPOUND_OPS[self.advance().text]
            value = self._expr()
            stmt = Assign(line=line, target=expr,
                          value=Binary(line=line, op=op,
                                       left=copy.deepcopy(expr),
                                       right=value))
        elif tok.kind == "op" and tok.text in ("++", "--"):
            op = "+" if self.advance().text == "++" else "-"
            stmt = Assign(line=line, target=expr,
                          value=Binary(line=line, op=op,
                                       left=copy.deepcopy(expr),
                                       right=IntLit(line=line, value=1)))
        else:
            stmt = ExprStmt(line=line, expr=expr)
        if expect_semi:
            self.expect("op", ";")
        return stmt

    # -- expressions -------------------------------------------------------------

    def _expr(self, min_prec=1):
        left = self._unary()
        while True:
            tok = self.tok
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._expr(prec + 1)
            left = Binary(line=tok.line, op=tok.text, left=left,
                          right=right)

    def _unary(self):
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self.advance()
            return Unary(line=tok.line, op=tok.text,
                         operand=self._unary())
        if tok.kind == "op" and tok.text == "&":
            self.advance()
            return AddrOf(line=tok.line, operand=self._unary())
        if tok.kind == "op" and tok.text == "(":
            # cast or parenthesized expression
            save = self.pos
            self.advance()
            ty = self._try_type()
            if ty is not None and self.accept("op", ")"):
                return Cast(line=tok.line, target=ty,
                            operand=self._unary())
            self.pos = save
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            if self.accept("op", "["):
                sub = self._expr()
                self.expect("op", "]")
                expr = Index(line=expr.line, base=expr, subscript=sub)
            else:
                return expr

    def _primary(self):
        tok = self.tok
        if tok.kind == "int" or tok.kind == "char":
            self.advance()
            return IntLit(line=tok.line, value=tok.value)
        if tok.kind == "float":
            self.advance()
            return FloatLit(line=tok.line, value=tok.value)
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return Call(line=tok.line, name=tok.text, args=args)
            return Var(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self._expr()
            self.expect("op", ")")
            return expr
        self._error("expected expression, got %r" % tok.text)


def parse(source):
    """Parse MiniC *source* into a :class:`Unit`."""
    return Parser(source).parse_unit()
