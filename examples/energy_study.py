"""Domain scenario: energy budgeting for a battery-powered device.

A designer must pick between a simple in-order core, an aggressive
out-of-order core, and an in-order core with an LPSU for a mixed loop
workload, under both a performance floor and an energy budget. This
walks the paper's Fig 8 argument on a concrete kernel mix and prints
where each platform's dynamic energy goes.

Run:  python examples/energy_study.py
"""

from repro.energy import MCPAT_45NM, energy_breakdown
from repro.eval import render_table
from repro.eval.runner import baseline_run, run

MIX = ("rgb2cmyk-uc", "sha-or", "bfs-uc-db")

PLATFORMS = (
    ("io", "traditional"),
    ("ooo/4", "traditional"),
    ("io+x", "specialized"),
    ("io+x", "adaptive"),
)


def main():
    rows = []
    details = {}
    for config, mode in PLATFORMS:
        total_cycles = total_energy = 0.0
        ref_cycles = ref_energy = 0.0
        merged = {}
        for kernel in MIX:
            base = baseline_run(kernel, "io", scale="small")
            r = run(kernel, config, mode=mode, scale="small")
            total_cycles += r.cycles
            total_energy += r.energy_nj
            ref_cycles += base.cycles
            ref_energy += base.energy_nj
            width = 4 if config.startswith("ooo/4") else 0
            for part, nj in energy_breakdown(r.events, MCPAT_45NM,
                                             ooo_width=width).items():
                merged[part] = merged.get(part, 0.0) + nj
        label = "%s (%s)" % (config, mode[0].upper())
        rows.append([label,
                     "%.2f" % (ref_cycles / total_cycles),
                     "%.1f" % total_energy,
                     "%.2f" % (ref_energy / total_energy)])
        details[label] = merged

    print(render_table(
        ["Platform", "Speedup vs io", "Energy (nJ)", "Energy eff"],
        rows,
        title="Mixed workload (%s): performance vs dynamic energy"
              % ", ".join(MIX)))

    print("\nWhere the energy goes (top contributors):")
    for label, merged in details.items():
        top = sorted(merged.items(), key=lambda kv: -kv[1])[:4]
        total = sum(merged.values())
        parts = ", ".join("%s %.0f%%" % (k, 100 * v / total)
                          for k, v in top)
        print("  %-22s %s" % (label, parts))

    print("\nReading the table: the OOO core buys speed with per-"
          "instruction bookkeeping energy; the LPSU buys more speed on "
          "loop code while *saving* energy (instruction-buffer fetches "
          "replace I-cache fetches); adaptive trades a little of each "
          "for robustness on loop-hostile kernels.")


if __name__ == "__main__":
    main()
