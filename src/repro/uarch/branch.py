"""Bimodal branch predictor shared by the GPP timing models."""

from __future__ import annotations


class BimodalPredictor:
    """2-bit saturating-counter bimodal predictor with an ideal BTB.

    Mispredict *direction* only — targets are assumed BTB hits, which
    is reasonable for the small loopy kernels the paper evaluates.
    """

    __slots__ = ("mask", "table", "lookups", "mispredicts")

    def __init__(self, entries=1024):
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self.mask = entries - 1
        self.table = bytearray([1] * entries)   # weakly not-taken
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc, taken):
        """Predict branch at *pc*; train; return True on mispredict."""
        idx = (pc >> 2) & self.mask
        counter = self.table[idx]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                self.table[idx] = counter + 1
        else:
            if counter > 0:
                self.table[idx] = counter - 1
        self.lookups += 1
        wrong = predicted != taken
        if wrong:
            self.mispredicts += 1
        return wrong

    @property
    def accuracy(self):
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class GSharePredictor:
    """Gshare: global-history XOR PC indexing into 2-bit counters.

    Captures correlated branches (alternating or pattern-driven
    directions) that defeat a bimodal table; the predictor ablation in
    ``tests/uarch/test_branch_cache.py`` shows the difference.
    """

    __slots__ = ("mask", "table", "history", "hist_bits", "lookups",
                 "mispredicts")

    def __init__(self, entries=1024, history_bits=8):
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self.mask = entries - 1
        self.table = bytearray([1] * entries)
        self.history = 0
        self.hist_bits = history_bits
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc, taken):
        idx = ((pc >> 2) ^ self.history) & self.mask
        counter = self.table[idx]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                self.table[idx] = counter + 1
        else:
            if counter > 0:
                self.table[idx] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) \
            & ((1 << self.hist_bits) - 1)
        self.lookups += 1
        wrong = predicted != taken
        if wrong:
            self.mispredicts += 1
        return wrong

    @property
    def accuracy(self):
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


def make_predictor(kind, entries=1024):
    """Factory used by the GPP timing models."""
    if kind == "bimodal":
        return BimodalPredictor(entries)
    if kind == "gshare":
        return GSharePredictor(entries)
    raise ValueError("unknown predictor kind %r" % kind)
