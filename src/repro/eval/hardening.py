"""Hardened point execution: watchdogs, retry, quarantine, resume.

The sweep executor hands its pending points to this module.  Each
point runs in its own forked worker process (one process per point,
bounded concurrency), which buys three properties a shared pool cannot
provide:

* a *hung* worker can be killed without poisoning siblings (a Pool
  worker stuck in C code would wedge ``imap_unordered`` forever),
* a *crashed* worker (hard exit, OOM kill, corrupted interpreter) is
  detected from its exit code instead of deadlocking the parent, and
* a failure is attributable to exactly one point.

Failures are retried with exponential backoff up to a bounded attempt
count; the final attempt runs with the simulator fast path disabled
(the most likely software cause of a crash is the fast path itself).
A point that exhausts its attempts is *quarantined*: the sweep
completes without it and the summary carries a structured
:class:`PointFailure` record instead of the whole run aborting.

When worker processes cannot be created at all the engine degrades to
serial in-process execution (recorded as an incident), which is also
the ``jobs <= 1`` path.  Long sweeps can checkpoint completed points
to disk (:class:`SweepCheckpoint`) and resume after an interruption.

Deterministic failure injection for tests and drills: set
``$REPRO_CHAOS`` to a JSON object mapping a point-label substring to
the attempts to sabotage, e.g.::

    {"sgemm-uc/io/": {"crash": [0]}, "dither-or": {"hang": [0, 1]}}

Chaos is consulted *only inside worker children* (never in the parent
or the serial path), so it exercises exactly the crash/hang recovery
machinery.

The distributed serve tier (:mod:`repro.serve.worker`) reads the same
plan for three additional modes keyed by the *server-assigned requeue
attempt* rather than the in-process retry attempt: ``kill_worker``
(the worker process dies before touching the point), ``hang_worker``
(the worker wedges -- heartbeats stop, the lease expires) and
``sever`` (the worker's socket is cut mid-frame).  All three strike
*before* the point simulates, so the requeued attempt is the first
and only simulation -- the accounting invariant the chaos acceptance
test pins down.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass

from ..resilience.watchdog import DeadlineExceeded, deadline
from . import runner

#: env var holding the JSON chaos plan (worker-side fault injection)
CHAOS_ENV = "REPRO_CHAOS"

#: exit code a chaos-crashed worker dies with
CHAOS_EXIT = 13


@dataclass
class HardeningPolicy:
    """Knobs for the hardened engine (defaults are production-safe)."""

    timeout: float = 0.0      # per-point wall-clock bound, 0 = none
    retries: int = 3          # max attempts per point
    backoff: float = 0.25     # base backoff (doubles per attempt)
    checkpoint: str = ""      # checkpoint file path, "" = disabled
    degrade_fast: bool = True  # final attempt disables the fast path


@dataclass
class RetryEvent:
    """One failed attempt that will be retried."""

    label: str
    attempt: int     # the attempt that failed (0-based)
    kind: str        # "crash" | "hang" | "error"
    error: str
    backoff: float   # seconds until the next attempt is eligible


@dataclass
class PointFailure:
    """A quarantined point: every attempt failed."""

    label: str
    attempts: int
    kind: str        # classification of the *last* failure
    error: str


# ---------------------------------------------------------------------------
# chaos (worker-side deterministic failure injection)
# ---------------------------------------------------------------------------


def chaos_plan():
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return {}
    try:
        plan = json.loads(raw)
    except ValueError:
        return {}
    return plan if isinstance(plan, dict) else {}


def chaos_modes(label):
    """Every chaos mode whose pattern matches *label*, merged into one
    ``{mode: [attempts]}`` map -- the shared lookup for the in-process
    ladder here and the distributed worker's fault injection."""
    merged = {}
    for pattern, modes in chaos_plan().items():
        if pattern in label and isinstance(modes, dict):
            for mode, attempts in modes.items():
                merged.setdefault(mode, []).extend(attempts or ())
    return merged


def _apply_chaos(label, attempt):
    """Sabotage this attempt if the plan says so.  Only ever acts
    inside a worker child: the parent and the serial path must stay
    healthy so recovery itself can be tested."""
    import multiprocessing
    if multiprocessing.parent_process() is None:
        return
    modes = chaos_modes(label)
    if attempt in modes.get("crash", ()):
        os._exit(CHAOS_EXIT)
    if attempt in modes.get("hang", ()):
        time.sleep(3600)


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------


class SweepCheckpoint:
    """Atomic on-disk record of a sweep in progress.

    Maps point memo-keys to finished results (and quarantined points
    to their failure records) so an interrupted sweep resumes where it
    stopped.  Written with the same write-to-temp-then-rename
    discipline as the disk cache; a truncated or corrupt checkpoint is
    treated as absent, never as an error.
    """

    def __init__(self, path):
        self.path = str(path)
        self.completed = {}   # memo_key -> (result, wall)
        self.failed = {}      # memo_key -> PointFailure
        self._load()

    def _load(self):
        try:
            with open(self.path, "rb") as fh:
                state = pickle.load(fh)
            self.completed = dict(state.get("completed", {}))
            self.failed = dict(state.get("failed", {}))
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ValueError, KeyError):
            self.completed = {}
            self.failed = {}

    def save(self):
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump({"completed": self.completed,
                             "failed": self.failed}, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path)
        except OSError:  # checkpointing must never fail the sweep
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def record_result(self, key, result, wall):
        self.completed[key] = (result, wall)
        self.save()

    def record_failure(self, key, failure):
        self.failed[key] = failure
        self.save()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _child_main(conn, point, attempt, fast):
    """Worker entry: run one point, ship the outcome up the pipe."""
    try:
        _apply_chaos(point.label(), attempt)
        t0 = time.perf_counter()
        before = runner.simulations
        result = runner.run(point.kernel, point.config, fast=fast,
                            **point.run_kwargs())
        wall = time.perf_counter() - t0
        conn.send(("ok", result, wall, runner.simulations > before,
                   runner.drain_incidents()))
    except BaseException as exc:  # noqa: BLE001 - full report, then die
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
        conn.close()
        os._exit(1)
    conn.close()


def _mp_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context("spawn")


class _Task:
    __slots__ = ("point", "attempt", "fast", "proc", "conn", "kill_at")

    def __init__(self, point, attempt, fast, proc, conn, kill_at):
        self.point = point
        self.attempt = attempt
        self.fast = fast
        self.proc = proc
        self.conn = conn
        self.kill_at = kill_at


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


@dataclass
class OneOutcome:
    """What hardened execution of a single point produced."""

    result: object           # KernelRun, or None when quarantined
    failure: object          # PointFailure, or None on success
    wall: float              # last attempt's wall time (seconds)
    simulated: bool          # False -> a cache served it after all
    retries: int = 0         # failed attempts that were retried


def execute_one(point, policy):
    """Run one point under the full hardened ladder -- its own forked
    worker, wall-clock watchdog, retry with backoff, quarantine on
    exhaustion -- and return a :class:`OneOutcome`.

    This is the sweep server's executor: each cache miss goes through
    exactly the isolation a parallel sweep gives it, one point at a
    time (the server bounds concurrency itself).  The finished result
    is seeded into the runner memo, so subsequent submissions of the
    same point are cache-served.  Never raises: an engine-level
    surprise becomes a quarantine record like any other failure."""
    from .parallel import SweepSummary
    summary = SweepSummary(jobs=1)
    try:
        _run_parallel([point], 1, policy, summary, None)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 - report, don't kill the server
        return OneOutcome(None, PointFailure(
            point.label(), 0, "error",
            "engine: %s: %s" % (type(exc).__name__, exc)),
            0.0, False, len(summary.retries))
    if summary.failures:
        return OneOutcome(None, summary.failures[0], 0.0, False,
                          len(summary.retries))
    if not summary.outcomes:   # pragma: no cover - engine invariant
        return OneOutcome(None, PointFailure(
            point.label(), 0, "error", "engine produced no outcome"),
            0.0, False, len(summary.retries))
    out = summary.outcomes[0]
    result = runner._RESULTS.get(point.memo_key())
    return OneOutcome(result, None, out.wall_time, out.simulated,
                      len(summary.retries))


def execute_points(points, jobs, policy, summary):
    """Run *points* under *policy*, appending outcomes, retries,
    failures and incidents to *summary* and seeding the runner memo
    with every finished result."""
    from .parallel import PointOutcome

    ckpt = SweepCheckpoint(policy.checkpoint) if policy.checkpoint \
        else None
    pending = []
    for pt in points:
        key = pt.memo_key()
        if ckpt is not None and key in ckpt.completed:
            result, wall = ckpt.completed[key]
            runner.seed_result(key, result)
            summary.outcomes.append(PointOutcome(pt, wall, False))
        elif ckpt is not None and key in ckpt.failed:
            summary.failures.append(ckpt.failed[key])
        else:
            pending.append(pt)

    if jobs <= 1 or len(pending) <= 1:
        _run_serial(pending, policy, summary, ckpt)
    else:
        _run_parallel(pending, jobs, policy, summary, ckpt)
    summary.incidents.extend(runner.drain_incidents())


def _attempt_fast(policy, attempt):
    """The fast-path setting for this attempt number: the final retry
    drops to the interpreted slow path."""
    if policy.degrade_fast and policy.retries > 1 \
            and attempt == policy.retries - 1:
        return False
    return None   # defer to runner.default_fast()


def _run_serial(points, policy, summary, ckpt):
    """In-process execution with the same retry/quarantine ladder.
    The wall-clock bound uses the SIGALRM watchdog where available
    (there is no process to kill)."""
    from .parallel import PointOutcome

    for pt in points:
        key, label = pt.memo_key(), pt.label()
        for attempt in range(policy.retries):
            try:
                t0 = time.perf_counter()
                before = runner.simulations
                with deadline(policy.timeout):
                    result = runner.run(
                        pt.kernel, pt.config,
                        fast=_attempt_fast(policy, attempt),
                        **pt.run_kwargs())
                wall = time.perf_counter() - t0
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001
                kind = "hang" if isinstance(exc, DeadlineExceeded) \
                    else "error"
                error = "%s: %s" % (type(exc).__name__, exc)
                if attempt + 1 < policy.retries:
                    delay = policy.backoff * (2 ** attempt)
                    summary.retries.append(
                        RetryEvent(label, attempt, kind, error, delay))
                    time.sleep(delay)
                    continue
                failure = PointFailure(label, attempt + 1, kind, error)
                summary.failures.append(failure)
                if ckpt is not None:
                    ckpt.record_failure(key, failure)
                break
            else:
                runner.seed_result(key, result)
                summary.outcomes.append(PointOutcome(
                    pt, wall, runner.simulations > before))
                if ckpt is not None:
                    ckpt.record_result(key, result, wall)
                break


def _run_parallel(points, jobs, policy, summary, ckpt):
    from .parallel import PointOutcome

    ctx = _mp_context()
    #: (point, attempt, not_before) - a retry waits out its backoff
    queue = deque((pt, 0, 0.0) for pt in points)
    running = []

    def fail(point, attempt, kind, error):
        label = point.label()
        if attempt + 1 < policy.retries:
            delay = policy.backoff * (2 ** attempt)
            summary.retries.append(
                RetryEvent(label, attempt, kind, error, delay))
            queue.append((point, attempt + 1,
                          time.monotonic() + delay))
        else:
            failure = PointFailure(label, attempt + 1, kind, error)
            summary.failures.append(failure)
            if ckpt is not None:
                ckpt.record_failure(point.memo_key(), failure)

    def finish(task, result, wall, simulated, incidents):
        runner.seed_result(task.point.memo_key(), result)
        summary.outcomes.append(
            PointOutcome(task.point, wall, simulated))
        summary.incidents.extend(incidents)
        if ckpt is not None:
            ckpt.record_result(task.point.memo_key(), result, wall)

    def reap(task):
        try:
            task.conn.close()
        except OSError:
            pass
        task.proc.join(timeout=2)

    while queue or running:
        # spawn up to the concurrency bound (skipping entries still
        # waiting out their backoff)
        now = time.monotonic()
        spawned = True
        while queue and len(running) < jobs and spawned:
            spawned = False
            for _ in range(len(queue)):
                pt, attempt, not_before = queue.popleft()
                if now < not_before:
                    queue.append((pt, attempt, not_before))
                    continue
                parent_conn = child_conn = None
                try:
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_child_main,
                        args=(child_conn, pt, attempt,
                              _attempt_fast(policy, attempt)))
                    proc.start()
                except OSError as exc:
                    for conn in (parent_conn, child_conn):
                        if conn is not None:
                            try:
                                conn.close()
                            except OSError:
                                pass
                    # cannot create workers at all: degrade the whole
                    # sweep to serial in-process execution
                    summary.degraded = True
                    summary.incidents.append(runner.Incident(
                        kind="parallel-to-serial", context=pt.label(),
                        detail="worker spawn failed: %s" % exc))
                    queue.appendleft((pt, attempt, 0.0))
                    _drain_parallel(running, policy, summary, ckpt,
                                    fail, finish, reap)
                    running = []
                    _run_serial([q[0] for q in queue], policy,
                                summary, ckpt)
                    return
                child_conn.close()
                kill_at = (time.monotonic() + policy.timeout
                           if policy.timeout else 0.0)
                running.append(_Task(pt, attempt,
                                     _attempt_fast(policy, attempt),
                                     proc, parent_conn, kill_at))
                spawned = True
                break

        progressed = _poll_once(running, policy, fail, finish, reap)
        if not progressed:
            time.sleep(0.005)


def _poll_once(running, policy, fail, finish, reap):
    """One scheduler pass over the live workers; prunes *running* in
    place and reports whether anything completed."""
    progressed = False
    now = time.monotonic()
    for task in list(running):
        msg = None
        try:
            if task.conn.poll(0):
                msg = task.conn.recv()
        except (EOFError, OSError):
            msg = None
        if msg is None and not task.proc.is_alive():
            # the child exited; give an in-flight message one last
            # chance to arrive before calling it a crash
            try:
                if task.conn.poll(0.2):
                    msg = task.conn.recv()
            except (EOFError, OSError):
                msg = None
        if msg is not None:
            running.remove(task)
            reap(task)
            if msg[0] == "ok":
                finish(task, *msg[1:])
            else:
                fail(task.point, task.attempt, "error", msg[1])
            progressed = True
        elif not task.proc.is_alive():
            running.remove(task)
            reap(task)
            fail(task.point, task.attempt, "crash",
                 "worker exited with code %s" % task.proc.exitcode)
            progressed = True
        elif task.kill_at and now > task.kill_at:
            task.proc.terminate()
            task.proc.join(timeout=2)
            if task.proc.is_alive():  # pragma: no cover - stubborn child
                task.proc.kill()
                task.proc.join(timeout=2)
            running.remove(task)
            try:
                task.conn.close()
            except OSError:
                pass
            fail(task.point, task.attempt, "hang",
                 "killed after %.3gs wall-clock" % policy.timeout)
            progressed = True
    return progressed


def _drain_parallel(running, policy, summary, ckpt, fail, finish, reap):
    """Wait out (or time out) workers already in flight before a
    degradation to serial execution."""
    while running:
        if not _poll_once(running, policy, fail, finish, reap):
            time.sleep(0.005)
