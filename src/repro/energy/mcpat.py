"""McPAT-style per-event energy pricing (Section IV-A).

The paper estimates energy with McPAT 1.0 at 45 nm, modelling the LPSU
lanes as properly-sized simple in-order cores, adding a 5% overhead for
the LMU/index-queues/arbiters (calibrated against their VLSI
implementation), pricing ``xi`` instructions conservatively as 32-bit
multiplies, pricing CIR communication as extra register-file events,
and pricing the per-lane LSQs as out-of-order LSQs.  We reproduce that
accounting with a per-event table in picojoules.

A second table (:data:`VLSI_40NM`) is calibrated to the paper's ASIC
results for Fig 10, whose headline observation is that an LPSU
instruction-buffer access costs ~10x less than an instruction-cache
access.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from .events import EnergyEvents


@dataclass(frozen=True)
class EnergyTable:
    """Energy per event, in picojoules."""

    name: str = "mcpat-45nm"
    ic_access: float = 32.0
    ib_write: float = 4.0
    ib_read: float = 3.2          # ~10x cheaper than ic_access
    rename: float = 2.0
    bpred: float = 2.0
    rf_read: float = 1.0
    rf_write: float = 1.6
    alu_op: float = 3.0
    mul_op: float = 12.0
    div_op: float = 20.0
    fpu_op: float = 10.0
    fdiv_op: float = 22.0
    miv_mul: float = 12.0         # conservatively a full 32-bit multiply
    dc_access: float = 24.0
    dc_miss: float = 120.0        # line fill from L2
    lsq_search: float = 6.0       # OOO-LSQ-class associative search
    lsq_write: float = 3.0
    cib_read: float = 1.6         # extra RF-read-equivalent + wires
    cib_write: float = 1.6
    rob_op: float = 6.0
    iq_op: float = 8.0
    ooo_rename: float = 6.0
    idq_op: float = 1.0
    squashed_instr: float = 0.0   # squashed work already counted by its
    #                               constituent events

    #: events attributed to the LPSU, inflated by the LMU overhead
    LPSU_EVENTS = ("ib_write", "ib_read", "rename", "miv_mul",
                   "cib_read", "cib_write", "idq_op", "lsq_search",
                   "lsq_write")
    #: events whose per-access cost grows with OOO issue width
    WIDTH_SCALED = ("rob_op", "iq_op", "ooo_rename")

    def price(self, event_name):
        return getattr(self, event_name)


MCPAT_45NM = EnergyTable()

#: Fig 10 table: our ASIC flow found the IB ~10x cheaper than the I$
#: and overall LPSU energy savings of 1.6-2.1x, i.e. the McPAT numbers
#: are "relatively conservative" (Section V-C) -> cheaper LPSU events.
VLSI_40NM = EnergyTable(
    name="vlsi-40nm",
    ic_access=40.0, ib_read=4.0, ib_write=4.5,
    rf_read=0.9, rf_write=1.4, alu_op=2.6,
    dc_access=26.0, lsq_search=5.0, lsq_write=2.6,
    cib_read=1.2, cib_write=1.2, miv_mul=10.0, idq_op=0.8)

#: LMU + index queues + arbiters overhead (Section IV-A: "an
#: additional energy overhead of 5% ... based on ... our detailed VLSI
#: implementation")
LMU_OVERHEAD = 0.05


def energy_breakdown(events, table=MCPAT_45NM, ooo_width=0):
    """Per-event-type energy in nanojoules.

    *ooo_width* > 0 scales the OOO bookkeeping events (bigger
    ROB/IQ/rename structures cost more per access)."""
    out = {}
    scale = max(1.0, ooo_width / 2.0)
    for f in fields(EnergyEvents):
        count = getattr(events, f.name)
        if not count:
            continue
        pj = table.price(f.name) * count
        if f.name in EnergyTable.WIDTH_SCALED:
            pj *= scale
        out[f.name] = pj / 1000.0
    lpsu_pj = sum(out.get(name, 0.0) for name in EnergyTable.LPSU_EVENTS)
    if lpsu_pj:
        out["lmu_overhead"] = lpsu_pj * LMU_OVERHEAD
    return out


def energy_nj(events, table=MCPAT_45NM, ooo_width=0):
    """Total dynamic energy in nanojoules."""
    return sum(energy_breakdown(events, table, ooo_width).values())


def system_energy(result, config, table=MCPAT_45NM):
    """Dynamic energy (nJ) of a :class:`~repro.uarch.system.RunResult`
    executed on *config* (a :class:`~repro.uarch.params.SystemConfig`
    or :class:`~repro.uarch.params.GPPConfig`)."""
    gpp = getattr(config, "gpp", config)
    width = gpp.width if gpp.is_ooo else 0
    return energy_nj(result.events, table, ooo_width=width)
