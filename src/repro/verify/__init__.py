"""Runtime invariant checking and differential conformance.

Three entry points, all built on the same machinery:

* ``simulate(..., verify=True)`` / ``SystemSimulator(..., verify=True)``
  attach an :class:`InvariantMonitor` to every specialized xloop
  invocation, raising :class:`InvariantViolation` (cycle- and
  lane-stamped) on the first breach without perturbing timing or
  energy;
* the ``repro verify`` CLI subcommand runs the
  :mod:`~repro.verify.conformance` traditional-vs-specialized sweep
  over registered kernels and generated loops (``--fast-slow``
  instead checks the simulator fast path bit-identical to the slow
  path at every design point); and
* the ``tests/verify`` suite, which shares the random loop generators
  in :mod:`~repro.verify.genloops` with the hypothesis fuzz tests.
"""

from .conformance import (ConformanceResult, check_case,
                          check_counterexample, check_fast_slow,
                          check_kernel, check_ladder, run_conformance,
                          run_fast_slow, run_ladder)
from .genloops import (LPSU_SWEEP, GenCase, RandomChooser,
                       case_from_counterexample, random_cases)
from .invariants import InvariantMonitor, InvariantViolation
from .oracle import OracleError, SerialOracle

__all__ = [
    "ConformanceResult", "check_case", "check_counterexample",
    "check_fast_slow", "check_kernel", "check_ladder",
    "run_conformance", "run_fast_slow", "run_ladder", "LPSU_SWEEP",
    "GenCase", "RandomChooser", "case_from_counterexample",
    "random_cases", "InvariantMonitor", "InvariantViolation",
    "OracleError", "SerialOracle",
]
