"""The sweep server: an asyncio result service over the shared cache.

``repro serve`` runs one :class:`SweepServer` per host.  Many clients
connect (unix socket or TCP) and submit sweep point batches; the
server answers each point from the cheapest tier that has it and
streams results back as they complete:

1. **cache** -- the in-process memo, the decoded-record hot tier, or
   the sharded disk store (:func:`repro.eval.runner.cached_result`);
   nothing is simulated.  This is the production path: the cache *is*
   the product, and a warm sweep is served entirely from here.
2. **inflight** -- some other client (or an earlier point of the same
   submission) is already simulating this exact point; the request
   joins that computation's future instead of forking a duplicate.
   One simulation fans out to every waiter.
3. **sim** -- a true miss.  The point is scheduled on a bounded
   worker pool; each slot runs :func:`repro.eval.hardening.execute_one`
   -- the same process-per-point isolation, wall-clock watchdog,
   retry-with-backoff, and quarantine ladder a parallel sweep gets.
   A quarantined point becomes a structured failure frame for every
   waiter; it never stalls other points or other clients.

With ``--distributed`` the third tier changes: misses are *enqueued*
on a durable :class:`~repro.serve.queue.WorkQueue` instead of
simulated locally, and ``repro worker`` processes pull leased batches
over the same frame protocol (ops ``register``/``lease``/
``heartbeat``/``complete``/``fail``), simulate through the identical
hardened engine, and stream records back.  The queue's lease
bookkeeping makes the tier fault-tolerant -- missed heartbeats and
dropped worker connections requeue points, completion is idempotent
with first-writer-wins, an optional fsync'd journal survives server
restarts -- while client-facing behaviour is unchanged: a waiter's
future resolves when *some* worker completes the point, and the
result lands in the same memo + disk cache tiers.

Results cross the wire as pickled records (see
:mod:`repro.serve.protocol`), so a server-routed sweep is bit-identical
to a direct ``runner.run`` -- the conformance tests assert it.

Concurrency model: the asyncio loop owns all bookkeeping (in-flight
table, counters, frame writes); simulations run on a thread pool whose
threads merely block on the hardened engine's worker pipes, so the GIL
is never contended by simulation work -- the simulating processes are
forked children.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from .. import __version__
from ..eval import diskcache, runner
from ..eval.hardening import HardeningPolicy, execute_one
from . import protocol
from .queue import (DEFAULT_LEASE_TTL, DEFAULT_REQUEUE_BUDGET,
                    WorkQueue)

#: seconds a graceful drain waits for leases + queue to empty
DEFAULT_DRAIN_TIMEOUT = 30.0


class SweepServer:
    """One result-serving process; see the module docstring.

    Parameters mirror the sweep executor's hardening knobs: *jobs*
    bounds concurrent simulations, *timeout*/*retries*/*backoff* are
    per-point, *idle_exit* stops the server after that many seconds
    with no client activity, nothing in flight, and -- the distributed
    extension of "idle" -- no connected workers, no unexpired leases
    and an empty queue (0 = run forever).

    *distributed* switches the miss tier from local simulation to the
    durable work queue (*journal* optionally persists it across
    restarts; *lease_ttl*/*requeue_budget* are its robustness knobs;
    *drain_timeout* bounds the graceful ``shutdown`` wait).
    """

    def __init__(self, jobs=None, timeout=0.0, retries=3, backoff=0.25,
                 idle_exit=0.0, distributed=False, journal=None,
                 lease_ttl=DEFAULT_LEASE_TTL,
                 requeue_budget=DEFAULT_REQUEUE_BUDGET,
                 drain_timeout=DEFAULT_DRAIN_TIMEOUT):
        self.jobs = max(1, int(jobs) if jobs else (os.cpu_count() or 2))
        self.policy = HardeningPolicy(
            timeout=float(timeout or 0.0), retries=max(1, int(retries)),
            backoff=max(0.0, float(backoff)))
        self.idle_exit = float(idle_exit or 0.0)
        self.drain_timeout = max(0.1, float(drain_timeout))
        self.counters = {
            "connections": 0, "submissions": 0, "points": 0,
            "served_cache": 0, "served_inflight": 0, "simulated": 0,
            "failed": 0, "retried": 0}
        #: the distributed work queue, or None in local mode
        self.queue = WorkQueue(journal_path=journal,
                               lease_ttl=lease_ttl,
                               requeue_budget=requeue_budget) \
            if distributed else None
        #: memo-key -> asyncio.Task computing that point right now
        self._inflight = {}
        self._sem = None
        self._pool = None
        self._stop_event = None
        self._active_connections = 0
        self._last_activity = 0.0
        self._draining = False
        #: "host:port" or the unix socket path, set once listening
        self.bound = None

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self):
        """Ask the serve loop to wind down (threadsafe only via
        ``loop.call_soon_threadsafe``)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve(self, path=None, host=None, port=None, ready=None,
                    announce=None):
        """Listen and serve until a ``shutdown`` op or idle-exit.

        *path* selects a unix socket; otherwise *host*/*port* TCP
        (port 0 picks a free port -- :attr:`bound` reports it).
        *ready*, when given, is a :class:`threading.Event` set once
        listening; *announce* a callable handed one human line.
        """
        loop = asyncio.get_running_loop()
        self._sem = asyncio.Semaphore(self.jobs)
        self._stop_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve")
        self._last_activity = loop.time()
        if path:
            if os.path.exists(path):
                os.unlink(path)   # stale socket from a dead server
            server = await asyncio.start_unix_server(
                self._handle_connection, path=path)
            self.bound = path
        else:
            server = await asyncio.start_server(
                self._handle_connection, host or "127.0.0.1",
                protocol.DEFAULT_PORT if port is None else port)
            sock = server.sockets[0].getsockname()
            self.bound = "%s:%d" % (sock[0], sock[1])
        if announce:
            announce("serving on %s (jobs=%d, cache=%s%s)"
                     % (self.bound, self.jobs,
                        diskcache.cache_dir()
                        if diskcache.enabled() else "disabled",
                        ", distributed" if self.queue is not None
                        else ""))
        if ready is not None:
            ready.set()
        watchdog = (asyncio.ensure_future(self._idle_watchdog())
                    if self.idle_exit else None)
        reclaimer = (asyncio.ensure_future(self._reclaim_loop())
                     if self.queue is not None else None)
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            for task in (watchdog, reclaimer):
                if task is not None:
                    task.cancel()
            if self.queue is not None:
                self.queue.close()
            self._pool.shutdown(wait=False)
            if path and os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    async def _idle_watchdog(self):
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(min(self.idle_exit, 5.0))
            idle = loop.time() - self._last_activity
            # "idle" must include the distributed tier: an idle-exit
            # server may not vanish beneath a connected worker, an
            # unexpired lease, or journal-replayed pending work
            if (idle >= self.idle_exit and not self._inflight
                    and self._active_connections == 0
                    and (self.queue is None or self.queue.idle)):
                self._stop_event.set()
                return

    async def _reclaim_loop(self):
        """Requeue points whose lease missed its heartbeat deadline
        (hung or partitioned workers), failing the ones that exhausted
        their requeue budget."""
        interval = min(max(self.queue.lease_ttl / 4.0, 0.02), 2.0)
        while True:
            await asyncio.sleep(interval)
            self._fail_entries(self.queue.reclaim_expired())

    def _fail_entries(self, entries):
        """Resolve the waiters of freshly-quarantined queue entries."""
        for entry in entries:
            self.counters["failed"] += 1
            if entry.future is not None and not entry.future.done():
                entry.future.set_result(
                    (None, entry.failure, 0.0, False))

    def _touch(self):
        self._last_activity = asyncio.get_running_loop().time()

    # -- per-connection ----------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self.counters["connections"] += 1
        self._active_connections += 1
        self._touch()
        write_lock = asyncio.Lock()
        workers_here = set()    # worker ids registered over this socket
        try:
            while True:
                try:
                    msg = await protocol.read_frame(reader)
                except protocol.ProtocolError:
                    break       # a garbled client gets hung up on
                if msg is None:
                    break
                self._touch()
                op = msg.get("op")
                if op == "ping":
                    await protocol.write_frame(writer, {
                        "ok": True, "version": __version__,
                        "protocol": protocol.PROTOCOL_VERSION,
                        "distributed": self.queue is not None})
                elif op == "stats":
                    await protocol.write_frame(writer,
                                               self.stats_payload())
                elif op == "shutdown":
                    drained = await self._drain()
                    await protocol.write_frame(writer, {
                        "ok": True, "drained": drained})
                    self._stop_event.set()
                    break
                elif op == "submit":
                    await self._handle_submit(msg, writer, write_lock)
                elif op in ("register", "lease", "heartbeat",
                            "complete", "fail"):
                    await protocol.write_frame(
                        writer, self._worker_op(op, msg, workers_here))
                else:
                    await protocol.write_frame(writer, {
                        "error": "unknown op %r" % (op,)})
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass                # client went away; in-flight sims live on
        finally:
            self._active_connections -= 1
            if self.queue is not None:
                # a dropped worker connection requeues everything it
                # held -- immediately, not after the lease TTL
                for wid in workers_here:
                    self._fail_entries(self.queue.release_worker(wid))
            self._touch()
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass        # server tearing down under us is fine

    # -- worker ops (the distributed tier) ---------------------------------

    def _worker_op(self, op, msg, workers_here):
        """Handle one register/lease/heartbeat/complete/fail op; the
        reply frame.  Synchronous on the loop thread -- the queue is
        pure bookkeeping."""
        if self.queue is None:
            return {"error": "server is not running in --distributed "
                             "mode; no work queue to %s" % op}
        if op == "register":
            wid = self.queue.register_worker(
                name=msg.get("name", ""), pid=msg.get("pid", 0),
                jobs=msg.get("jobs", 1))
            workers_here.add(wid)
            return {"ok": True, "worker_id": wid,
                    "lease_ttl": self.queue.lease_ttl,
                    "protocol": protocol.PROTOCOL_VERSION}
        if op == "heartbeat":
            return {"ok": self.queue.heartbeat(
                int(msg.get("worker_id", 0)),
                int(msg.get("lease_id", 0)))}
        if op == "lease":
            wid = int(msg.get("worker_id", 0))
            if wid not in self.queue.workers:
                # a restarted server does not know the old ids; the
                # worker re-registers on this error and carries on
                return {"error": "unknown worker %d (re-register)"
                                 % wid}
            lease = self.queue.lease(wid, msg.get("max_points", 1))
            if lease is None:
                if self._draining:
                    return {"type": "drain"}
                return {"type": "empty"}
            return {"type": "lease", "lease_id": lease.lease_id,
                    "points": [
                        {"qkey": k,
                         "wire": self.queue.entries[k].wire,
                         "attempt": self.queue.entries[k].attempts}
                        for k in lease.qkeys
                        if k in self.queue.entries]}
        if op == "complete":
            return self._worker_complete(msg)
        # op == "fail": the worker's hardened ladder already retried;
        # quarantine, exactly as a local sweep would
        entry, failure = self.queue.fail(
            msg.get("qkey", ""), msg.get("kind", "error"),
            msg.get("error", ""), msg.get("attempts", 0))
        if entry is None:
            return {"ok": True, "credited": False}
        self.counters["failed"] += 1
        if entry.future is not None and not entry.future.done():
            entry.future.set_result((None, failure, 0.0, False))
        return {"ok": True, "credited": True}

    def _worker_complete(self, msg):
        """First-writer-wins completion of one leased point."""
        try:
            # trust model: the server unpickles records only from
            # worker completions -- workers are processes the operator
            # launched against this server, the same trust as the
            # client places in the server (protocol.py documents it)
            record = protocol.unpack_record(msg.get("record", ""))
        except Exception as exc:  # noqa: BLE001 - a bad record must not kill the server
            return {"error": "undecodable record: %s: %s"
                             % (type(exc).__name__, exc)}
        entry, credited = self.queue.complete(msg.get("qkey", ""))
        if not credited:
            # a late duplicate (lease expired, the point re-ran
            # elsewhere): discarded, counted, never double-credited
            return {"ok": True, "credited": False}
        wall = float(msg.get("wall", 0.0))
        simulated = bool(msg.get("simulated", False))
        self.counters["retried"] += int(msg.get("retries", 0))
        try:
            pt = protocol.point_from_wire(entry.wire)
            # make the record durable server-side (memo + disk cache)
            # before crediting it -- the worker may not share a cache
            runner.store_result(pt.kernel, pt.config, record,
                                **pt.run_kwargs())
        except Exception as exc:  # noqa: BLE001
            return {"error": "unstorable completion: %s: %s"
                             % (type(exc).__name__, exc)}
        if simulated:
            self.counters["simulated"] += 1
        else:
            self.counters["served_cache"] += 1
        if entry.future is not None and not entry.future.done():
            entry.future.set_result((record, None, wall, simulated))
        return {"ok": True, "credited": True}

    async def _drain(self):
        """Graceful wind-down: wait (bounded) for the queue and local
        in-flight work to empty while workers pull the remainder; then
        give polling workers a moment to receive their ``drain`` frame
        and disconnect.  True when everything completed."""
        if self.queue is None:
            return True
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while ((self.queue.entries or self._inflight)
               and loop.time() < deadline):
            await asyncio.sleep(0.05)
        drained = not self.queue.entries and not self._inflight
        grace = loop.time() + min(5.0, self.drain_timeout)
        while self.queue.workers and loop.time() < grace:
            await asyncio.sleep(0.05)
        return drained

    async def _handle_submit(self, msg, writer, write_lock):
        self.counters["submissions"] += 1
        raw = msg.get("points")
        if not isinstance(raw, list):
            await protocol.write_frame(writer, {
                "error": "submit without a points list"})
            return
        totals = {"points": 0, "simulated": 0, "failed": 0}

        async def one(i, data):
            frame = await self._point_frame(i, data)
            totals["points"] += 1
            totals["simulated"] += bool(frame.get("simulated"))
            totals["failed"] += frame["type"] == "failure"
            async with write_lock:
                await protocol.write_frame(writer, frame)

        self.counters["points"] += len(raw)
        await asyncio.gather(*(one(i, d) for i, d in enumerate(raw)))
        self._touch()
        async with write_lock:
            await protocol.write_frame(writer, {
                "type": "done", "jobs": self.jobs, **totals})

    async def _point_frame(self, i, data):
        """Resolve one wire point into its response frame."""
        try:
            pt = protocol.point_from_wire(data)
            source, record, failure, wall, simulated = \
                await self._resolve(pt)
            label = pt.label()
        except protocol.ProtocolError as exc:
            return {"type": "failure", "i": i, "label": repr(data),
                    "kind": "protocol", "error": str(exc),
                    "attempts": 0}
        except Exception as exc:  # noqa: BLE001 - a bad point must not kill the server
            self.counters["failed"] += 1
            return {"type": "failure", "i": i, "label": repr(data),
                    "kind": "error",
                    "error": "%s: %s" % (type(exc).__name__, exc),
                    "attempts": 0}
        if failure is not None:
            return {"type": "failure", "i": i, "label": label,
                    "kind": failure.kind, "error": failure.error,
                    "attempts": failure.attempts}
        return {"type": "result", "i": i, "label": label,
                "source": source, "simulated": bool(simulated),
                "wall": round(wall, 6),
                "record": protocol.pack_record(record)}

    # -- point resolution --------------------------------------------------

    async def _resolve(self, pt):
        """``(source, record, failure, wall, simulated)`` for one
        point: cache probe, then join an in-flight computation, then
        schedule a hardened simulation."""
        cached = runner.cached_result(pt.kernel, pt.config,
                                      **pt.run_kwargs())
        if cached is not None:
            self.counters["served_cache"] += 1
            return ("cache", cached, None, 0.0, False)
        if self.queue is not None:
            return await self._resolve_queued(pt)
        key = pt.memo_key()
        task = self._inflight.get(key)
        if task is not None:
            # global dedup: join the computation another waiter
            # started; shield() keeps it alive if *we* are cancelled
            # (our client hung up) -- the other waiters still want it
            record, failure, wall, _simulated = \
                await asyncio.shield(task)
            self.counters["served_inflight"] += 1
            return ("inflight", record, failure, wall, False)
        task = asyncio.ensure_future(self._compute(key, pt))
        self._inflight[key] = task
        record, failure, wall, simulated = await asyncio.shield(task)
        return ("sim" if simulated else "cache", record, failure,
                wall, simulated)

    async def _resolve_queued(self, pt):
        """Distributed miss tier: enqueue the point (joining any
        identical one already queued or leased) and await a worker's
        completion.  shield() for the same reason as the local tier:
        our client hanging up must not abandon other waiters."""
        entry, _created = self.queue.enqueue(protocol.point_to_wire(pt))
        first_waiter = entry.future is None
        if first_waiter:
            entry.future = asyncio.get_running_loop().create_future()
        record, failure, wall, simulated = \
            await asyncio.shield(entry.future)
        if not first_waiter:
            self.counters["served_inflight"] += 1
            return ("inflight", record, failure, wall, False)
        return ("sim" if simulated else "cache", record, failure,
                wall, simulated)

    async def _compute(self, key, pt):
        """Run one miss on the bounded hardened pool; exactly one of
        these exists per in-flight memo key."""
        loop = asyncio.get_running_loop()
        try:
            async with self._sem:
                outcome = await loop.run_in_executor(
                    self._pool, execute_one, pt, self.policy)
        finally:
            self._inflight.pop(key, None)
        self.counters["retried"] += outcome.retries
        if outcome.failure is not None:
            self.counters["failed"] += 1
        elif outcome.simulated:
            self.counters["simulated"] += 1
        else:
            # a sibling process (another server, a CLI sweep) filled
            # the shared disk cache while we queued
            self.counters["served_cache"] += 1
        return (outcome.result, outcome.failure, outcome.wall,
                outcome.simulated)

    # -- introspection -----------------------------------------------------

    def stats_payload(self):
        payload = {"ok": True, "version": __version__,
                   "protocol": protocol.PROTOCOL_VERSION,
                   "jobs": self.jobs, "inflight": len(self._inflight),
                   "distributed": self.queue is not None,
                   "counters": dict(self.counters),
                   "cache": {"process": dict(diskcache.stats),
                             "hot": diskcache.hot_stats(),
                             "disk": diskcache.disk_stats()}}
        if self.queue is not None:
            payload["queue"] = self.queue.stats_payload()
            payload["inflight"] = len(self.queue.entries)
        return payload


class ServerThread:
    """A :class:`SweepServer` on a background thread -- the harness
    tests, the speed bench, and interactive experiments drive a real
    client against a real socket without a second process.

    Prefers a unix socket under *socket_dir* (a fresh temp dir by
    default); hosts without ``AF_UNIX`` fall back to TCP on a free
    port.  Use as a context manager, or ``start()``/``stop()``.
    """

    def __init__(self, jobs=2, timeout=0.0, retries=3, backoff=0.25,
                 idle_exit=0.0, socket_dir=None, distributed=False,
                 journal=None, lease_ttl=DEFAULT_LEASE_TTL,
                 requeue_budget=DEFAULT_REQUEUE_BUDGET,
                 drain_timeout=DEFAULT_DRAIN_TIMEOUT):
        self.server = SweepServer(jobs=jobs, timeout=timeout,
                                  retries=retries, backoff=backoff,
                                  idle_exit=idle_exit,
                                  distributed=distributed,
                                  journal=journal, lease_ttl=lease_ttl,
                                  requeue_budget=requeue_budget,
                                  drain_timeout=drain_timeout)
        self._socket_dir = socket_dir
        self._owns_dir = None
        self._thread = None
        self._ready = threading.Event()
        self._loop = None

    @property
    def address(self):
        return self.server.bound

    def start(self):
        import socket as socket_mod
        path = None
        if hasattr(socket_mod, "AF_UNIX"):
            if self._socket_dir is None:
                import tempfile
                self._owns_dir = tempfile.mkdtemp(prefix="repro-serve-")
                self._socket_dir = self._owns_dir
            else:
                os.makedirs(self._socket_dir, exist_ok=True)
            path = os.path.join(self._socket_dir, "serve.sock")

        async def main():
            self._loop = asyncio.get_running_loop()
            await self.server.serve(path=path, port=0,
                                    ready=self._ready)

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("sweep server failed to start")
        # serve() sets bound before ready; give it one more instant if
        # the scheduler interleaved oddly
        deadline = time.time() + 5
        while self.server.bound is None and time.time() < deadline:
            time.sleep(0.01)
        return self

    def stop(self):
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.server.request_stop)
            except RuntimeError:
                pass        # loop already closed (idle-exit fired)
        if self._thread is not None:
            self._thread.join(timeout=30)
        if self._owns_dir:
            import shutil
            shutil.rmtree(self._owns_dir, ignore_errors=True)

    def __enter__(self):
        return self.start()

    def __exit__(self, *_exc):
        self.stop()
        return False
