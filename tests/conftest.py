"""Shared test fixtures.

The persistent result cache is redirected into a per-session temporary
directory so the suite exercises the disk-cache code paths without
reading or polluting the user's real ``~/.cache/repro``.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    from repro.eval import diskcache
    diskcache.configure(
        cache_dir=str(tmp_path_factory.mktemp("repro-cache")))
    yield
