"""Robustness properties: kernels stay golden-correct across dataset
seeds and LPSU shapes (a light randomized sweep on top of the
exhaustive per-kernel tests)."""

import pytest

from repro.kernels import get_kernel
from repro.lang import compile_source
from repro.sim import Memory
from repro.uarch import IO, LPSUConfig, SystemConfig, simulate

#: kernels covering every dependence pattern + both control extensions
REPRESENTATIVES = ("rgb2cmyk-uc", "sha-or", "ksack-sm-om", "mm-orm",
                   "btree-ua", "bfs-uc-db", "qsort-uc-db", "ssearch-de")

LPSUS = {
    "primary": LPSUConfig(),
    "narrow": LPSUConfig(lanes=2, lsq_loads=4, lsq_stores=4,
                         ib_entries=96),
    "wide": LPSUConfig(lanes=8, mem_ports=2, llfus=2, lsq_loads=16,
                       lsq_stores=16),
    "mt": LPSUConfig(threads_per_lane=2),
    "fwd": LPSUConfig(inter_lane_forwarding=True),
}


@pytest.mark.parametrize("name", REPRESENTATIVES)
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_seed_robustness(name, seed):
    spec = get_kernel(name)
    compiled = compile_source(spec.source)
    workload = spec.workload("tiny", seed=seed)
    mem = Memory()
    args = workload.apply(mem)
    simulate(compiled.program, SystemConfig("io+x", IO, LPSUConfig()),
             entry=spec.entry, args=args, mem=mem, mode="specialized")
    workload.check(mem)


@pytest.mark.parametrize("name", REPRESENTATIVES)
@pytest.mark.parametrize("shape", sorted(LPSUS))
def test_lpsu_shape_robustness(name, shape):
    spec = get_kernel(name)
    compiled = compile_source(spec.source)
    workload = spec.workload("tiny")
    mem = Memory()
    args = workload.apply(mem)
    simulate(compiled.program,
             SystemConfig("x", IO, LPSUS[shape]),
             entry=spec.entry, args=args, mem=mem, mode="specialized")
    workload.check(mem)


@pytest.mark.parametrize("name", ("sha-or", "dither-or", "mm-orm",
                                  "stencil-orm"))
def test_scheduled_binaries_stay_correct_across_seeds(name):
    spec = get_kernel(name)
    compiled = compile_source(spec.source, schedule_cirs=True)
    for seed in (1, 5):
        workload = spec.workload("tiny", seed=seed)
        mem = Memory()
        args = workload.apply(mem)
        simulate(compiled.program,
                 SystemConfig("io+x", IO, LPSUConfig()),
                 entry=spec.entry, args=args, mem=mem,
                 mode="specialized")
        workload.check(mem)
