"""Wire protocol of the sweep service: length-prefixed JSON frames.

Every message is a 4-byte big-endian length followed by a UTF-8 JSON
object.  JSON keeps the protocol debuggable (``socat`` + eyeballs) and
language-neutral; the one binary payload -- a finished
:class:`~repro.eval.runner.KernelRun` record, which must cross the
wire bit-identical -- rides inside it as base64-encoded pickle, the
same serialization the parallel sweep executor ships results over
worker pipes with.

Trust model: pickles only ever cross between parties that chose each
other.  A *client* unpickles records only from the server it connected
to (the same trust as importing the package); a *server* unpickles
records only from ``complete`` ops -- i.e. from workers the operator
launched against it.  A submitting client cannot make the server
unpickle anything: submissions are pure JSON.

Client -> server operations::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}              # distributed: drains first
    {"op": "submit", "points": [<wire point>, ...]}

Server -> client, per submission, streamed as points complete::

    {"type": "result", "i": N, "label": ..., "source":
     "cache"|"inflight"|"sim", "simulated": bool, "wall": secs,
     "record": <base64 pickle>}
    {"type": "failure", "i": N, "label": ..., "kind": ...,
     "error": ..., "attempts": N}
    {"type": "done", "points": N, "simulated": N, "failed": N,
     "jobs": N}

Worker -> server operations (protocol 2, ``--distributed`` servers;
every op is answered by exactly one reply frame, so one socket can be
shared by a worker's main loop and its heartbeat thread under a
lock)::

    {"op": "register", "role": "worker", "name": ..., "pid": N,
     "jobs": N}                  -> {"ok": true, "worker_id": W,
                                     "lease_ttl": secs}
    {"op": "lease", "worker_id": W, "max_points": N}
        -> {"type": "lease", "lease_id": L, "points":
            [{"qkey": ..., "wire": {...}, "attempt": N}, ...]}
         | {"type": "empty"}     # nothing pending; poll again
         | {"type": "drain"}     # server draining; exit clean
    {"op": "heartbeat", "worker_id": W, "lease_id": L}
        -> {"ok": bool}          # false: lease expired, keep going
    {"op": "complete", "worker_id": W, "qkey": ..., "wall": secs,
     "simulated": bool, "retries": N, "record": <base64 pickle>}
        -> {"ok": true, "credited": bool}   # false: late duplicate
    {"op": "fail", "worker_id": W, "qkey": ..., "kind": ...,
     "error": ..., "attempts": N}
        -> {"ok": true, "credited": bool}

A *wire point* is the JSON image of a
:class:`~repro.eval.parallel.SweepPoint` -- named configurations only
(an ad-hoc :class:`SystemConfig` has no name to send).

Any op may instead be answered ``{"error": ...}`` -- an explicit
server verdict (unknown op, unknown worker, not distributed), raised
client-side as :class:`RemoteError` and never blindly retried.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import pickle
import struct

#: frame size bound; a sweep submission of 10^5 points is ~10 MB, a
#: single KernelRun record a few hundred KB
MAX_FRAME = 256 << 20

_HEADER = struct.Struct("!I")

#: bumped on incompatible message-shape changes; ping reports it.
#: 2 added the worker ops (register/lease/heartbeat/complete/fail)
#: and the draining shutdown -- every protocol-1 op is unchanged.
PROTOCOL_VERSION = 2

#: default TCP port of ``repro serve --listen``
DEFAULT_PORT = 7340


class ProtocolError(Exception):
    """A malformed, truncated, or oversized frame."""


class RemoteError(ProtocolError):
    """The server answered with an explicit ``{"error": ...}`` frame.

    Distinct from a transport-level :class:`ProtocolError` because the
    reconnecting client must treat them oppositely: a dead socket is
    retried with backoff, a deliberate server verdict never is."""


def encode_frame(msg):
    """One message as bytes: length header + compact JSON."""
    body = json.dumps(msg, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds the %d bound"
                            % (len(body), MAX_FRAME))
    return _HEADER.pack(len(body)) + body


def _decode_body(body):
    try:
        msg = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc)
    if not isinstance(msg, dict):
        raise ProtocolError("frame is not a JSON object")
    return msg


async def read_frame(reader):
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None         # clean EOF between frames
        raise ProtocolError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("oversized frame (%d bytes)" % length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("truncated frame body")
    return _decode_body(body)


async def write_frame(writer, msg):
    writer.write(encode_frame(msg))
    await writer.drain()


def _recv_exact(sock, n):
    """Blocking receive of exactly *n* bytes; None on immediate EOF."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock, msg):
    """Blocking client-side frame send."""
    sock.sendall(encode_frame(msg))


def recv_frame(sock):
    """Blocking client-side frame receive; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("oversized frame (%d bytes)" % length)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)


# ---------------------------------------------------------------------------
# payload packing
# ---------------------------------------------------------------------------


def pack_record(obj):
    """A result record as a JSON-safe string (base64 pickle)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_record(text):
    """Inverse of :func:`pack_record` (client side only)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def point_to_wire(pt):
    """A :class:`SweepPoint` as a JSON object.  Only named platform
    configurations cross the wire: an ad-hoc SystemConfig lives in one
    process's memory and has no content-stable name to send."""
    if not isinstance(pt.config, str):
        raise ProtocolError(
            "only named configurations can be submitted to a sweep "
            "server (got %r)" % (pt.config,))
    return {"kernel": pt.kernel, "config": pt.config, "mode": pt.mode,
            "binary": pt.binary, "xi": bool(pt.xi_enabled),
            "scale": pt.scale, "seed": int(pt.seed),
            "schedule_cirs": bool(pt.schedule_cirs)}


def point_from_wire(data):
    """Inverse of :func:`point_to_wire`; raises ProtocolError on a
    malformed point."""
    from ..eval.parallel import SweepPoint
    try:
        return SweepPoint(
            kernel=str(data["kernel"]), config=str(data["config"]),
            mode=str(data.get("mode", "traditional")),
            binary=str(data.get("binary", "xloops")),
            xi_enabled=bool(data.get("xi", True)),
            scale=str(data.get("scale", "small")),
            seed=int(data.get("seed", 0)),
            schedule_cirs=bool(data.get("schedule_cirs", False)))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed wire point %r: %s" % (data, exc))


def parse_address(text):
    """``host:port``, a filesystem path, or ``unix:PATH`` ->
    ``("tcp", host, port)`` or ``("unix", path, None)``.  Anything
    with a path separator (or no colon at all) is a unix socket."""
    if text.startswith("unix:"):
        return ("unix", text[len("unix:"):], None)
    if "/" in text or os.sep in text or ":" not in text:
        return ("unix", text, None)
    host, _, port = text.rpartition(":")
    try:
        return ("tcp", host or "127.0.0.1", int(port))
    except ValueError:
        raise ProtocolError("unparseable address %r" % text)
