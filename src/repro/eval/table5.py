"""Table V reproduction: VLSI area and cycle-time results for the
LPSU configuration sweep."""

from __future__ import annotations

from ..vlsi import gpp_area, table5_rows
from .report import render_table


def build_table5():
    return table5_rows()


def render_table5(rows=None):
    rows = rows or build_table5()
    base = gpp_area()
    headers = ["Config", "CT(ns)", "Area(mm2)", "Overhead",
               "LPSU(mm2)"]
    body = []
    for name, report, ct in rows:
        overhead = ("-" if name == "scalar"
                    else "%+.0f%%" % (100 * report.overhead_vs(base)))
        lpsu = "-" if name == "scalar" else "%.3f" % report.lpsu_mm2
        body.append([name, "%.2f" % ct, "%.3f" % report.total_mm2,
                     overhead, lpsu])
    return render_table(headers, body,
                        title="Table V: VLSI area and cycle time")
