"""Symbolic inter-iteration dependence prover (ROADMAP item 1).

Per xloop, decides whether the annotated dependence pattern is
actually true: "no inter-iteration dependence" (``uc``),
"register-carried only" (``or``), or "memory ordering required"
(``om``/``ua``) — emitting per-pair certificates or a concrete
counterexample iteration pair ``(i, j, addr)``.

Pipeline per loop:

1. translate every array subscript into a :class:`~.prover_core.Poly`
   over the induction variable, auxiliary inner-loop counters,
   AMO-claim slots, and opaque loop-invariant symbols (with forward
   substitution of single-assignment scalars, so ``int base = f*2*ns;``
   resolves);
2. for every same-array pair with at least one write, try an
   *independence proof*: AMO-claim windows, interval unsatisfiability,
   strong-SIV forcing (equal addresses imply the same iteration),
   exact linear diophantine, and a recursive quotient/remainder
   mod-K split for symbolic strides (optionally cross-checked by the
   ``z3`` extra);
3. failing that, recognized *assumption regimes* (AMO atomicity,
   test-and-update guards, AMO-synchronized worklists) mirror the racy
   idioms the conformance harness already treats as nondeterministic;
4. failing that, a *bounded model check* (interval branch-and-prune
   over small trip counts) searches for a minimal concrete
   counterexample.

Verdicts: ``proved`` (every pair certified independent, or memory is
architecturally ordered by the LSQ for ``om``/``orm``), ``assumed``
(sound only under the listed assumption regimes — the contract racy
``uc``/``ua`` kernels already rely on), ``refuted`` (a concrete
counterexample contradicts the pragma), ``unknown``.

Also exports :func:`auto_annotate_unit` (the compiler's
``annotate="auto"`` mode), the registry-wide gate
:func:`prove_all` behind ``repro prove``, and :func:`fuzz_prover`
(prover-vs-brute-force differential fuzzing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ast_nodes import (AddrOf, Assign, Binary, Call, Decl, Expr, ExprStmt,
                         For, If, Index, IntLit, Return, Unary, Var, While,
                         walk_exprs, walk_stmts)
from ..lexer import CompileError
from ..sema import AMO_BUILTINS
from . import prover_core as core
from .depend import _BodyScan, _canonical_loop, expr_key
from .prover_core import Poly

#: atom for the annotated loop's induction variable (pre-pairing)
IVAR = "$i"
#: per-side induction atoms after pairing: iteration i vs iteration j
X, Y = "$x", "$y"


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass
class Witness:
    """Concrete counterexample: iterations *i* != *j* of a *trip*-count
    run touch the same element of *array*."""

    array: str
    i: int
    j: int
    subscript: int               # colliding element index
    trip: int                    # loop trip count
    bound_name: Optional[str]    # symbol carrying the trip count, if any
    symbols: Dict[str, int]      # other loop-invariant symbol values
    a_line: int = 0
    b_line: int = 0

    def __str__(self):
        env = ", ".join("%s=%d" % (k, v)
                        for k, v in sorted(self.symbols.items()))
        return ("iterations (i=%d, j=%d) both touch %s[%d] at trip "
                "count %d%s" % (self.i, self.j, self.array,
                                self.subscript, self.trip,
                                " with " + env if env else ""))


@dataclass
class PairCert:
    """Per-access-pair certificate."""

    array: str
    a: str                       # access descriptions
    b: str
    status: str                  # independent | assumed | dependent | unknown
    reason: str
    witness: Optional[Witness] = None

    @property
    def rule(self):
        return self.reason.split(":", 1)[0]


@dataclass
class LoopProof:
    """Proof record for one loop."""

    function: str
    line: int
    annotation: Optional[str]
    emitted: Optional[str]       # mnemonic from the dependence pass
    verdict: str                 # proved | assumed | refuted | unknown
    minimal: str                 # prover's minimal data pattern
    mem_status: str              # independent | assumed | dependent | unknown
    reasons: Tuple[str, ...] = ()
    pairs: List[PairCert] = field(default_factory=list)
    cirs: Tuple[str, ...] = ()
    counterexample: Optional[Witness] = None
    notes: Tuple[str, ...] = ()

    @property
    def ok(self):
        return self.verdict in ("proved", "assumed")

    def describe(self):
        head = "%s:%d %s -> %s (%s" % (
            self.function, self.line, self.emitted or "<unannotated>",
            self.verdict, "minimal %s" % self.minimal)
        if self.reasons:
            head += "; assumes " + ", ".join(self.reasons)
        head += ")"
        lines = [head]
        for note in self.notes:
            lines.append("  note: %s" % note)
        if self.counterexample is not None:
            lines.append("  counterexample: %s" % self.counterexample)
        return "\n".join(lines)

    def describe_pairs(self):
        return "\n".join("  [%s] %s  ~  %s\n      %s"
                         % (p.status, p.a, p.b, p.reason)
                         for p in self.pairs)


# ---------------------------------------------------------------------------
# symbolic body scan
# ---------------------------------------------------------------------------

@dataclass
class SymAccess:
    base_sid: int
    base_name: str
    poly: Optional[Poly]         # element-index polynomial, or unknown
    is_write: bool
    is_amo: bool
    guarded: bool                # write guarded by a test of the same cell
    aux: Tuple[str, ...]         # enclosing auxiliary-loop atoms
    line: int
    desc: str


class _SymScan:
    """Translate a loop body into symbolic memory accesses.

    Scalars defined exactly once get forward-substituted; canonical
    inner ``for`` loops become auxiliary range variables; ``amo_add``
    on a loop-invariant counter becomes a claim atom with a known
    reservation window.  Anything else is an unknown (None) poly,
    handled by the assumption regimes."""

    def __init__(self, ivar, written, defs):
        self.ivar = ivar
        self.written = written
        self.defs = defs
        self.env: Dict[object, Optional[Poly]] = {}
        self.aux_env: Dict[object, str] = {}
        self.atom_of: Dict[object, str] = {}
        self.accesses: List[SymAccess] = []
        self.aux_ranges: Dict[str, Tuple[Optional[Poly],
                                         Optional[Poly]]] = {}
        self.claims: Dict[str, int] = {}
        self.has_amo = False
        self._names = set()
        self._aux_n = 0
        self._claim_n = 0
        self._guards: List[Expr] = []
        self._aux_stack: List[str] = []

    # -- atoms -------------------------------------------------------------

    def atom(self, sym):
        if sym not in self.atom_of:
            name = sym.name
            if name in self._names:
                name = "%s#%d" % (sym.name, sym.sid)
            self._names.add(name)
            self.atom_of[sym] = name
        return self.atom_of[sym]

    # -- expression translation --------------------------------------------

    def poly(self, expr):
        if expr is None:
            return None
        if isinstance(expr, IntLit):
            return Poly.const(expr.value)
        if isinstance(expr, Var):
            sym = expr.symbol
            if sym == self.ivar:
                return Poly.var(IVAR)
            if sym in self.aux_env:
                return Poly.var(self.aux_env[sym])
            if sym in self.env:
                return self.env[sym]
            if sym in self.written:
                return None          # mutated in the body, unmodeled
            return Poly.var(self.atom(sym))
        if isinstance(expr, Unary) and expr.op == "-":
            p = self.poly(expr.operand)
            return None if p is None else -p
        if isinstance(expr, Binary) and expr.op in ("+", "-", "*", "<<"):
            left = self.poly(expr.left)
            right = self.poly(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if right.is_const and 0 <= right.const_value < 32:
                return left * (1 << right.const_value)
            return None
        return None

    # -- statement walk ----------------------------------------------------

    def run(self, stmts):
        self._stmts(stmts)

    def _stmts(self, stmts):
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt):
        if isinstance(stmt, Decl):
            init = stmt.init
            if isinstance(init, Call) and init.name in AMO_BUILTINS:
                window = self._claim_window(init)
                self._amo(init)
                if window is not None and self.defs.get(stmt.symbol) == 1:
                    atom = "%s@c%d" % (stmt.name, self._claim_n)
                    self._claim_n += 1
                    self.claims[atom] = window
                    self.env[stmt.symbol] = Poly.var(atom)
                else:
                    self.env[stmt.symbol] = None
                return
            self._reads(init)
            if init is not None and self.defs.get(stmt.symbol) == 1:
                self.env[stmt.symbol] = self.poly(init)
            else:
                self.env[stmt.symbol] = None
        elif isinstance(stmt, Assign):
            self._reads(stmt.value)
            target = stmt.target
            if isinstance(target, Index):
                self._reads(target.subscript)
                self._access(target, is_write=True)
        elif isinstance(stmt, ExprStmt):
            self._reads(stmt.expr)
        elif isinstance(stmt, If):
            self._reads(stmt.cond)
            self._guards.append(stmt.cond)
            self._stmts(stmt.then)
            self._guards.pop()
            self._stmts(stmt.orelse)
        elif isinstance(stmt, While):
            self._reads(stmt.cond)
            self._stmts(stmt.body)
        elif isinstance(stmt, For):
            self._for(stmt)
        elif isinstance(stmt, Return):
            self._reads(stmt.value)

    def _for(self, stmt):
        try:
            ivar2, bound = _canonical_loop(stmt)
        except CompileError:
            # non-canonical inner loop: values unknown, accesses still real
            if stmt.init is not None:
                self._stmt(stmt.init)
            self._reads(stmt.cond)
            self._stmts(stmt.body)
            if stmt.step is not None:
                self._stmt(stmt.step)
            return
        init = stmt.init
        lo_expr = init.init if isinstance(init, Decl) else init.value
        lo, hi = self.poly(lo_expr), self.poly(bound)
        self._reads(lo_expr)
        self._reads(bound)
        atom = "%s@%d" % (ivar2.name, self._aux_n)
        self._aux_n += 1
        self.aux_ranges[atom] = (lo, hi)
        prev = self.aux_env.get(ivar2)
        self.aux_env[ivar2] = atom
        self._aux_stack.append(atom)
        self._stmts(stmt.body)
        self._aux_stack.pop()
        if prev is None:
            del self.aux_env[ivar2]
        else:
            self.aux_env[ivar2] = prev

    # -- access recording --------------------------------------------------

    def _reads(self, expr):
        if not isinstance(expr, Expr):
            return
        if isinstance(expr, Index):
            self._reads(expr.subscript)
            self._access(expr, is_write=False)
            return
        if isinstance(expr, Call):
            if expr.name in AMO_BUILTINS:
                self._amo(expr)
                return
            for arg in expr.args:
                self._reads(arg)
            return
        for name in ("operand", "left", "right", "base", "subscript"):
            child = getattr(expr, name, None)
            if isinstance(child, Expr):
                self._reads(child)

    def _amo(self, call):
        self.has_amo = True
        target = call.args[0]
        if isinstance(target, AddrOf) and isinstance(target.operand, Index):
            node = target.operand
            self._reads(node.subscript)
            self._access(node, is_write=True, is_amo=True)
        else:
            self._reads(target)
            self.accesses.append(SymAccess(
                -1, "<ptr>", None, True, True, False,
                tuple(self._aux_stack), call.line,
                "amo write <ptr>[?] (line %d)" % call.line))
        for arg in call.args[1:]:
            self._reads(arg)

    def _claim_window(self, call):
        """Reservation window of an ``amo_add`` claiming distinct slots
        from a loop-invariant counter, or None."""
        if call.name != "amo_add" or len(call.args) < 2:
            return None
        incr = call.args[1]
        if not isinstance(incr, IntLit) or incr.value < 1:
            return None
        target = call.args[0]
        if not (isinstance(target, AddrOf)
                and isinstance(target.operand, Index)):
            return None
        counter = self.poly(target.operand.subscript)
        if counter is None or any(_per_iteration(a)
                                  for a in counter.atoms()):
            return None
        return incr.value

    def _access(self, node, is_write, is_amo=False):
        base = node.base
        sid = base.symbol.sid if isinstance(base, Var) else -1
        name = base.symbol.name if isinstance(base, Var) else "<expr>"
        p = self.poly(node.subscript)
        guarded = False
        if is_write and not is_amo and self._guards:
            key = expr_key(node)
            guarded = any(isinstance(n, Index) and expr_key(n) == key
                          for cond in self._guards
                          for n in walk_exprs(cond))
        desc = "%s%s %s[%s] (line %d)" % (
            "amo " if is_amo else "", "write" if is_write else "read",
            name, "?" if p is None else repr(p), node.line)
        self.accesses.append(SymAccess(sid, name, p, is_write, is_amo,
                                       guarded, tuple(self._aux_stack),
                                       node.line, desc))


def _per_iteration(atom):
    """Atoms carrying per-iteration values (induction, aux counters,
    claim slots) vs. opaque loop-invariant symbols."""
    return "$" in atom or "@" in atom


def _side(p, side):
    """Rename per-iteration atoms for one side of a pair (iteration x
    vs iteration y of the annotated loop)."""
    mapping = {}
    for atom in p.atoms():
        if atom == IVAR:
            mapping[atom] = Poly.var(X if side == "a" else Y)
        elif _per_iteration(atom):
            mapping[atom] = Poly.var(atom + "$" + side)
    return p.subst(mapping)


def _lb_from_gap(d):
    """From a known constraint ``d >= 1`` over ``k*s + c``, derive the
    implied symbol lower bound ``(s, ceil((1-c)/k))`` — or None."""
    terms = dict(d.terms)
    c = terms.pop((), 0)
    if len(terms) != 1:
        return None
    (mono, k), = terms.items()
    if len(mono) != 1 or k < 1 or _per_iteration(mono[0]):
        return None
    return mono[0], -((c - 1) // k)


# ---------------------------------------------------------------------------
# pair proofs
# ---------------------------------------------------------------------------

def _forces_eq(p, lbs):
    """``p = 0`` implies ``x = y``: p is ``c*(x - y)`` with c provably
    nonzero (the strong-SIV argument, symbolic strides included)."""
    split = p.linear_split({X, Y})
    if split is None:
        return False
    coefs, rest = split
    if rest.terms:
        return False
    cx = coefs.get(X, Poly())
    cy = coefs.get(Y, Poly())
    if (cx + cy).terms or not cx.terms:
        return False
    if cx.is_const:
        return cx.const_value != 0
    return core.poly_pos(cx, lbs) or core.poly_pos(-cx, lbs)


def _indep(diff, ranges, lbs, depth):
    """Try to prove ``diff = 0`` has no solution with ``x != y`` over
    the symbolic iteration box.  Returns ``(proved, reason)``."""
    if not diff.terms:
        return False, ""             # identically zero: always aliases
    if core.eq_unsat(diff, ranges, lbs):
        return True, ("interval: address difference provably nonzero "
                      "over the iteration box")
    if _forces_eq(diff, lbs):
        return True, ("strong SIV: equal addresses force the same "
                      "iteration")
    split = diff.linear_split({X, Y})
    if split is None:
        return False, ""
    coefs, rest = split
    cx = coefs.get(X, Poly())
    cy = coefs.get(Y, Poly())
    # exact integer weak-SIV/MIV: linear diophantine over all of Z
    if (cx.is_const and cy.is_const and rest.is_const
            and (cx.terms or cy.terms)):
        if not core.pair_dependent_over_z(cx.const_value, cy.const_value,
                                          rest.const_value):
            return True, ("diophantine: gcd(%d, %d) does not divide %d"
                          % (cx.const_value, cy.const_value,
                             rest.const_value))
    # quotient/remainder split on a common stride K:
    #   diff = K*(x - y) + rest = K*(x - y + q) + r  with  -K < r < K
    # forces both  r = 0  and  x - y + q = 0.
    if depth > 0 and not (cx + cy).terms and cx.terms:
        single = cx.single_term()
        if single is not None:
            c, mono = single
        elif cx.is_const and abs(cx.const_value) > 1:
            c, mono = cx.const_value, ()
        else:
            c = None
        if c is not None:
            stride = cx if c > 0 else -cx
            if core.poly_pos(stride, lbs):
                rest_n = rest if c > 0 else -rest
                q, r = core.divmod_term(rest_n, abs(c), mono)
                bounds = core.linear_bounds(r, ranges, lbs)
                if bounds is not None:
                    mn, mx = bounds
                    if (core.poly_nonneg(mn + stride - Poly.const(1), lbs)
                            and core.poly_nonneg(
                                stride - mx - Poly.const(1), lbs)):
                        part2 = Poly.var(X) - Poly.var(Y) + q
                        for part in (r, part2):
                            ok, why = _indep(part, ranges, lbs, depth - 1)
                            if ok:
                                return True, ("mod-%r split: %s"
                                              % (stride, why))
    return False, ""


def _claim_match(p, claims):
    """``(claim_atom, offset)`` when *p* is ``slot + d`` with
    ``0 <= d < window`` for an AMO-claim slot."""
    for atom in p.atoms():
        if atom in claims:
            rest = p - Poly.var(atom)
            if rest.is_const and 0 <= rest.const_value < claims[atom]:
                return atom, rest.const_value
    return None


def _has_claims(polys, claims):
    return any(p is not None and p.atoms() & set(claims) for p in polys)


def _bmc(poly_a, poly_b, acc_a, acc_b, array, ranges, lbs, bound_poly,
         bound_atom):
    """Bounded model check: enumerate small symbol values and trip
    counts, solving for a concrete colliding iteration pair via the
    interval core.  Ordering makes the witness minimal: smallest trip
    count, then smallest ``max(i, j)``."""
    diff = poly_a - poly_b
    atoms = set(diff.atoms()) | set(bound_poly.atoms())
    aux = set()
    for v, (lo, hi) in ranges.items():
        if v in (X, Y):
            continue
        if lo is None or hi is None:
            return None              # unbounded auxiliary: no search
        atoms |= lo.atoms() | hi.atoms()
        aux.add(v)
    aux &= atoms | set()
    aux = {v for v in ranges if v not in (X, Y)}
    syms = sorted(a for a in atoms
                  if not _per_iteration(a) and a not in aux)
    if len(syms) > 3:
        return None
    # candidate symbol environments, smallest trip count first
    import itertools
    starts = {s: max(lbs.get(s, 0), 0) for s in syms}
    envs = []
    for combo in itertools.product(*(range(starts[s], starts[s] + 4)
                                     for s in syms)):
        env = dict(zip(syms, combo))
        trip = bound_poly.evaluate(env) if bound_poly.atoms() <= set(env) \
            else None
        if trip is None or not 2 <= trip <= 12:
            continue
        envs.append((trip, combo, env))
    for trip, _, env in sorted(envs, key=lambda e: (e[0], e[1])):
        for m in range(1, trip):
            for i, j in ([(t, m) for t in range(m)]
                         + [(m, t) for t in range(m)]):
                full = dict(env)
                full[X], full[Y] = i, j
                point = {a: Poly.const(v) for a, v in full.items()}
                residual = diff.subst(point)
                domains = {}
                ok = True
                for v in aux:
                    lo, hi = ranges[v]
                    if not (lo.atoms() <= set(full)
                            and hi.atoms() <= set(full)):
                        ok = False
                        break
                    lov, hiv = lo.evaluate(full), hi.evaluate(full) - 1
                    domains[v] = (lov, min(hiv, lov + 24))
                if not ok:
                    continue
                if not residual.atoms() <= set(domains):
                    continue
                if domains:
                    sol = core.solve_eqs([residual], domains)
                    if sol is None:
                        continue
                    full.update(sol)
                elif residual.evaluate({}) != 0:
                    continue
                return Witness(
                    array=array, i=i, j=j,
                    subscript=poly_a.evaluate(full), trip=trip,
                    bound_name=bound_atom,
                    symbols={s: env[s] for s in syms
                             if s != bound_atom},
                    a_line=acc_a.line, b_line=acc_b.line)
    return None


def _prove_pair(a, b, scan, bound_poly, bound_atom, lbs0, dynamic):
    """Certificate for one same-array access pair."""
    array = a.base_name if a.base_sid != -1 else b.base_name

    def cert(status, reason, wit=None):
        return PairCert(array, a.desc, b.desc, status, reason, wit)

    lbs = dict(lbs0)
    hi = None if (dynamic or bound_poly is None) else bound_poly
    ranges = {X: (Poly.const(0), hi), Y: (Poly.const(0), hi)}
    known = (a.poly is not None and b.poly is not None
             and a.base_sid != -1 and b.base_sid != -1)
    if known:
        poly_a, poly_b = _side(a.poly, "a"), _side(b.poly, "b")
        for side, acc in (("a", a), ("b", b)):
            for atom in acc.aux:
                lo, ahi = scan.aux_ranges[atom]
                ranges[atom + "$" + side] = (
                    None if lo is None else _side(lo, side),
                    None if ahi is None else _side(ahi, side))
                if lo is not None and ahi is not None:
                    # the pair exists only if this inner loop runs
                    got = _lb_from_gap(ahi - lo)
                    if got is not None:
                        sym, v = got
                        lbs[sym] = max(lbs.get(sym, v), v)
        ca = _claim_match(a.poly, scan.claims)
        cb = _claim_match(b.poly, scan.claims)
        if ca is not None and cb is not None and ca[0] == cb[0]:
            return cert("independent",
                        "amo-claim: both addresses lie inside the "
                        "disjoint window [slot, slot+%d) reserved per "
                        "iteration by an AMO fetch-add on a fixed "
                        "counter" % scan.claims[ca[0]])
        ok, why = _indep(poly_a - poly_b, ranges, lbs, depth=3)
        if ok:
            return cert("independent", why)
        if core.z3_refute(poly_a - poly_b, ranges, lbs, (X, Y)):
            return cert("independent",
                        "z3: equal-address query unsatisfiable")
    # recognized racy idioms (assumption regimes)
    if a.is_amo and b.is_amo:
        return cert("assumed",
                    "amo-atomic: both accesses are AMOs; soundness "
                    "relies on the operation commuting across "
                    "iterations")
    writes = [m for m in (a, b) if m.is_write]
    if writes and all(m.is_amo for m in writes):
        return cert("assumed",
                    "amo-read: a plain read races only with atomic "
                    "updates of the same cell (monotone counter "
                    "idiom)")
    if writes and all(m.is_amo or m.guarded for m in writes):
        return cert("assumed",
                    "test-and-update: every plain write is guarded by "
                    "a test of the same location (benign monotone "
                    "update idiom)")
    # bounded model check for a concrete counterexample
    if (known and not dynamic and bound_poly is not None
            and not _has_claims((a.poly, b.poly), scan.claims)):
        wit = _bmc(poly_a, poly_b, a, b, array, ranges, lbs,
                   bound_poly, bound_atom)
        if wit is not None:
            return cert("dependent",
                        "counterexample found by bounded model check",
                        wit)
    if scan.has_amo:
        return cert("assumed",
                    "worklist-racy: unresolved data-dependent "
                    "addressing in an AMO-synchronized loop; races "
                    "are part of the kernel's contract")
    return cert("unknown",
                "no decision: address not affine-resolvable and no "
                "recognized idiom applies")


# ---------------------------------------------------------------------------
# loop-level proof
# ---------------------------------------------------------------------------

_PRAGMA = object()


def prove_loop(loop, function="?", annotation=_PRAGMA):
    """Prove one (sema-analyzed) ``For`` loop's dependence pattern.

    With the default *annotation* sentinel the loop's own pragma and
    emitted mnemonic are certified; pass ``annotation=None`` for the
    pre-annotation query ``annotate="auto"`` uses."""
    ann = loop.annotation if annotation is _PRAGMA else annotation
    xloop = getattr(loop, "xloop", None)
    emitted = xloop.mnemonic if xloop is not None else None
    try:
        ivar, bound = _canonical_loop(loop)
    except CompileError as exc:
        return LoopProof(function, loop.line, ann, emitted, "unknown",
                         "om", "unknown",
                         notes=("not a canonical counted loop: %s" % exc,))
    body = _BodyScan(ivar)
    body.scan(loop.body)
    if body.calls:
        return LoopProof(function, loop.line, ann, emitted, "unknown",
                         "om", "unknown",
                         notes=("call to %r in the body" % body.calls[0],))
    bound_sym = bound.symbol if isinstance(bound, Var) else None
    dynamic = bound_sym is not None and bound_sym in body.written
    cirs = (body.read_first & body.written) - {ivar}
    if bound_sym is not None:
        cirs.discard(bound_sym)

    defs: Dict[object, int] = {}
    for stmt in walk_stmts(loop.body):
        tgt = None
        if isinstance(stmt, Decl):
            tgt = stmt.symbol
        elif isinstance(stmt, Assign) and isinstance(stmt.target, Var):
            tgt = stmt.target.symbol
        if tgt is not None:
            defs[tgt] = defs.get(tgt, 0) + 1
    scan = _SymScan(ivar, body.written, defs)
    scan.run(loop.body)

    bound_poly = None if dynamic else scan.poly(bound)
    bound_atom = None
    lbs0: Dict[str, int] = {}
    if bound_poly is not None:
        # a cross-iteration pair exists only when the loop runs twice
        got = _lb_from_gap(bound_poly - Poly.const(1))
        if got is not None:
            lbs0[got[0]] = got[1]
        single = bound_poly.single_term()
        if single is not None and single[0] == 1 and len(single[1]) == 1:
            bound_atom = single[1][0]

    pairs: List[PairCert] = []
    accs = scan.accesses
    for idx, a in enumerate(accs):
        for b in accs[idx:]:
            if not (a.is_write or b.is_write):
                continue
            if (a.base_sid != b.base_sid
                    and a.base_sid != -1 and b.base_sid != -1):
                continue        # distinct arrays never alias (restrict)
            pairs.append(_prove_pair(a, b, scan, bound_poly, bound_atom,
                                     lbs0, dynamic))

    statuses = {p.status for p in pairs}
    if "dependent" in statuses:
        mem_status = "dependent"
    elif "unknown" in statuses:
        mem_status = "unknown"
    elif "assumed" in statuses:
        mem_status = "assumed"
    else:
        mem_status = "independent"
    has_reg = bool(cirs)
    if mem_status == "independent":
        minimal = "or" if has_reg else "uc"
    else:
        minimal = "orm" if has_reg else "om"
    reasons = tuple(sorted({p.rule for p in pairs
                            if p.status == "assumed"}))
    witness = next((p.witness for p in pairs
                    if p.status == "dependent" and p.witness is not None),
                   None)
    notes: List[str] = []

    # mnemonics look like "xloop.om" / "xloop.uc.db": the data pattern
    # is the first component after the "xloop" prefix
    kind = None
    if emitted:
        parts = [p for p in emitted.split(".") if p != "xloop"]
        kind = parts[0] if parts else None
    to_verdict = {"independent": "proved", "assumed": "assumed",
                  "dependent": "refuted", "unknown": "unknown"}
    if kind in ("om", "orm"):
        # memory ordering is enforced architecturally by the LSQ
        verdict = "proved"
        if minimal != kind:
            notes.append("memory is LSQ-ordered; prover minimal data "
                         "pattern is %r (loop may be over-serialized)"
                         % minimal)
    elif kind == "ua":
        verdict = "assumed"
        reasons = tuple(sorted(set(reasons) | {"atomic-commute"}))
    else:
        # uc/or (or the pre-annotation query): the encoding claims no
        # memory ordering is needed, so every pair must be certified
        verdict = to_verdict[mem_status]
    return LoopProof(function, loop.line, ann, emitted, verdict, minimal,
                     mem_status, reasons, pairs,
                     tuple(sorted(c.name for c in cirs)),
                     witness, tuple(notes))


def prove_unit(unit):
    """Prove every annotated loop in a (compiled) unit."""
    proofs = []
    for func in unit.functions:
        for stmt in walk_stmts(func.body):
            if isinstance(stmt, For) and stmt.annotation:
                proofs.append(prove_loop(stmt, function=func.name))
    return proofs


def prove_source(source):
    """Compile annotated MiniC *source* and prove every xloop."""
    from ..compiler import compile_source
    prog = compile_source(source)
    return prove_unit(prog.unit)


# ---------------------------------------------------------------------------
# registry gate (`repro prove`)
# ---------------------------------------------------------------------------

#: kernels whose pragma the prover cannot confirm, with tracked
#: reasons.  The gate FAILS on any unlisted refuted/unknown loop.
#: Deliberately empty: every registered kernel is either proved or
#: carried by a recognized assumption regime.
PRAGMA_WHITELIST: Dict[str, str] = {}


@dataclass
class KernelProof:
    """Proof record for one registered kernel."""

    name: str
    loops: List[LoopProof]
    ok: bool
    whitelisted: bool = False
    detail: str = ""

    @property
    def verdicts(self):
        return tuple(p.verdict for p in self.loops)


def prove_kernel(spec):
    """Cross-check one registered kernel's pragmas against the proof."""
    from ...kernels.registry import get_kernel
    if isinstance(spec, str):
        spec = get_kernel(spec)
    proofs = prove_source(spec.source)
    bad = [p for p in proofs if not p.ok]
    ok = not bad
    if ok:
        detail = "; ".join(
            "%s %s" % (p.emitted, p.verdict)
            + (" (%s)" % ", ".join(p.reasons) if p.reasons else "")
            for p in proofs)
    else:
        detail = "; ".join(p.describe() for p in bad)
    whitelisted = False
    if not ok and spec.name in PRAGMA_WHITELIST:
        ok, whitelisted = True, True
        detail += " [whitelisted: %s]" % PRAGMA_WHITELIST[spec.name]
    return KernelProof(spec.name, proofs, ok, whitelisted, detail)


def prove_all(names=None, progress=None):
    """Prove every (or the named) registered kernels."""
    from ...kernels.registry import ALL_KERNELS, get_kernel
    specs = ([get_kernel(n) for n in names] if names
             else list(ALL_KERNELS))
    results = []
    for spec in specs:
        result = prove_kernel(spec)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


# ---------------------------------------------------------------------------
# annotate="auto" (compiler mode)
# ---------------------------------------------------------------------------

def auto_annotate_unit(unit):
    """Annotate unannotated canonical loops with proved patterns.

    Outermost-first: a loop whose memory pairs are all strictly proved
    independent and which carries no cross-iteration scalars becomes
    ``unordered``; otherwise ``ordered`` (the dependence pass then
    derives ``or``/``om``/``orm``/relaxed-``uc``).  ``atomic`` is never
    auto-selected — commutativity is a programmer assertion.  Loops the
    analysis rejects are rolled back and their bodies recursed into.
    Returns ``[(loop, annotation, proof)]`` decisions."""
    decisions = []

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, For) and stmt.annotation is None:
                if not _try_auto(stmt, decisions):
                    visit(stmt.body)
            elif isinstance(stmt, If):
                visit(stmt.then)
                visit(stmt.orelse)
            elif isinstance(stmt, While):
                visit(stmt.body)
            # already-annotated For: the programmer decided; leave the
            # nest alone (inner loops execute inside lane contexts)

    for func in unit.functions:
        visit(func.body)
    return decisions


def _try_auto(loop, decisions):
    from .depend import analyze_loop
    try:
        _canonical_loop(loop)
    except CompileError:
        return False
    if any(isinstance(s, For) and s.annotation
           for s in walk_stmts(loop.body)):
        return False            # contains a hand-annotated xloop
    proof = prove_loop(loop, annotation=None)
    candidates = ["ordered"]
    if proof.mem_status == "independent" and not proof.cirs:
        # strictly proved race-free: specialize unordered
        candidates.insert(0, "unordered")
    for ann in candidates:
        loop.annotation = ann
        try:
            analyze_loop(loop, None)
        except CompileError:
            loop.annotation = None
            continue
        decisions.append((loop, ann, proof))
        return True
    return False


# ---------------------------------------------------------------------------
# prover-vs-brute-force differential fuzzing (`repro prove --fuzz`)
# ---------------------------------------------------------------------------

_FUZZ_TEMPLATE = """
void kernel(int* a, int n%(extra)s) {
    #pragma xloops ordered
    for (int i = 0; i < n; i = i + 1) {
        a[%(wa)s] = a[%(rb)s] + 1;
    }
}
"""


def _brute(ca, da, cb, db, trip):
    """Brute-force cross-iteration collision among the write
    ``a[ca*i+da]`` and read ``a[cb*j+db]`` (write-write included)."""
    for i in range(trip):
        for j in range(trip):
            if i == j:
                continue
            if ca * i + da == cb * j + db:
                return True
            if ca * i + da == ca * j + da:
                return True
    return False


def fuzz_prover(seed=0, count=100, progress=None):
    """Random affine loops: the prover's verdict must agree with
    brute-force dependence enumeration at small trip counts.  Returns
    a list of disagreement descriptions (empty means clean)."""
    import random
    rng = random.Random(seed)
    failures = []
    for case in range(count):
        ca, cb = rng.randint(-4, 4), rng.randint(-4, 4)
        da, db = rng.randint(-6, 6), rng.randint(-6, 6)
        scaled = rng.random() < 0.25
        if scaled:
            wa = "w*((%d)*i) + (%d)" % (ca, da)
            rb = "w*((%d)*i) + (%d)" % (cb, db)
            extra = ", int w"
        else:
            wa = "(%d)*i + (%d)" % (ca, da)
            rb = "(%d)*i + (%d)" % (cb, db)
            extra = ""
        tag = "case %d (ca=%d da=%d cb=%d db=%d%s)" % (
            case, ca, da, cb, db, " scaled" if scaled else "")
        proof = prove_source(_FUZZ_TEMPLATE
                             % {"wa": wa, "rb": rb, "extra": extra})[0]
        scales = (1, 2, 3) if scaled else (1,)
        brute_any = any(_brute(ca * w, da, cb * w, db, n)
                        for n in range(2, 9) for w in scales)
        if proof.mem_status == "independent" and brute_any:
            failures.append("%s: prover certified independent but brute "
                            "force finds a collision" % tag)
        elif proof.mem_status == "dependent":
            wit = proof.counterexample
            w = wit.symbols.get("w", 1)
            valid = (wit.i != wit.j
                     and 0 <= wit.i < wit.trip
                     and 0 <= wit.j < wit.trip
                     and _brute(ca * w, da, cb * w, db, wit.trip))
            if not valid:
                failures.append("%s: counterexample %s does not "
                                "validate" % (tag, wit))
        if progress is not None:
            progress(case, proof.mem_status)
    return failures
