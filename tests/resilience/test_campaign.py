"""Fault-injection campaign regression tests.

The two properties the campaign exists to guarantee:

* **reproducibility** -- the same seed replays the same campaign
  bit-for-bit (kernel choice, fault plan, every classified outcome);
* **detection** -- of the faults that end up architecturally visible
  (detected + silent-data-corruption), the invariant monitor catches
  at least 90%, with cycle/lane attribution on each detection.
"""

import pytest

from repro.resilience import (CampaignConfig, CampaignError, OUTCOMES,
                              profile_kernel, run_campaign)
from repro.resilience.campaign import plan_campaign

#: small but cross-pattern: or (CIB), om (LSQ), uc (MIVT-heavy)
KERNELS = ("dither-or", "ksack-sm-om", "sgemm-uc")


def _cfg(**kw):
    base = dict(kernels=KERNELS, count=30, seed=7, timeout=20.0)
    base.update(kw)
    return CampaignConfig(**base)


class TestCampaign:
    def test_runs_to_completion_and_classifies(self):
        report = run_campaign(_cfg())
        assert len(report.outcomes) == 30
        counts = report.counts()
        assert sum(counts.values()) == 30
        assert set(counts) == set(OUTCOMES)
        # every injection actually fired (triggers are drawn from the
        # profiled clean event count, whose prefix is identical)
        assert all(rec.injected_cycle >= 0 for rec in report.outcomes)

    def test_seed_reproducible(self):
        a = run_campaign(_cfg())
        b = run_campaign(_cfg())
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_differs(self):
        a = run_campaign(_cfg(count=10))
        b = run_campaign(_cfg(count=10, seed=8))
        plans = (plan_campaign(a.config, a.profiles),
                 plan_campaign(b.config, b.profiles))
        assert plans[0] != plans[1]

    def test_detection_rate_meets_threshold(self):
        report = run_campaign(_cfg(count=60))
        counts = report.counts()
        visible = counts["detected"] + counts["sdc"]
        assert visible > 0, "campaign never perturbed visible state"
        assert report.detection_rate >= 0.9
        # attribution: detections carry the violation's coordinates
        for rec in report.outcomes:
            if rec.outcome == "detected":
                assert rec.detected_check
                assert rec.detected_cycle >= 0 or rec.detail

    def test_round_robin_covers_all_kernels(self):
        report = run_campaign(_cfg(count=9))
        assert {rec.kernel for rec in report.outcomes} == set(KERNELS)

    def test_render_and_json(self):
        report = run_campaign(_cfg(count=6))
        text = report.render()
        assert "detection rate" in text
        data = report.to_dict()
        assert data["counts"] == report.counts()
        assert len(data["injections"]) == 6

    def test_unknown_target_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign(_cfg(targets=("reg", "flux-capacitor")))


class TestProfile:
    def test_profile_reports_events_and_reference(self):
        prof = profile_kernel("dither-or", _cfg())
        assert prof.events > 0
        assert prof.cycles > 0
        assert len(prof.fingerprint) == 64
