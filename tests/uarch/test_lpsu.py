"""LPSU specialized-execution tests: functional correctness on every
dependence pattern, plus timing/stall behaviour."""

import itertools

import pytest

from repro.asm import assemble
from repro.energy import EnergyEvents
from repro.sim import Memory
from repro.uarch import (IO, LPSU, LPSUConfig, SystemConfig, scan_loop,
                         simulate)
from repro.uarch.params import LatencyTable

SRC, DST, N = 0x100000, 0x200000, 64


def run_spec(asm, args, mem, lpsu=None, mode="specialized"):
    cfg = SystemConfig(name="io+x", gpp=IO, lpsu=lpsu or LPSUConfig())
    return simulate(assemble(asm), cfg, args=list(args), mem=mem, mode=mode)


def run_trad(asm, args, mem):
    cfg = SystemConfig(name="io", gpp=IO)
    return simulate(assemble(asm), cfg, args=list(args), mem=mem,
                    mode="traditional")


VEC_SCALE = """
main:                       # a0=src, a1=dst, a2=n
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    add  t3, t3, t3
    add  t4, a1, t1
    sw   t3, 0(t4)
    addi t0, t0, 1
    xloop.uc t0, a2, body
done:
    ret
"""

PREFIX_SUM = """
main:                       # a0=src, a1=dst, a2=n
    li   t0, 0
    li   t5, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    add  t5, t5, t3
    add  t4, a1, t1
    sw   t5, 0(t4)
    addi t0, t0, 1
    xloop.or t0, a2, body
done:
    ret
"""

MEM_RECURRENCE = """
main:                       # a0=a, a1=b, a2=n; b[i] = b[i-1] + a[i]
    li   t0, 1
    li   t6, 1
    bge  t6, a2, done
body:
    slli t1, t0, 2
    add  t2, a1, t1
    lw   t3, -4(t2)
    add  t4, a0, t1
    lw   t5, 0(t4)
    add  t3, t3, t5
    sw   t3, 0(t2)
    addi t0, t0, 1
    xloop.om t0, a2, body
done:
    ret
"""


class TestUCPattern:
    def test_functional_correctness(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(VEC_SCALE, [SRC, DST, N], mem)
        assert mem.read_words(DST, N) == [2 * i for i in range(N)]
        assert r.specialized_invocations == 1

    def test_speedup_over_traditional(self):
        m1, m2 = Memory(), Memory()
        m1.write_words(SRC, range(N))
        m2.write_words(SRC, range(N))
        t = run_trad(VEC_SCALE, [SRC, DST, N], m1)
        s = run_spec(VEC_SCALE, [SRC, DST, N], m2)
        assert t.cycles / s.cycles > 2.0   # paper: 2.5x+ typical for uc

    def test_more_lanes_help(self):
        cyc = {}
        for lanes in (2, 4, 8):
            mem = Memory()
            mem.write_words(SRC, range(N))
            r = run_spec(VEC_SCALE, [SRC, DST, N], mem,
                         lpsu=LPSUConfig(lanes=lanes, mem_ports=2))
            cyc[lanes] = r.cycles
        assert cyc[8] <= cyc[4] <= cyc[2]

    def test_iterations_counted(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(VEC_SCALE, [SRC, DST, N], mem)
        # first iteration executes traditionally before the xloop is
        # reached; the LPSU runs the rest
        assert r.lpsu_stats.iterations == N - 1

    def test_single_iteration_never_specializes(self):
        mem = Memory()
        mem.write_words(SRC, range(4))
        r = run_spec(VEC_SCALE, [SRC, DST, 1], mem)
        assert r.specialized_invocations == 0
        assert mem.read_words(DST, 1) == [0]


class TestORPattern:
    def test_prefix_sum_exact(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        run_spec(PREFIX_SUM, [SRC, DST, N], mem)
        assert mem.read_words(DST, N) == list(
            itertools.accumulate(range(N)))

    def test_cir_stalls_recorded(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(PREFIX_SUM, [SRC, DST, N], mem)
        assert r.lpsu_stats.stall_cib > 0

    def test_or_slower_than_uc_shape(self):
        m1, m2 = Memory(), Memory()
        m1.write_words(SRC, range(N))
        m2.write_words(SRC, range(N))
        uc = run_spec(VEC_SCALE, [SRC, DST, N], m1)
        orr = run_spec(PREFIX_SUM, [SRC, DST, N], m2)
        assert orr.cycles >= uc.cycles  # serialization through the CIB

    def test_conditional_cir_update(self):
        # CIR updated only for odd elements: the skipped last-CIR-write
        # path must forward the incoming value at iteration end
        asm = """
main:                       # a0=src, a1=dst, a2=n; dst[i]=sum of odds so far
    li   t0, 0
    li   t5, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    andi t4, t3, 1
    beqz t4, skip
    add  t5, t5, t3
skip:
    slli t1, t0, 2
    add  t4, a1, t1
    sw   t5, 0(t4)
    addi t0, t0, 1
    xloop.or t0, a2, body
done:
    ret
"""
        mem = Memory()
        mem.write_words(SRC, range(N))
        run_spec(asm, [SRC, DST, N], mem)
        acc, expect = 0, []
        for i in range(N):
            if i & 1:
                acc += i
            expect.append(acc)
        assert mem.read_words(DST, N) == expect


class TestOMPattern:
    def test_memory_recurrence_exact(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        mem.store_word(DST, 0)
        r = run_spec(MEM_RECURRENCE, [SRC, DST, N], mem)
        expect = [0] * N
        for i in range(1, N):
            expect[i] = expect[i - 1] + i
        assert mem.read_words(DST, N) == expect
        assert r.lpsu_stats.squashes > 0   # tight recurrence squashes

    def test_disjoint_addresses_no_squash(self):
        # every iteration touches its own word: no violations
        asm = VEC_SCALE.replace("xloop.uc", "xloop.om")
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(asm, [SRC, DST, N], mem)
        assert mem.read_words(DST, N) == [2 * i for i in range(N)]
        assert r.lpsu_stats.squashes == 0

    def test_store_load_forwarding_within_iteration(self):
        asm = """
main:                       # a0=scratch, a1=dst, a2=n
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    li   t3, 7
    sw   t3, 0(t2)       # speculative store
    lw   t4, 0(t2)       # must forward from own LSQ
    add  t4, t4, t0
    add  t5, a1, t1
    sw   t4, 0(t5)
    addi t0, t0, 1
    xloop.om t0, a2, body
done:
    ret
"""
        mem = Memory()
        run_spec(asm, [SRC, DST, 16], mem)
        assert mem.read_words(DST, 16) == [7 + i for i in range(16)]

    def test_small_lsq_stalls(self):
        # slow compute then a burst of stores: younger lanes fill a
        # 2-entry LSQ while older iterations are still in flight
        asm = """
main:
    li   t6, 3
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 4
    add  t2, a1, t1
    div  t3, t1, t6
    sw   t3, 0(t2)
    sw   t0, 4(t2)
    sw   t0, 8(t2)
    sw   t0, 12(t2)
    addi t0, t0, 1
    xloop.om t0, a2, body
done:
    ret
"""
        mem = Memory()
        r_small = run_spec(asm, [SRC, DST, 32], mem,
                           lpsu=LPSUConfig(lsq_stores=2, lsq_loads=2,
                                           mem_ports=2, llfus=4))
        mem2 = Memory()
        r_big = run_spec(asm, [SRC, DST, 32], mem2,
                         lpsu=LPSUConfig(lsq_stores=16, lsq_loads=16,
                                         mem_ports=2, llfus=4))
        assert mem.read_words(DST, 4) == mem2.read_words(DST, 4)
        assert (r_small.lpsu_stats.stall_lsq
                + r_small.lpsu_stats.stall_commit) > 0
        assert r_big.cycles <= r_small.cycles


class TestUAPattern:
    def test_histogram_atomicity(self):
        # two histograms updated per iteration; iterations may be
        # reordered but updates must be atomic (read-modify-write
        # pairs must not be torn) -- paper Fig 1(d)
        asm = """
main:                       # a0=data, a1=histA (histB at +256), a2=n
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)          # v in 0..15
    slli t4, t3, 2
    add  t5, a1, t4
    lw   t6, 0(t5)
    addi t6, t6, 1
    sw   t6, 0(t5)          # histA[v]++
    addi t5, t5, 256
    lw   t6, 0(t5)
    addi t6, t6, 1
    sw   t6, 0(t5)          # histB[v]++
    addi t0, t0, 1
    xloop.ua t0, a2, body
done:
    ret
"""
        mem = Memory()
        data = [(i * 7) % 16 for i in range(N)]
        mem.write_words(SRC, data)
        run_spec(asm, [SRC, DST, N], mem)
        expect = [0] * 16
        for v in data:
            expect[v] += 1
        assert mem.read_words(DST, 16) == expect
        assert mem.read_words(DST + 256, 16) == expect


class TestDynamicBound:
    def test_worklist_growth(self):
        # seed worklist with one item; each item < LIMIT pushes 2*v+1
        # and 2*v+2 (binary-tree expansion, paper Fig 1(e))
        asm = """
main:                       # a0=worklist, a1=tailptr, a2=sumaddr
    li   t0, 0
    lw   t6, 0(a1)          # bound = tail
    ble  t6, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)          # v = wl[i]
    amo.add t4, t3, (a2)    # sum += v (AMO: uc iterations race)
    li   t5, 7
    bge  t3, t5, nopush
    li   t5, 2
    amo.add t5, t5, (a1)    # old tail; tail += 2
    slli t4, t3, 1
    addi t4, t4, 1
    slli t1, t5, 2
    add  t1, a0, t1
    sw   t4, 0(t1)          # wl[old] = 2v+1
    addi t4, t4, 1
    sw   t4, 4(t1)          # wl[old+1] = 2v+2
nopush:
    lw   t6, 0(a1)          # reload bound
    addi t0, t0, 1
    xloop.uc.db t0, t6, body
done:
    ret
"""
        WL, TAIL, SUM = 0x100000, 0x110000, 0x120000

        def run(mode_mem, spec):
            mem = mode_mem
            mem.write_words(WL, [0])
            mem.store_word(TAIL, 1)
            mem.store_word(SUM, 0)
            if spec:
                return run_spec(asm, [WL, TAIL, SUM], mem), mem
            return run_trad(asm, [WL, TAIL, SUM], mem), mem

        r_t, mem_t = run(Memory(), spec=False)
        r_s, mem_s = run(Memory(), spec=True)
        # tree of values v with children 2v+1, 2v+2 while v < 7:
        # 0,1,2,3,4,5,6 push children -> worklist holds 0..14
        assert mem_t.load_word(TAIL) == 15
        assert mem_s.load_word(TAIL) == 15
        assert mem_s.load_word(SUM) == sum(range(15))
        assert sorted(mem_s.read_words(WL, 15)) == list(range(15))
        assert r_s.specialized_invocations >= 1
        assert r_s.lpsu_stats.iterations > 0


class TestXI:
    def test_miv_initialized_per_iteration(self):
        # pointer walks the source via addiu.xi instead of idx shifts
        asm = """
main:                       # a0=src, a1=dst, a2=n
    li   t0, 0
    mv   t6, a0             # MIV pointer
    ble  a2, zero, done
body:
    lw   t3, 0(t6)
    add  t3, t3, t3
    slli t1, t0, 2
    add  t4, a1, t1
    sw   t3, 0(t4)
    addiu.xi t6, t6, 4
    addi t0, t0, 1
    xloop.uc t0, a2, body
done:
    ret
"""
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(asm, [SRC, DST, N], mem)
        assert mem.read_words(DST, N) == [2 * i for i in range(N)]
        assert r.events.miv_mul > 0


class TestFallbacks:
    def test_unsupported_pattern_runs_traditionally(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(VEC_SCALE, [SRC, DST, N], mem,
                     lpsu=LPSUConfig(specialize_patterns=("or",)))
        assert r.specialized_invocations == 0
        assert mem.read_words(DST, N) == [2 * i for i in range(N)]

    def test_oversized_body_falls_back(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(VEC_SCALE, [SRC, DST, N], mem,
                     lpsu=LPSUConfig(ib_entries=4))
        assert r.specialized_invocations == 0
        assert mem.read_words(DST, N) == [2 * i for i in range(N)]


class TestMultithreading:
    def test_mt_correct_and_not_slower_on_raw_bound_loop(self):
        # dependent-chain body: MT hides RAW stalls (paper Fig 9 +t)
        asm = """
main:
    li   t0, 0
    ble  a2, zero, done
body:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    mul  t3, t3, t3
    add  t4, a1, t1
    sw   t3, 0(t4)
    addi t0, t0, 1
    xloop.uc t0, a2, body
done:
    ret
"""
        m1, m2 = Memory(), Memory()
        for m in (m1, m2):
            m.write_words(SRC, range(N))
        r1 = run_spec(asm, [SRC, DST, N], m1,
                      lpsu=LPSUConfig(threads_per_lane=1, llfus=2))
        r2 = run_spec(asm, [SRC, DST, N], m2,
                      lpsu=LPSUConfig(threads_per_lane=2, llfus=2))
        assert m1.read_words(DST, N) == m2.read_words(DST, N) \
            == [i * i for i in range(N)]
        assert r2.cycles <= r1.cycles

    def test_mt_disabled_for_ordered_patterns(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        run_spec(PREFIX_SUM, [SRC, DST, N], mem,
                 lpsu=LPSUConfig(threads_per_lane=2))
        assert mem.read_words(DST, N) == list(
            itertools.accumulate(range(N)))


class TestStatsAndEnergy:
    def test_breakdown_covers_lane_cycles(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(PREFIX_SUM, [SRC, DST, N], mem)
        b = r.lpsu_stats.breakdown()
        lanes = 4
        total = r.lpsu_stats.exec_cycles * lanes
        attributed = sum(v for k, v in b.items() if k != "squash")
        assert attributed == total

    def test_lpsu_uses_ib_not_icache(self):
        mem = Memory()
        mem.write_words(SRC, range(N))
        r = run_spec(VEC_SCALE, [SRC, DST, N], mem)
        assert r.events.ib_read > r.events.ic_access
