"""Post-place-and-route area model for the LPSU (paper Table V).

An analytical model calibrated to the paper's reported points for the
uc-only LPSU implementation in 40 nm TSMC:

* baseline five-stage GPP with 16 KB I$ + 16 KB D$: **0.25 mm²**;
* the primary design ``lpsu+i128+ln4`` adds ~43%;
* sweeping the instruction buffer 96-192 entries (4 lanes) costs
  41-48% overhead; sweeping lanes 2-8 (128-entry IB) costs 24-77% —
  area grows roughly linearly with the number of lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cacti import buffer_array, cache_macro, sram

#: GPP component areas (mm^2, 40nm) - sums to ~0.25
GPP_CORE_LOGIC = 0.078
GPP_MULDIV = 0.012
GPP_FPU = 0.016

#: per-lane datapath (regfile + ALU + AGU + control), mm^2
LANE_LOGIC = 0.01435
#: LMU + index queues + arbiters (fixed), mm^2
LMU_AREA = 0.01583
#: per-lane index queue + small buffers
IDQ_AREA = 0.0006


@dataclass(frozen=True)
class AreaReport:
    """One Table V row."""

    name: str
    lanes: int
    ib_entries: int
    breakdown: Dict[str, float]

    @property
    def total_mm2(self):
        return sum(self.breakdown.values())

    @property
    def lpsu_mm2(self):
        return sum(v for k, v in self.breakdown.items()
                   if k in ("lanes", "ib", "idq", "lmu"))

    def overhead_vs(self, baseline):
        return self.total_mm2 / baseline.total_mm2 - 1.0


def gpp_area(icache_bytes=16 * 1024, dcache_bytes=16 * 1024):
    """Baseline scalar GPP area report."""
    return AreaReport(
        name="scalar", lanes=0, ib_entries=0,
        breakdown={
            "core": GPP_CORE_LOGIC,
            "muldiv": GPP_MULDIV,
            "fpu": GPP_FPU,
            "icache": cache_macro(icache_bytes).area_mm2,
            "dcache": cache_macro(dcache_bytes).area_mm2,
        })


def lpsu_area(lanes=4, ib_entries=128, icache_bytes=16 * 1024,
              dcache_bytes=16 * 1024):
    """GPP + LPSU area report (``lpsu+iNNN+lnK`` naming as in Table V).

    The LLFU (mul/div/FP) and the memory port are *shared* with the
    GPP — the key design decision keeping overhead low (Section V-B).
    """
    base = gpp_area(icache_bytes, dcache_bytes)
    ib_bytes = ib_entries * 4
    breakdown = dict(base.breakdown)
    breakdown["lanes"] = LANE_LOGIC * lanes
    breakdown["ib"] = buffer_array(ib_bytes).area_mm2 * lanes
    breakdown["idq"] = IDQ_AREA * lanes
    breakdown["lmu"] = LMU_AREA
    return AreaReport(name="lpsu+i%03d+ln%d" % (ib_entries, lanes),
                      lanes=lanes, ib_entries=ib_entries,
                      breakdown=breakdown)


def cycle_time_ns(lanes=0, ib_entries=0):
    """Post-PnR cycle time (ns).  The arbitration/broadcast fan-in
    grows with lane count; the IB adds a small wordline cost."""
    if lanes == 0:
        return 1.90
    return 1.785 + 0.093 * lanes + 0.0003 * ib_entries


def table5_rows():
    """The Table V configuration sweep."""
    base = gpp_area()
    rows = [("scalar", base, cycle_time_ns())]
    for ib in (96, 128, 160, 192):
        report = lpsu_area(lanes=4, ib_entries=ib)
        rows.append((report.name, report, cycle_time_ns(4, ib)))
    for lanes in (2, 6, 8):
        report = lpsu_area(lanes=lanes, ib_entries=128)
        rows.append((report.name, report, cycle_time_ns(lanes, 128)))
    return rows
