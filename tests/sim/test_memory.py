import struct

import pytest
from hypothesis import given, strategies as st

from repro.sim import Memory, bits_to_f32, f32_to_bits, to_s32, to_u32

_ADDR = st.integers(min_value=0, max_value=(1 << 30) - 4)
_WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)


def test_uninitialized_reads_zero():
    mem = Memory()
    assert mem.load_word(0x1234) == 0
    assert mem.load(0x99999, 1) == 0


@given(addr=_ADDR.map(lambda a: a & ~3), value=_WORD)
def test_word_roundtrip(addr, value):
    mem = Memory()
    mem.store_word(addr, value)
    assert mem.load_word(addr) == value


@given(addr=_ADDR, value=_WORD)
def test_unaligned_word_roundtrip(addr, value):
    mem = Memory()
    mem.store_word(addr, value)
    assert mem.load_word(addr) == value


def test_cross_page_access():
    mem = Memory()
    addr = (1 << 12) - 2  # straddles the first page boundary
    mem.store_word(addr, 0xAABBCCDD)
    assert mem.load_word(addr) == 0xAABBCCDD
    assert mem.load(addr, 2) == 0xCCDD


def test_byte_and_half_sign_extension():
    mem = Memory()
    mem.store(0x100, 1, 0x80)
    assert mem.load(0x100, 1, signed=False) == 0x80
    assert to_s32(mem.load(0x100, 1, signed=True)) == -128
    mem.store(0x200, 2, 0x8000)
    assert to_s32(mem.load(0x200, 2, signed=True)) == -32768
    assert mem.load(0x200, 2, signed=False) == 0x8000


def test_little_endian_layout():
    mem = Memory()
    mem.store_word(0x10, 0x04030201)
    assert mem.read(0x10, 4) == b"\x01\x02\x03\x04"


class TestAmo:
    def test_add_returns_old(self):
        mem = Memory()
        mem.store_word(0x40, 10)
        assert mem.amo("amo.add", 0x40, 5) == 10
        assert mem.load_word(0x40) == 15

    def test_add_wraps(self):
        mem = Memory()
        mem.store_word(0x40, 0xFFFFFFFF)
        mem.amo("amo.add", 0x40, 2)
        assert mem.load_word(0x40) == 1

    def test_min_max_are_signed(self):
        mem = Memory()
        mem.store_word(0x40, to_u32(-5))
        assert to_s32(mem.amo("amo.min", 0x40, 3)) == -5
        assert to_s32(mem.load_word(0x40)) == -5
        mem.amo("amo.max", 0x40, 3)
        assert mem.load_word(0x40) == 3

    def test_logical_and_xchg(self):
        mem = Memory()
        mem.store_word(0x40, 0b1100)
        mem.amo("amo.and", 0x40, 0b1010)
        assert mem.load_word(0x40) == 0b1000
        mem.amo("amo.or", 0x40, 0b0001)
        assert mem.load_word(0x40) == 0b1001
        mem.amo("amo.xor", 0x40, 0b1111)
        assert mem.load_word(0x40) == 0b0110
        old = mem.amo("amo.xchg", 0x40, 99)
        assert old == 0b0110 and mem.load_word(0x40) == 99

    def test_unknown_amo_rejected(self):
        with pytest.raises(ValueError):
            Memory().amo("amo.nope", 0, 0)


def test_bulk_helpers_words():
    mem = Memory()
    mem.write_words(0x1000, [1, 2, 3, to_u32(-4)])
    assert mem.read_words(0x1000, 4) == [1, 2, 3, to_u32(-4)]
    assert mem.read_words_signed(0x1000, 4) == [1, 2, 3, -4]


def test_bulk_helpers_floats():
    mem = Memory()
    mem.write_floats(0x2000, [1.5, -2.25, 0.0])
    assert mem.read_floats(0x2000, 3) == [1.5, -2.25, 0.0]


def test_bulk_helpers_bytes():
    mem = Memory()
    mem.write_bytes(0x3000, [1, 2, 255])
    assert mem.read_bytes(0x3000, 3) == [1, 2, 255]


def test_bulk_write_spans_pages():
    mem = Memory()
    payload = bytes(range(256)) * 40  # 10240 bytes > 2 pages
    mem.write(4000, payload)
    assert mem.read(4000, len(payload)) == payload


@given(value=st.floats(width=32, allow_nan=False))
def test_f32_bits_roundtrip(value):
    assert bits_to_f32(f32_to_bits(value)) == value


def test_f32_overflow_to_inf():
    assert bits_to_f32(f32_to_bits(1e300)) == float("inf")
    assert bits_to_f32(f32_to_bits(-1e300)) == float("-inf")


def test_to_s32_to_u32():
    assert to_s32(0xFFFFFFFF) == -1
    assert to_s32(0x7FFFFFFF) == 0x7FFFFFFF
    assert to_u32(-1) == 0xFFFFFFFF
    assert to_u32(1 << 35) == 0
