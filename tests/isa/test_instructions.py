from repro.isa import FU, Fmt, Instr, OPS, spec
from repro.isa.instructions import ALL_MNEMONICS


def test_registry_contains_core_and_extensions():
    for m in ("add", "addi", "lw", "sw", "beq", "jal", "jalr", "lui",
              "mul", "div", "fadd.s", "fdiv.s", "amo.add", "fence",
              "xloop.uc", "xloop.or", "xloop.om", "xloop.orm", "xloop.ua",
              "xloop.uc.db", "addiu.xi", "addu.xi"):
        assert m in OPS, m


def test_flags_consistency():
    assert spec("lw").is_load and spec("lw").is_mem
    assert spec("sw").is_store and not spec("sw").writes_rd
    assert spec("amo.add").is_amo and spec("amo.add").writes_rd
    assert spec("beq").is_branch and spec("beq").is_control
    assert spec("jal").is_jump and spec("jal").writes_rd
    assert spec("xloop.om").is_xloop and spec("xloop.om").is_control
    assert spec("addiu.xi").is_xi
    assert spec("fence").is_fence


def test_llfu_classification():
    # The LLFU serves integer mul/div and all FP (paper Fig 4).
    for m in ("mul", "div", "rem", "fadd.s", "fmul.s", "fdiv.s", "fsqrt.s"):
        assert spec(m).is_llfu, m
    for m in ("add", "addi", "lw", "beq", "xloop.uc", "addiu.xi"):
        assert not spec(m).is_llfu, m


def test_xloop_kind_attached():
    kind = spec("xloop.orm.db").xloop_kind
    assert kind is not None
    assert kind.mnemonic == "xloop.orm.db"
    assert spec("add").xloop_kind is None


def test_src_dst_regs():
    ins = Instr(spec("add"), rd=3, rs1=4, rs2=5)
    assert ins.src_regs() == (4, 5)
    assert ins.dst_reg() == 3

    ins = Instr(spec("sw"), rs1=6, rs2=7, imm=8)
    assert set(ins.src_regs()) == {6, 7}
    assert ins.dst_reg() is None

    ins = Instr(spec("add"), rd=0, rs1=1, rs2=2)
    assert ins.dst_reg() is None  # x0 writes are discarded

    ins = Instr(spec("xloop.uc"), rs1=5, rs2=11, imm=-16, pc=100)
    assert ins.src_regs() == (5, 11)
    assert ins.branch_target() == 84

    ins = Instr(spec("fcvt.s.w"), rd=9, rs1=12)
    assert ins.src_regs() == (12,)


def test_mnemonics_sorted_longest_first():
    lengths = [len(m) for m in ALL_MNEMONICS]
    assert lengths == sorted(lengths, reverse=True)
    assert set(ALL_MNEMONICS) == set(OPS)
