import pytest
from hypothesis import given, strategies as st

from repro.isa import EncodingError, Instr, OPS, decode, encode, spec
from repro.isa.instructions import Fmt

_REG = st.integers(min_value=0, max_value=31)
_IMM12 = st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1)
_IMM17 = st.integers(min_value=-(1 << 16), max_value=(1 << 16) - 1)
_OFF13 = st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1).map(
    lambda v: v * 2)
_OFF18 = st.integers(min_value=-(1 << 16), max_value=(1 << 16) - 1).map(
    lambda v: v * 2)


def _roundtrip(instr):
    out = decode(encode(instr), pc=instr.pc)
    assert out.mnemonic == instr.mnemonic
    assert out.rd == instr.rd or not instr.op.writes_rd
    assert out.rs1 == instr.rs1
    assert out.rs2 == instr.rs2 or instr.op.fmt not in (
        Fmt.R, Fmt.XI_R, Fmt.AMO, Fmt.STORE, Fmt.BRANCH, Fmt.XLOOP)
    assert out.imm == instr.imm
    return out


@given(rd=_REG, rs1=_REG, rs2=_REG)
def test_r_format_roundtrip(rd, rs1, rs2):
    for m in ("add", "mul", "fadd.s", "amo.add", "addu.xi"):
        _roundtrip(Instr(spec(m), rd=rd, rs1=rs1, rs2=rs2))


@given(rd=_REG, rs1=_REG, imm=_IMM12)
def test_i_format_roundtrip(rd, rs1, imm):
    for m in ("addi", "lw", "jalr", "addiu.xi"):
        _roundtrip(Instr(spec(m), rd=rd, rs1=rs1, imm=imm))


@given(rs1=_REG, rs2=_REG, imm=_IMM12)
def test_store_roundtrip(rs1, rs2, imm):
    _roundtrip(Instr(spec("sw"), rs1=rs1, rs2=rs2, imm=imm))


@given(rs1=_REG, rs2=_REG, off=_OFF13)
def test_branch_and_xloop_roundtrip(rs1, rs2, off):
    for m in ("beq", "bltu", "xloop.uc", "xloop.orm.db"):
        _roundtrip(Instr(spec(m), rs1=rs1, rs2=rs2, imm=off))


@given(rd=_REG, off=_OFF18)
def test_jal_roundtrip(rd, off):
    _roundtrip(Instr(spec("jal"), rd=rd, imm=off))


@given(rd=_REG, imm=_IMM17)
def test_lui_roundtrip(rd, imm):
    _roundtrip(Instr(spec("lui"), rd=rd, imm=imm))


def test_every_mnemonic_has_unique_opcode():
    from repro.isa.encoding import OPCODE_OF
    assert len(set(OPCODE_OF.values())) == len(OPS)


def test_out_of_range_immediates_rejected():
    with pytest.raises(EncodingError):
        encode(Instr(spec("addi"), rd=1, rs1=1, imm=1 << 12))
    with pytest.raises(EncodingError):
        encode(Instr(spec("beq"), rs1=1, rs2=2, imm=3))  # odd offset
    with pytest.raises(EncodingError):
        encode(Instr(spec("jal"), rd=1, imm=1 << 20))


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(0x3FF << 22)


def test_fence_encodes():
    _roundtrip(Instr(spec("fence")))
